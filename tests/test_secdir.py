"""Tests for the SecDir comparison baseline (ISCA'19 re-implementation)."""

import pytest

from repro.caches.block import MESI
from repro.common.config import DirectoryConfig, Protocol
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config


def secdir(ratio=1.0, **kw):
    return build_system(tiny_config(
        protocol=Protocol.SECDIR,
        directory=DirectoryConfig(ratio=ratio), **kw))


class TestSecDirStructure:
    def test_partition_sizing(self):
        system = secdir()
        # Baseline 1x: 128 entries / 8 ways = 16 sets. Shared: 16 sets x
        # 5 ways; privates: max(1, 16 // 16) = 1 set x 7 ways per core.
        assert system._secdir.shared.sets == 16
        assert system._secdir.shared.ways == 5
        assert len(system._secdir.privates) == 4
        assert system._secdir.privates[0].sets == 1
        assert system._secdir.privates[0].ways == 7

    def test_new_entry_starts_in_shared_partition(self):
        system = secdir()
        drive(system, [(0, "R", 5)])
        assert system._secdir.shared.peek(5) is not None
        assert 5 not in system._secdir.private_resident


class TestSecDirMigration:
    def fill_shared_set(self, system, set_idx=0):
        """Overflow one shared-partition set (5 ways) with live entries.

        Same-directory-set blocks share an L2 set too, so one core can
        keep only 4 alive; 4 cores x 4 blocks = 16 live entries in the
        set, forcing 11 migrations.
        """
        script = []
        blocks = []
        for tag in range(4):
            for core in range(4):
                block = set_idx + 16 * (4 * core + tag)
                blocks.append(block)
                script.append((core, "R", block))
        drive(system, script)
        return blocks

    def test_shared_conflict_migrates_not_invalidates(self):
        system = secdir()
        blocks = self.fill_shared_set(system)
        migrated = [b for b in blocks
                    if b in system._secdir.private_resident]
        assert migrated
        # Crucially: migration did not invalidate the private copies.
        for block in migrated:
            entry = system._secdir.private_resident[block]
            for core in entry.sharer_cores():
                assert system.cores[core].probe(block) is not None
        assert system.stats.dev_invalidations == 0

    def test_demand_access_reunifies(self):
        system = secdir()
        blocks = self.fill_shared_set(system)
        migrated = [b for b in blocks
                    if b in system._secdir.private_resident][0]
        holder = next(iter(
            system._secdir.private_resident[migrated].sharer_cores()))
        other = (holder + 1) % 4
        drive(system, [(other, "R", migrated)])
        assert migrated not in system._secdir.private_resident
        assert system._secdir.shared.peek(migrated) is not None

    def test_private_partition_self_conflict_generates_dev(self):
        system = secdir(ratio=0.5)
        # Shared: 8 sets x 5 ways; private: 1 set x 7 ways per core, so
        # migrations from *different* shared sets collide in a core's
        # private partition and generate the indirect DEVs SecDir cannot
        # avoid.
        script = []
        for tag in range(4):
            for set_idx in range(8):
                for core in range(4):
                    script.append(
                        (core, "R", set_idx + 8 * (4 * core + tag)))
        drive(system, script)
        assert system.stats.dev_invalidations >= 1

    def test_small_secdir_worse_than_large(self):
        def devs(ratio):
            system = secdir(ratio=ratio)
            script = [(c, "R", (3 * k + c) % 96)
                      for k in range(120) for c in range(4)]
            drive(system, script)
            return system.stats.dev_invalidations
        assert devs(0.125) >= devs(1.0)


class TestSecDirCoherence:
    def test_sharing_and_writes_stay_correct(self):
        system = secdir()
        drive(system, [(0, "W", 5), (1, "R", 5), (2, "R", 5),
                       (3, "W", 5), (0, "R", 5)])
        # Core 3's write invalidated 0/1/2; core 0's read downgraded 3.
        assert system.cores[1].probe(5) is None
        assert system.cores[2].probe(5) is None
        assert system.cores[3].probe(5) is MESI.S
        assert system.cores[0].probe(5) is MESI.S

    def test_eviction_notice_cleans_private_slot(self):
        system = secdir()
        blocks = [0] + [8 * k for k in range(1, 6)]
        drive(system, [(0, "R", b) for b in blocks])
        # Evict block 0 from core 0's L2 via set conflicts.
        conflicts = [8 * k for k in range(6, 10)]
        drive(system, [(0, "R", b) for b in conflicts])
        assert 0 not in system._secdir.privates[0]

    def test_soak_run_stays_invariant_clean(self):
        system = secdir(ratio=0.25)
        script = [(c, "RWI"[k % 3], (5 * k + 3 * c) % 128)
                  for k in range(250) for c in range(4)]
        drive(system, script)   # drive() checks invariants at the end
