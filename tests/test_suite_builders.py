"""Additional coverage for suite/mix builders and experiment helpers."""

import numpy as np
import pytest

from repro.common.stats import SystemStats
from repro.harness import experiments
from repro.workloads import (make_heterogeneous_mixes, make_multithreaded,
                             make_rate_workload, make_server_workload)
from repro.workloads.suites import find_profile, suite_profiles

from tests.conftest import tiny_config


class TestMixProperties:
    def test_rate_workload_deterministic(self):
        profile = find_profile("mcf")
        a = make_rate_workload(profile, tiny_config(), 300, seed=5)
        b = make_rate_workload(profile, tiny_config(), 300, seed=5)
        for trace_a, trace_b in zip(a.traces, b.traces):
            assert np.array_equal(trace_a.addresses, trace_b.addresses)

    def test_het_mixes_use_distinct_apps_per_mix(self):
        mixes = make_heterogeneous_mixes(tiny_config(), 4, 100, seed=1)
        for mix in mixes:
            # Distinct apps => disjoint data address spaces per core.
            data_sets = []
            for trace in mix.traces:
                is_data = trace.ops != 2     # not IFETCH
                data_sets.append(set(
                    np.unique(trace.addresses[is_data])))
            for i in range(len(data_sets)):
                for j in range(i + 1, len(data_sets)):
                    assert not data_sets[i] & data_sets[j]

    def test_het_mix_seeds_differ_across_mixes(self):
        mixes = make_heterogeneous_mixes(tiny_config(), 2, 200, seed=1)
        assert mixes[0].name != mixes[1].name

    def test_server_workload_spans_all_cores(self):
        workload = make_server_workload(find_profile("TPC-C"),
                                        tiny_config(), 200, seed=0)
        assert workload.n_cores == 4

    def test_multithreaded_length_exact(self):
        workload = make_multithreaded(find_profile("fftw"),
                                      tiny_config(), 777, seed=0)
        assert all(len(t) == 777 for t in workload.traces)


class TestExperimentHelpers:
    def test_speedup_of_multithreaded_uses_makespan(self):
        base = experiments.RunResult("w", SystemStats(2), None)
        new = experiments.RunResult("w", SystemStats(2), None)
        base.stats.cycles = [100, 200]
        new.stats.cycles = [100, 100]
        assert experiments.speedup_of(base, new, "PARSEC") == 2.0

    def test_speedup_of_rate_uses_weighted(self):
        base = experiments.RunResult("w", SystemStats(2), None)
        new = experiments.RunResult("w", SystemStats(2), None)
        base.stats.cycles = [100, 100]
        new.stats.cycles = [50, 200]
        assert experiments.speedup_of(base, new, "CPU2017") == \
            pytest.approx(1.25)

    def test_workload_for_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCESSES", "100")
        config = tiny_config()
        rate = experiments.workload_for(find_profile("leela"),
                                        "CPU2017", config)
        assert rate.name.endswith(".rate")
        mt = experiments.workload_for(find_profile("fftw"), "FFTW",
                                      config)
        assert mt.name == "fftw"

    def test_zerodev_config_builder(self):
        from repro.common.config import Protocol
        config = experiments.zerodev_config(tiny_config(), ratio=0.5)
        assert config.protocol is Protocol.ZERODEV
        assert config.directory.ratio == 0.5

    def test_default_config_respects_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "8")
        config = experiments.default_config()
        assert config.llc.size_bytes == 8 * 1024 * 1024 // 8


class TestSuiteIntegrity:
    @pytest.mark.parametrize("suite", ["PARSEC", "SPLASH2X", "SPECOMP",
                                       "FFTW", "CPU2017", "SERVER"])
    def test_profiles_have_sane_ranges(self, suite):
        for profile in suite_profiles(suite):
            assert 0 < profile.ws_private_x_l2 <= 16
            assert 0 <= profile.ws_shared_x_llc <= 1
            assert 0 <= profile.shared_fraction < 1
            assert 0 <= profile.code_fraction < 1
            assert 0 <= profile.locality <= 1
            assert 0 < profile.hot_fraction <= 1
