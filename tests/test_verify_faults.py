"""Fault-injection contracts for the contender protocol models.

The no-silent-divergence contract, applied to the seams the contenders
add: the hybrid model's UPDATE push (drop it -> a stale-but-readable S
copy that only the per-step update-coherence check can see; duplicate
it -> idempotent) and the DLS model's LLC eviction handler (an
adversarial conflict storm kills every entry-bearing line of a set and
must still be absorbed correctly).
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.verify import (TraceGenerator, model_by_name, run_campaign,
                          run_trace)
from repro.verify.differential import _fault_fires
from repro.verify.faults import FaultKind, FaultPlan, arm_fault
from repro.verify.models import micro_config
from repro.verify.tracegen import TraceGeometry


def traces(seed=3, count=10):
    gen = TraceGenerator(TraceGeometry.of(micro_config()), seed)
    return [gen.trace(i) for i in range(count)]


class TestHybridUpdateFaults:
    def test_dropped_update_trips_per_step_check(self):
        """A lost UPDATE leaves a sharer stale; reads would silently
        consume it, so check_hybrid must catch it at a checkpoint."""
        spec = model_by_name("hybrid")
        fault = FaultPlan(FaultKind.DROP_UPDATE)
        fired = detected = 0
        for trace in traces():
            outcome = run_trace(spec, trace, fault=fault)
            if not _fault_fires(spec, trace, fault):
                assert outcome.ok, outcome
                continue
            fired += 1
            if not outcome.ok:
                detected += 1
                assert outcome.error_type == "DivergenceError"
                assert "stale" in outcome.error
        assert fired > 0, "drop-update never reached its seam"
        assert detected == fired, "a dropped update went unnoticed"

    def test_dropped_update_campaign_contract(self):
        report = run_campaign(seed=3, budget=5, jobs=1, shrink=False,
                              fault=FaultPlan(FaultKind.DROP_UPDATE))
        assert report.fault_fired_runs > 0, report.summary()
        assert report.ok, report.summary()
        assert report.fault_detected_runs == report.fault_fired_runs

    def test_duplicated_update_is_graceful(self):
        """Delivering the same version twice is idempotent: the run must
        stay correct end to end."""
        report = run_campaign(seed=3, budget=5, jobs=1, shrink=False,
                              fault=FaultPlan(FaultKind.DUP_UPDATE))
        assert report.fault_fired_runs > 0, report.summary()
        assert report.ok, report.summary()


class TestDLSConflictStorm:
    def test_storm_is_absorbed(self):
        """Evicting every other line of the victim's set exercises the
        DLS worst case (each dying line back-invalidates its sharers);
        the cost is inclusion victims, never wrong values."""
        spec = model_by_name("dls")
        fault = FaultPlan(FaultKind.LLC_CONFLICT_STORM)
        fired = 0
        for trace in traces():
            outcome = run_trace(spec, trace, fault=fault)
            assert outcome.ok, outcome
            fired += _fault_fires(spec, trace, fault)
        assert fired > 0, "the storm never reached an LLC eviction"

    def test_storm_campaign_contract(self):
        report = run_campaign(
            seed=3, budget=5, jobs=1, shrink=False,
            fault=FaultPlan(FaultKind.LLC_CONFLICT_STORM))
        assert report.fault_fired_runs > 0, report.summary()
        assert report.ok, report.summary()


class TestApplicability:
    """Contender faults are gated to the models that own the seam."""

    @pytest.mark.parametrize("kind", [FaultKind.DROP_UPDATE,
                                      FaultKind.DUP_UPDATE,
                                      FaultKind.LLC_CONFLICT_STORM],
                             ids=lambda k: k.value)
    def test_baseline_has_no_seam(self, kind):
        system = model_by_name("baseline-1x").build()
        with pytest.raises(ConfigError):
            arm_fault(system, FaultPlan(kind))

    def test_update_faults_need_hybrid_not_dls(self):
        with pytest.raises(ConfigError):
            arm_fault(model_by_name("dls").build(),
                      FaultPlan(FaultKind.DROP_UPDATE))

    def test_storm_needs_dls_not_hybrid(self):
        with pytest.raises(ConfigError):
            arm_fault(model_by_name("hybrid").build(),
                      FaultPlan(FaultKind.LLC_CONFLICT_STORM))
