"""Bit-level tests of the Figure 9/11 entry encodings and the Section
III-D memory-housing layout, including hypothesis round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.coherence.entry import DirectoryEntry, DirState
from repro.common.errors import ConfigError
from repro.core import formats
from repro.core.formats import (HousedBlockImage, decode_fused_fpss,
                                decode_fused_fuseall, decode_spilled,
                                encode_fused_fpss, encode_fused_fuseall,
                                encode_spilled, fpss_corrupted_bits,
                                fuseall_corrupted_bits, max_sockets,
                                max_sockets_with_socket_entry, owner_bits,
                                reconstruct_fused_fpss)


class TestBitBudgets:
    def test_owner_bits(self):
        assert owner_bits(8) == 3
        assert owner_bits(128) == 7
        assert owner_bits(1) == 1

    def test_fpss_corruption_is_3_plus_log(self):
        assert fpss_corrupted_bits(8) == 6      # 3 + ceil(log2 8)

    def test_fuseall_corruption(self):
        assert fuseall_corrupted_bits(8, DirState.ME) == 7   # 4 + 3
        assert fuseall_corrupted_bits(8, DirState.S) == 12   # 4 + 8

    def test_max_sockets_paper_bound(self):
        # floor(512 / (N + 1)) for N = 8 gives 56 sockets.
        assert max_sockets(8) == 56
        assert max_sockets(128) == 3

    def test_solution2_bound(self):
        # M(N+1) + (M+2) <= 512 -> M <= 510/(N+2).
        assert max_sockets_with_socket_entry(8) == 51


def entries(n_cores):
    owners = st.integers(min_value=0, max_value=n_cores - 1)
    vectors = st.integers(min_value=1, max_value=(1 << n_cores) - 1)

    def build(draw_owner, draw_vector, shared):
        if shared:
            return DirectoryEntry(0, DirState.S, sharers=draw_vector)
        return DirectoryEntry(0, DirState.ME, owner=draw_owner)

    return st.builds(build, owners, vectors, st.booleans())


class TestSpilledRoundTrip:
    @given(entries(8))
    def test_roundtrip_8_cores(self, entry):
        image = encode_spilled(entry, 8)
        assert image & 1 == 1                  # b0 marks spilled
        decoded = decode_spilled(image, 8)
        assert decoded.state is entry.state
        assert decoded.sharers == entry.sharers

    @given(entries(128))
    def test_roundtrip_128_cores(self, entry):
        decoded = decode_spilled(encode_spilled(entry, 128), 128)
        assert decoded.sharers == entry.sharers

    def test_decode_rejects_fused_image(self):
        with pytest.raises(ValueError):
            decode_spilled(0b10, 8)


class TestFpssFused:
    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=2**512 - 1),
           st.booleans(), st.booleans())
    def test_roundtrip(self, owner, block_data, dirty, busy):
        entry = DirectoryEntry(0, DirState.ME, owner=owner)
        image = encode_fused_fpss(entry, block_data, dirty, 8, busy)
        decoded, got_dirty, got_busy, high = decode_fused_fpss(image, 0, 8)
        assert decoded.owner == owner
        assert got_dirty is dirty and got_busy is busy
        assert high == block_data >> fpss_corrupted_bits(8)

    def test_only_low_bits_corrupted(self):
        entry = DirectoryEntry(0, DirState.ME, owner=5)
        data = (1 << 500) | 0b111111
        image = encode_fused_fpss(entry, data, dirty=False, n_cores=8)
        assert image >> 6 == data >> 6

    def test_reconstruction_from_eviction_bits(self):
        entry = DirectoryEntry(0, DirState.ME, owner=5)
        data = 0xDEADBEEFCAFE
        image = encode_fused_fpss(entry, data, dirty=True, n_cores=8)
        rebuilt = reconstruct_fused_fpss(image, data & 0b111111, 8)
        assert rebuilt == data

    def test_rejects_shared_entry(self):
        with pytest.raises(ValueError):
            encode_fused_fpss(DirectoryEntry(0, DirState.S, sharers=3),
                              0, False, 8)


class TestFuseAllFused:
    @given(entries(8), st.integers(min_value=0, max_value=2**512 - 1),
           st.booleans())
    def test_roundtrip(self, entry, block_data, dirty):
        image = encode_fused_fuseall(entry, block_data, dirty, 8)
        decoded, got_dirty, _ = decode_fused_fuseall(image, 0, 8)
        assert got_dirty is dirty
        assert decoded.state is entry.state
        if entry.state is DirState.S:
            assert decoded.sharers == entry.sharers
        else:
            assert decoded.owner == entry.owner

    def test_s_state_corrupts_more_bits(self):
        shared = DirectoryEntry(0, DirState.S, sharers=0xFF)
        owned = DirectoryEntry(0, DirState.ME, owner=0)
        data = (1 << 200) - 1
        image_s = encode_fused_fuseall(shared, data, False, 8)
        image_m = encode_fused_fuseall(owned, data, False, 8)
        assert image_s >> 12 == data >> 12
        assert image_m >> 7 == data >> 7


class TestHousedBlockImage:
    def test_segments_round_trip(self):
        housing = HousedBlockImage(n_cores=8, n_sockets=4)
        shared = DirectoryEntry(7, DirState.S, sharers=0b1010)
        owned = DirectoryEntry(7, DirState.ME, owner=3)
        housing.store(0, shared)
        housing.store(2, owned)
        got_shared = housing.load(0, block=7)
        got_owned = housing.load(2, block=7)
        assert got_shared.sharers == 0b1010
        assert got_shared.state is DirState.S
        assert got_owned.owner == 3
        assert housing.load(1, block=7) is None

    def test_clear_segment(self):
        housing = HousedBlockImage(n_cores=8, n_sockets=2)
        housing.store(1, DirectoryEntry(0, DirState.ME, owner=0))
        housing.clear(1)
        assert housing.load(1, 0) is None

    def test_pack_places_segments(self):
        housing = HousedBlockImage(n_cores=4, n_sockets=2)
        housing.store(1, DirectoryEntry(0, DirState.S, sharers=0b0011))
        image = housing.pack()
        width = 5
        assert image >> width == (1 << 4) | 0b0011
        assert image & (1 << width) - 1 == 0

    def test_rejects_too_many_sockets(self):
        with pytest.raises(ConfigError):
            HousedBlockImage(n_cores=128, n_sockets=8)

    def test_oversized_sharer_vector_rejected(self):
        with pytest.raises(ValueError):
            formats._entry_payload(
                DirectoryEntry(0, DirState.S, sharers=1 << 9), 8)
