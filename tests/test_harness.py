"""Tests for the runner, reporting, energy model, and system builder."""

import pytest

from repro.common.config import (DirectoryConfig, LLCReplacement, Protocol)
from repro.harness.energy import EnergyModel, estimate_energy
from repro.harness.reporting import Row, Table, geomean
from repro.harness.runner import run_workload
from repro.harness.system_builder import build_system
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

from tests.conftest import tiny_config, zerodev_config


class TestRunner:
    def run(self, config, accesses=400):
        system = build_system(config)
        workload = make_multithreaded(find_profile("blackscholes"),
                                      config, accesses, seed=1)
        return run_workload(system, workload, check_invariants_every=200)

    def test_runs_to_completion(self):
        result = self.run(tiny_config())
        assert result.stats.total_accesses == 4 * 400
        assert result.cycles > 0
        assert len(result.per_core_cycles) == 4

    def test_deterministic(self):
        a = self.run(tiny_config())
        b = self.run(tiny_config())
        assert a.per_core_cycles == b.per_core_cycles
        assert a.stats.traffic_bytes == b.stats.traffic_bytes

    def test_interleaves_by_local_time(self):
        result = self.run(tiny_config())
        cycles = result.per_core_cycles
        assert max(cycles) < 2 * min(cycles)   # no core raced far ahead

    def test_sampling_callback(self):
        config = tiny_config()
        system = build_system(config)
        workload = make_multithreaded(find_profile("blackscholes"),
                                      config, 200, seed=1)
        samples = []
        run_workload(system, workload, sample_every=100,
                     sample_fn=lambda s: samples.append(
                         s.stats.total_accesses))
        assert samples and samples == sorted(samples)

    def test_rejects_oversized_workload(self):
        config = tiny_config()
        system = build_system(config)
        workload = make_multithreaded(
            find_profile("blackscholes"),
            tiny_config(n_cores=8), 10, seed=1)
        with pytest.raises(ValueError):
            run_workload(system, workload)


class TestWarmupBoundary:
    """The ROI reset with unequal per-core trace lengths.

    A core whose trace ends *inside* the warm-up window must simply be
    absent from the region of interest -- never replayed, never counted
    twice -- and every surviving core must re-enter the ROI with a zero
    local clock.
    """

    def test_drive_interleaved_issues_each_access_exactly_once(self):
        from repro.harness.runner import _drive_interleaved

        lengths = [5, 50, 50]
        issued = []
        clocks = [0] * len(lengths)

        def issue(slot, index):
            issued.append((slot, index))
            clocks[slot] += 7 + slot     # uneven, deterministic
            return clocks[slot]

        steps = _drive_interleaved(list(lengths), issue, warmup=30,
                                   on_warmup=lambda: None)
        assert steps == sum(lengths)
        # Exactly once each: no access replayed across the boundary,
        # none dropped, per-core counts equal the trace lengths.
        assert len(issued) == len(set(issued)) == sum(lengths)
        for slot, length in enumerate(lengths):
            assert [i for s, i in issued if s == slot] == list(
                range(length))

    def test_short_trace_contributes_no_roi_stats(self):
        from repro.workloads.trace import CoreTrace, Workload
        import numpy as np

        config = tiny_config()
        profile = find_profile("blackscholes")
        donor = make_multithreaded(profile, config, 400, seed=3)
        traces = []
        for core, trace in enumerate(donor.traces):
            n = 12 if core == 0 else 400   # core 0 dies inside warm-up
            traces.append(CoreTrace(core, np.asarray(trace.ops[:n]),
                                    np.asarray(trace.addresses[:n])))
        workload = Workload("uneven", traces)
        per_core = {}
        for kernel in ("scalar", "batched"):
            system = build_system(config.with_(kernel=kernel))
            result = run_workload(system, workload, warmup=200)
            stats = result.stats
            assert stats.accesses[0] == 0      # finished pre-boundary
            for core, trace in enumerate(traces):
                assert stats.accesses[core] <= len(trace)
            assert sum(stats.accesses) == sum(
                len(t) for t in traces) - 200
            per_core[kernel] = (list(stats.accesses),
                                list(stats.cycles))
        assert per_core["scalar"] == per_core["batched"]


class TestBuilder:
    def test_dispatch(self):
        from repro.baselines import MgDSystem, SecDirSystem
        from repro.coherence.protocol import CMPSystem
        from repro.core.protocol import ZeroDEVSystem
        assert type(build_system(tiny_config())) is CMPSystem
        assert isinstance(build_system(zerodev_config()), ZeroDEVSystem)
        assert isinstance(
            build_system(tiny_config(protocol=Protocol.SECDIR)),
            SecDirSystem)
        assert isinstance(
            build_system(tiny_config(protocol=Protocol.MGD)), MgDSystem)

    def test_mesh_autosizing_for_big_sockets(self):
        config = tiny_config(n_cores=32)
        system = build_system(config)
        mesh = system.config.mesh
        assert mesh.width * mesh.height >= 32 + config.llc_banks

    def test_zerodev_directory_is_replacement_disabled(self):
        system = build_system(zerodev_config(
            directory=DirectoryConfig(ratio=1.0)))
        assert system.directory.replacement_disabled


class TestReporting:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([1.0, 0.0, 4.0]) == pytest.approx(2.0)

    def test_table_render(self):
        table = Table("Figure X")
        table.add("app", 0.98, paper=0.99, note="ok")
        text = table.render()
        assert "Figure X" in text
        assert "0.980" in text and "0.990" in text and "ok" in text

    def test_row_without_paper_value(self):
        row = Row("label", 1.0)
        assert "1.000" in row.formatted(10)

    def test_table_to_dict(self):
        table = Table("T")
        table.add("x", 1.5, paper=2.0, note="n")
        data = table.to_dict()
        assert data["title"] == "T"
        assert data["rows"][0] == {"label": "x", "measured": 1.5,
                                   "paper": 2.0, "unit": "", "note": "n"}


class TestEnergy:
    def run_stats(self, config):
        system = build_system(config)
        workload = make_multithreaded(find_profile("canneal"), config,
                                      400, seed=1)
        run_workload(system, workload)
        return system.stats

    def test_components_positive(self):
        config = tiny_config()
        energy = estimate_energy(config, self.run_stats(config))
        assert energy["total_j"] > 0
        assert energy["dir_dynamic_j"] > 0
        assert energy["dir_leakage_j"] > 0

    def test_no_directory_zeroes_dir_energy(self):
        config = zerodev_config()
        energy = estimate_energy(config, self.run_stats(config))
        assert energy["dir_dynamic_j"] == 0.0
        assert energy["dir_leakage_j"] == 0.0

    def test_directory_storage_estimate(self):
        model = EnergyModel()
        config = tiny_config()
        mb = model.directory_mb(config)
        expected_bits = config.directory_entries * (26 + 4 + 1)
        assert mb == pytest.approx(expected_bits / 8 / 2**20)
