"""Property-based protocol verification with hypothesis.

Every random access sequence, on every protocol, must terminate with

* data correctness (every load observes the latest committed version --
  checked on every read by the shadow memory while ``check_data`` is on),
* SWMR and directory precision (``check_invariants``), and
* for ZeroDEV: zero DEV invalidations, ever.

The block space is kept small relative to the tiny caches so sequences
exercise evictions, conflicts, sharing, spills, and memory housing.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol)
from repro.harness.system_builder import build_system
from repro.multisocket import MultiSocketSystem
from repro.workloads.trace import Op

from tests.conftest import tiny_config, zerodev_config

OPS = [Op.READ, Op.WRITE, Op.IFETCH]

accesses = st.lists(
    st.tuples(st.integers(0, 3),            # core
              st.sampled_from(OPS),         # operation
              st.integers(0, 95)),          # block
    min_size=1, max_size=300)

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def execute(system, script):
    for core, op, block in script:
        system.access(core, op, block << 6)
    system.check_invariants()
    return system


class TestBaselineProperties:
    @SETTINGS
    @given(accesses)
    def test_baseline_invariants(self, script):
        execute(build_system(tiny_config()), script)

    @SETTINGS
    @given(accesses)
    def test_small_directory_invariants(self, script):
        execute(build_system(tiny_config(
            directory=DirectoryConfig(ratio=0.125))), script)

    @SETTINGS
    @given(accesses)
    def test_inclusive_invariants(self, script):
        execute(build_system(tiny_config(
            llc_design=LLCDesign.INCLUSIVE)), script)

    @SETTINGS
    @given(accesses)
    def test_epd_invariants(self, script):
        execute(build_system(tiny_config(llc_design=LLCDesign.EPD)),
                script)

    @SETTINGS
    @given(accesses)
    def test_unbounded_never_evicts(self, script):
        system = execute(build_system(tiny_config(
            directory=DirectoryConfig(unbounded=True))), script)
        assert system.stats.dev_invalidations == 0


class TestZeroDevProperties:
    @SETTINGS
    @given(accesses, st.sampled_from(list(DirCachingPolicy)))
    def test_policies_are_dev_free(self, script, policy):
        system = execute(
            build_system(zerodev_config(dir_caching=policy)), script)
        assert system.stats.dev_invalidations == 0
        assert system.stats.dev_events == 0

    @SETTINGS
    @given(accesses, st.sampled_from([None, 0.125, 1.0]))
    def test_directory_sizes_are_dev_free(self, script, ratio):
        system = execute(build_system(zerodev_config(
            directory=DirectoryConfig(ratio=ratio))), script)
        assert system.stats.dev_invalidations == 0

    @SETTINGS
    @given(accesses)
    def test_cramped_llc_housing_lifecycle(self, script):
        """A 2-way LLC forces WB_DE / GET_DE / promote / restore."""
        system = execute(build_system(zerodev_config(
            llc=CacheGeometry(2048, 2))), script)
        assert system.stats.dev_invalidations == 0

    @SETTINGS
    @given(accesses, st.sampled_from(
        [LLCReplacement.SP_LRU, LLCReplacement.DATA_LRU]))
    def test_replacement_policies(self, script, replacement):
        system = execute(build_system(zerodev_config(
            llc_replacement=replacement,
            llc=CacheGeometry(2048, 2))), script)
        assert system.stats.dev_invalidations == 0

    @SETTINGS
    @given(accesses)
    def test_inclusive_zerodev_never_houses(self, script):
        system = execute(build_system(zerodev_config(
            llc_design=LLCDesign.INCLUSIVE)), script)
        assert system.stats.wb_de_messages == 0

    @SETTINGS
    @given(accesses)
    def test_epd_zerodev(self, script):
        system = execute(build_system(zerodev_config(
            llc_design=LLCDesign.EPD, llc=CacheGeometry(2048, 2))),
            script)
        assert system.stats.dev_invalidations == 0
        assert system.stats.entries_fused == 0


class TestComparisonBaselinesProperties:
    @SETTINGS
    @given(accesses, st.sampled_from([1.0, 0.25]))
    def test_secdir_invariants(self, script, ratio):
        execute(build_system(tiny_config(
            protocol=Protocol.SECDIR,
            directory=DirectoryConfig(ratio=ratio))), script)

    @SETTINGS
    @given(accesses, st.sampled_from([0.5, 0.125]))
    def test_mgd_invariants(self, script, ratio):
        execute(build_system(tiny_config(
            protocol=Protocol.MGD,
            directory=DirectoryConfig(ratio=ratio))), script)


multi_accesses = st.lists(
    st.tuples(st.integers(0, 1),             # socket
              st.integers(0, 3),             # core
              st.sampled_from(OPS),
              st.integers(0, 63)),
    min_size=1, max_size=200)


class TestMultiSocketProperties:
    @SETTINGS
    @given(multi_accesses)
    def test_baseline_two_sockets(self, script):
        system = MultiSocketSystem(tiny_config(), n_sockets=2)
        for socket, core, op, block in script:
            system.access(socket, core, op, block << 6)
        system.check_invariants()

    @SETTINGS
    @given(multi_accesses)
    def test_zerodev_two_sockets_cramped(self, script):
        system = MultiSocketSystem(
            zerodev_config(llc=CacheGeometry(2048, 2)), n_sockets=2)
        for socket, core, op, block in script:
            system.access(socket, core, op, block << 6)
        system.check_invariants()
        assert all(s.dev_invalidations == 0 for s in system.stats)
