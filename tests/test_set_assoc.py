"""Unit tests for the generic set-associative array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.block import L1Line
from repro.caches.set_assoc import SetAssocCache
from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError


def make_cache(size=512, ways=2):
    return SetAssocCache(CacheGeometry(size, ways))   # 8 blocks, 4 sets


class TestInsertLookup:
    def test_insert_and_lookup(self):
        cache = make_cache()
        cache.insert(L1Line(5))
        assert cache.lookup(5).block == 5
        assert 5 in cache

    def test_miss_returns_none(self):
        assert make_cache().lookup(3) is None

    def test_duplicate_insert_rejected(self):
        cache = make_cache()
        cache.insert(L1Line(5))
        with pytest.raises(SimulationError):
            cache.insert(L1Line(5))

    def test_eviction_returns_lru_victim(self):
        cache = make_cache()          # 2 ways, set = block % 4
        cache.insert(L1Line(0))
        cache.insert(L1Line(4))
        victim = cache.insert(L1Line(8))
        assert victim.block == 0

    def test_lookup_refreshes_lru(self):
        cache = make_cache()
        cache.insert(L1Line(0))
        cache.insert(L1Line(4))
        cache.lookup(0)               # 0 becomes MRU
        victim = cache.insert(L1Line(8))
        assert victim.block == 4

    def test_peek_does_not_refresh_lru(self):
        cache = make_cache()
        cache.insert(L1Line(0))
        cache.insert(L1Line(4))
        cache.peek(0)
        victim = cache.insert(L1Line(8))
        assert victim.block == 0

    def test_remove(self):
        cache = make_cache()
        cache.insert(L1Line(0))
        assert cache.remove(0).block == 0
        assert cache.remove(0) is None
        assert 0 not in cache

    def test_different_sets_do_not_conflict(self):
        cache = make_cache()
        for block in range(4):        # one per set
            cache.insert(L1Line(block))
        assert len(cache) == 4
        assert cache.insert(L1Line(4)) is None or True  # set 0 now full?
        # set 0 held block 0 only; inserting 4 must not evict.
        assert 0 in cache and 4 in cache


class TestCapacityProperty:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    def test_never_exceeds_geometry(self, blocks):
        cache = make_cache(size=1024, ways=4)   # 16 blocks, 4 sets
        resident = set()
        for block in blocks:
            if block in resident:
                cache.lookup(block)
                continue
            victim = cache.insert(L1Line(block))
            resident.add(block)
            if victim is not None:
                resident.discard(victim.block)
            assert len(cache) == len(resident)
            assert len(cache) <= 16
            for set_idx in range(4):
                assert len(cache.set_lines(set_idx)) <= 4


#: One cache operation: (op name, block). Small block space over the
#: 4-set geometry keeps every set under constant conflict pressure.
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "peek", "remove"]),
              st.integers(min_value=0, max_value=31)),
    min_size=1, max_size=250)

PROP_SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)


class TestLRUModelEquivalence:
    """Drive the O(1)-recency implementation and a brute-force reference
    model (plain lists, linear scans) through identical operation
    sequences; order, victims, and occupancy must match exactly."""

    WAYS = 4

    def _reference_apply(self, sets, op, block):
        """The obviously-correct model: list per set, index 0 is LRU."""
        lru = sets.setdefault(block % 4, [])
        if op == "insert":
            if block in lru:
                return "dup"
            victim = lru.pop(0) if len(lru) >= self.WAYS else None
            lru.append(block)
            return victim
        if op in ("lookup", "peek"):
            hit = block in lru
            if hit and op == "lookup":
                lru.remove(block)
                lru.append(block)
            return hit
        if block in lru:                       # remove
            lru.remove(block)
            return True
        return False

    @given(operations)
    @PROP_SETTINGS
    def test_matches_reference_model(self, ops):
        cache = make_cache(size=1024, ways=self.WAYS)  # 4 sets x 4 ways
        sets = {}
        for op, block in ops:
            expected = self._reference_apply(sets, op, block)
            if op == "insert":
                if expected == "dup":
                    with pytest.raises(SimulationError):
                        cache.insert(L1Line(block))
                    continue
                victim = cache.insert(L1Line(block))
                assert (victim.block if victim else None) == expected
            elif op == "lookup":
                assert (cache.lookup(block) is not None) is expected
            elif op == "peek":
                assert (cache.peek(block) is not None) is expected
            else:
                removed = cache.remove(block)
                assert (removed is not None) is expected
            for set_idx, lru in sets.items():
                got = [line.block for line in cache.set_lines(set_idx)]
                assert got == lru, (
                    f"set {set_idx} LRU order diverged after "
                    f"{op}({block})")

    @given(operations)
    @PROP_SETTINGS
    def test_index_and_sets_stay_consistent(self, ops):
        cache = make_cache(size=1024, ways=self.WAYS)
        for op, block in ops:
            try:
                getattr(cache, op)(L1Line(block) if op == "insert"
                                   else block)
            except SimulationError:
                pass                       # duplicate insert, rejected
            placed = [line.block
                      for set_idx in range(4)
                      for line in cache.set_lines(set_idx)]
            assert len(placed) == len(set(placed)) == len(cache)
            for resident in placed:
                line = cache.peek(resident)
                assert line is not None and line.block == resident
            for set_idx in range(4):
                for line in cache.set_lines(set_idx):
                    assert cache.set_of(line.block) == set_idx

    @given(operations)
    @PROP_SETTINGS
    def test_peek_and_untouched_lookup_preserve_order(self, ops):
        cache = make_cache(size=1024, ways=self.WAYS)
        for op, block in ops:
            if op == "insert":
                if cache.peek(block) is None:
                    cache.insert(L1Line(block))
                continue
            before = {idx: [line.block
                            for line in cache.set_lines(idx)]
                      for idx in range(4)}
            cache.peek(block)
            cache.lookup(block, touch=False)
            after = {idx: [line.block for line in cache.set_lines(idx)]
                     for idx in range(4)}
            assert before == after
