"""Unit tests for the generic set-associative array."""

import pytest
from hypothesis import given, strategies as st

from repro.caches.block import L1Line
from repro.caches.set_assoc import SetAssocCache
from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError


def make_cache(size=512, ways=2):
    return SetAssocCache(CacheGeometry(size, ways))   # 8 blocks, 4 sets


class TestInsertLookup:
    def test_insert_and_lookup(self):
        cache = make_cache()
        cache.insert(L1Line(5))
        assert cache.lookup(5).block == 5
        assert 5 in cache

    def test_miss_returns_none(self):
        assert make_cache().lookup(3) is None

    def test_duplicate_insert_rejected(self):
        cache = make_cache()
        cache.insert(L1Line(5))
        with pytest.raises(SimulationError):
            cache.insert(L1Line(5))

    def test_eviction_returns_lru_victim(self):
        cache = make_cache()          # 2 ways, set = block % 4
        cache.insert(L1Line(0))
        cache.insert(L1Line(4))
        victim = cache.insert(L1Line(8))
        assert victim.block == 0

    def test_lookup_refreshes_lru(self):
        cache = make_cache()
        cache.insert(L1Line(0))
        cache.insert(L1Line(4))
        cache.lookup(0)               # 0 becomes MRU
        victim = cache.insert(L1Line(8))
        assert victim.block == 4

    def test_peek_does_not_refresh_lru(self):
        cache = make_cache()
        cache.insert(L1Line(0))
        cache.insert(L1Line(4))
        cache.peek(0)
        victim = cache.insert(L1Line(8))
        assert victim.block == 0

    def test_remove(self):
        cache = make_cache()
        cache.insert(L1Line(0))
        assert cache.remove(0).block == 0
        assert cache.remove(0) is None
        assert 0 not in cache

    def test_different_sets_do_not_conflict(self):
        cache = make_cache()
        for block in range(4):        # one per set
            cache.insert(L1Line(block))
        assert len(cache) == 4
        assert cache.insert(L1Line(4)) is None or True  # set 0 now full?
        # set 0 held block 0 only; inserting 4 must not evict.
        assert 0 in cache and 4 in cache


class TestCapacityProperty:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    def test_never_exceeds_geometry(self, blocks):
        cache = make_cache(size=1024, ways=4)   # 16 blocks, 4 sets
        resident = set()
        for block in blocks:
            if block in resident:
                cache.lookup(block)
                continue
            victim = cache.insert(L1Line(block))
            resident.add(block)
            if victim is not None:
                resident.discard(victim.block)
            assert len(cache) == len(resident)
            assert len(cache) <= 16
            for set_idx in range(4):
                assert len(cache.set_lines(set_idx)) <= 4
