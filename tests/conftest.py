"""Shared fixtures and helpers for the test-suite.

``tiny_config`` builds a deliberately small socket (4 cores, 2-way L1s,
4-way L2s, a 4-way 128-block LLC over 2 banks, 1x directory) so targeted
scenarios can force conflicts, evictions, spills, and memory housing with
a handful of accesses.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import pytest

from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol, SystemConfig)
from repro.coherence.protocol import CMPSystem
from repro.harness.system_builder import build_system
from repro.workloads.trace import Op


def tiny_config(**overrides) -> SystemConfig:
    """A 4-core socket small enough to stress every structure quickly."""
    base = dict(
        n_cores=4,
        l1i=CacheGeometry(512, 2),       # 8 blocks, 4 sets
        l1d=CacheGeometry(512, 2),
        l2=CacheGeometry(2048, 4),       # 32 blocks, 8 sets
        llc=CacheGeometry(8192, 4),      # 128 blocks, 32 sets
        llc_banks=2,
    )
    base.update(overrides)
    return SystemConfig(**base)


def zerodev_config(**overrides) -> SystemConfig:
    """Tiny ZeroDEV socket with no sparse directory, FPSS + dataLRU."""
    defaults = dict(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU,
        dir_caching=DirCachingPolicy.FPSS,
    )
    defaults.update(overrides)
    return tiny_config(**defaults)


OPS = {"R": Op.READ, "W": Op.WRITE, "I": Op.IFETCH}


def drive(system: CMPSystem,
          script: Iterable[Tuple[int, str, int]]) -> List[int]:
    """Run (core, op-letter, block-number) steps; returns latencies."""
    latencies = []
    for core, op, block in script:
        latencies.append(system.access(core, OPS[op],
                                       block << BLOCK_SHIFT))
    system.check_invariants()
    return latencies


@pytest.fixture
def baseline():
    return build_system(tiny_config())


@pytest.fixture
def zerodev():
    return build_system(zerodev_config())


def block_in_bank_set(config: SystemConfig, bank: int, set_idx: int,
                      tag: int) -> int:
    """Construct a block number mapping to (bank, set) with ``tag``."""
    bank_bits = config.llc_banks.bit_length() - 1
    set_bits = config.llc_bank_sets.bit_length() - 1
    return (tag << (bank_bits + set_bits)) | (set_idx << bank_bits) | bank
