"""Directed tests for ZeroDEV's directory-entry caching policies."""

import pytest

from repro.caches.block import LineKind, MESI
from repro.coherence.entry import DirState, EntryLocation
from repro.common.config import (DirCachingPolicy, DirectoryConfig,
                                 LLCDesign, LLCReplacement)
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config, zerodev_config


def zdev(policy=DirCachingPolicy.FPSS, **kw):
    return build_system(zerodev_config(dir_caching=policy, **kw))


class TestFPSSPlacement:
    def test_owned_entry_fuses_with_block(self):
        system = zdev()
        drive(system, [(0, "R", 5)])
        line = system.bank_of(5).peek_data(5)
        assert line.kind is LineKind.FUSED
        assert line.entry.state is DirState.ME
        assert system.stats.entries_fused == 1
        assert system.stats.entries_spilled == 0

    def test_sharing_moves_entry_to_spilled(self):
        system = zdev()
        drive(system, [(0, "R", 5), (1, "R", 5)])
        assert system.stats.fuse_to_spill == 1
        assert system.bank_of(5).peek_data(5).kind is LineKind.DATA
        spill = system.bank_of(5).peek_spill(5)
        assert spill is not None
        assert spill.entry.state is DirState.S

    def test_upgrade_refuses_spill_back_to_fused(self):
        system = zdev()
        drive(system, [(0, "R", 5), (1, "R", 5), (1, "W", 5)])
        assert system.stats.spill_to_fuse >= 1
        line = system.bank_of(5).peek_data(5)
        assert line.kind is LineKind.FUSED
        assert line.entry.owner == 1

    def test_code_entry_spills(self):
        system = zdev()
        drive(system, [(0, "I", 5)])
        assert system.bank_of(5).peek_spill(5) is not None
        assert system.stats.entries_spilled == 1

    def test_shared_read_not_penalized(self):
        system = zdev()
        drive(system, [(0, "I", 5), (1, "I", 5), (2, "I", 5)])
        assert system.stats.extra_data_array_reads == 0
        assert system.stats.fused_read_forwards == 0

    def test_entry_freed_with_last_copy(self):
        system = zdev()
        drive(system, [(0, "R", 5)])
        same_l2_set = [5 + 8 * k for k in range(1, 5)]
        drive(system, [(0, "R", b) for b in same_l2_set])
        assert system._peek_entry(5) is None
        line = system.bank_of(5).peek_data(5)
        assert line is not None and line.kind is LineKind.DATA


class TestFPSSDowngradeRefresh:
    """Fuse -> spill on M/E -> S: the reconstructed LLC copy must carry
    the owner's data, never the stale fused low-order bits.

    The fused frame's version field still holds the fill-time value
    (its low bits are the entry, per Section III-C2); when the owner
    downgrades, ``_entry_state_changed`` unfuses the frame *before*
    ``_install_llc_data`` overwrites it with the owner's version. These
    tests pin that ordering: the copy that becomes readable is fresh.
    """

    def test_dirty_downgrade_installs_owner_version(self):
        system = zdev()
        drive(system, [(0, "W", 5)])      # M copy, fused entry
        fused = system.bank_of(5).peek_data(5)
        assert fused.kind is LineKind.FUSED
        stale = fused.version             # fill-time version, pre-write
        drive(system, [(1, "R", 5)])      # owner downgrade, fuse->spill
        assert system.stats.fuse_to_spill == 1
        line = system.bank_of(5).peek_data(5)
        assert line.kind is LineKind.DATA
        assert line.dirty
        assert line.version == system.shadow.latest(5) != stale

    def test_clean_downgrade_installs_owner_version(self):
        system = zdev()
        drive(system, [(0, "R", 5), (1, "R", 5)])   # E -> S downgrade
        line = system.bank_of(5).peek_data(5)
        assert line.kind is LineKind.DATA
        assert line.version == system.shadow.latest(5)

    def test_llc_serves_third_reader_after_downgrade(self):
        # drive() re-checks every read against the shadow oracle: a read
        # of the stale reconstructed copy would raise. The third reader
        # must hit the refreshed LLC copy, not forward to a sharer.
        system = zdev()
        drive(system, [(0, "W", 5), (1, "R", 5)])
        before = system.stats.llc_data_hits
        drive(system, [(2, "R", 5)])
        assert system.stats.llc_data_hits == before + 1

    def test_repeated_fuse_spill_flapping_stays_coherent(self):
        system = zdev()
        # W promotes spill->fuse, the next core's R demotes fuse->spill;
        # every transition rebuilds the frame, every read shadow-checked.
        script = []
        for round_ in range(6):
            writer = round_ % 4
            script.append((writer, "W", 5))
            script.append(((writer + 1) % 4, "R", 5))
        drive(system, script)
        assert system.stats.fuse_to_spill >= 6
        assert system.stats.spill_to_fuse >= 5
        assert system.stats.dev_invalidations == 0
        line = system.bank_of(5).peek_data(5)
        assert line.version == system.shadow.latest(5)

    def test_downgrade_under_splru_keeps_entry_above_block(self):
        system = build_system(zerodev_config(
            llc_replacement=LLCReplacement.SP_LRU))
        drive(system, [(0, "W", 5), (1, "R", 5)])
        bank = system.bank_of(5)
        frames = bank.frames_in_set(bank.set_of(5))
        kinds = [(f.block, f.kind) for f in frames]
        assert kinds.index((5, LineKind.DATA)) < kinds.index(
            (5, LineKind.SPILLED))


class TestSpillAll:
    def test_every_entry_spills(self):
        system = zdev(DirCachingPolicy.SPILL_ALL)
        drive(system, [(0, "R", 5), (0, "I", 7)])
        assert system.stats.entries_spilled == 2
        assert system.stats.entries_fused == 0

    def test_shared_read_pays_extra_data_array_access(self):
        system = zdev(DirCachingPolicy.SPILL_ALL)
        drive(system, [(0, "I", 5), (1, "I", 5)])
        assert system.stats.extra_data_array_reads >= 1

    def test_owned_block_spilled_entry_read_forwards(self):
        system = zdev(DirCachingPolicy.SPILL_ALL)
        drive(system, [(0, "W", 5), (1, "R", 5)])
        assert system.stats.forwarded_requests == 1


class TestFuseAll:
    def test_shared_entry_fuses_when_block_present(self):
        system = zdev(DirCachingPolicy.FUSE_ALL)
        drive(system, [(0, "I", 5)])
        line = system.bank_of(5).peek_data(5)
        assert line.kind is LineKind.FUSED
        assert line.entry.state is DirState.S

    def test_read_of_fused_shared_block_forwards(self):
        system = zdev(DirCachingPolicy.FUSE_ALL)
        drive(system, [(0, "I", 5), (1, "I", 5)])
        assert system.stats.fused_read_forwards >= 1
        assert system.stats.forwarded_requests >= 1

    def test_upgrade_keeps_baseline_path(self):
        system = zdev(DirCachingPolicy.FUSE_ALL)
        drive(system, [(0, "R", 5), (1, "R", 5), (0, "W", 5)])
        assert system.cores[0].probe(5) is MESI.M

    def test_last_sharer_eviction_retrieves_bits(self):
        from repro.common.messages import MessageType
        system = zdev(DirCachingPolicy.FUSE_ALL)
        drive(system, [(0, "I", 5), (1, "I", 5)])
        # Evict both copies through L2 conflicts.
        conflicts = [5 + 8 * k for k in range(1, 5)]
        drive(system, [(0, "I", b) for b in conflicts]
              + [(1, "I", b) for b in conflicts])
        assert system._peek_entry(5) is None
        assert system.stats.messages.get(MessageType.EVICT_ACK, 0) >= 1


class TestZeroDevGuarantee:
    @pytest.mark.parametrize("policy", list(DirCachingPolicy))
    def test_no_devs_under_conflict_pressure(self, policy):
        system = zdev(policy)
        script = [(c, "RWI"[k % 3], (k * 3 + c) % 64)
                  for k in range(150) for c in range(4)]
        drive(system, script)
        assert system.stats.dev_invalidations == 0
        assert system.stats.dev_events == 0

    def test_tiny_sparse_directory_overflows_to_llc(self):
        system = build_system(zerodev_config(
            directory=DirectoryConfig(ratio=0.125)))
        blocks = [2 * k for k in range(20)]
        drive(system, [(0, "R", b) for b in blocks])
        assert system.stats.dev_invalidations == 0
        in_llc = system.stats.entries_fused + system.stats.entries_spilled
        assert in_llc >= 1
        assert len(system.directory) >= 1

    def test_sparse_directory_room_used_first(self):
        system = build_system(zerodev_config(
            directory=DirectoryConfig(ratio=1.0)))
        drive(system, [(0, "R", 5)])
        assert system.directory.peek(5) is not None
        assert system.stats.entries_fused == 0


class TestEPDZeroDev:
    def test_epd_never_fuses(self):
        system = build_system(zerodev_config(llc_design=LLCDesign.EPD))
        drive(system, [(0, "R", 5), (0, "I", 7), (1, "R", 5),
                       (1, "W", 5)])
        assert system.stats.entries_fused == 0
        assert system.stats.spill_to_fuse == 0
        assert system.stats.entries_spilled >= 2

    def test_epd_zero_devs(self):
        system = build_system(zerodev_config(llc_design=LLCDesign.EPD))
        script = [(c, "RW"[k % 2], (k * 5 + c) % 48)
                  for k in range(100) for c in range(4)]
        drive(system, script)
        assert system.stats.dev_invalidations == 0


class TestInclusiveZeroDev:
    def test_no_entry_ever_written_to_memory(self):
        system = build_system(zerodev_config(
            llc_design=LLCDesign.INCLUSIVE))
        script = [(c, "RWI"[k % 3], (k * 7 + c) % 96)
                  for k in range(200) for c in range(4)]
        drive(system, script)
        assert system.stats.wb_de_messages == 0
        assert system.stats.entry_llc_evictions == 0
        assert system.stats.dev_invalidations == 0

    def test_inclusion_invalidations_remain(self):
        system = build_system(zerodev_config(
            llc_design=LLCDesign.INCLUSIVE))
        blocks = [t << 5 for t in range(8)]
        drive(system, [(0, "R", b) for b in blocks])
        assert system.stats.inclusion_invalidations >= 1
