"""Tests for the 4-socket composition and the Section III-D flows."""

import pytest

from repro.caches.block import MESI
from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCReplacement, Protocol)
from repro.common.errors import ConfigError
from repro.coherence.entry import DirState
from repro.multisocket import MultiSocketSystem
from repro.workloads.trace import Op

from tests.conftest import tiny_config


def make_multi(n_sockets=2, **kw):
    return MultiSocketSystem(tiny_config(**kw), n_sockets=n_sockets)


def make_multi_zerodev(n_sockets=2, **kw):
    defaults = dict(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU,
        dir_caching=DirCachingPolicy.FPSS,
    )
    defaults.update(kw)
    return MultiSocketSystem(tiny_config(**defaults), n_sockets=n_sockets)


def access(system, socket, core, op, block):
    system.access(socket, core, {"R": Op.READ, "W": Op.WRITE,
                                 "I": Op.IFETCH}[op], block << BLOCK_SHIFT)


class TestSocketLevelMESI:
    def test_single_socket_fetch_grants_exclusive(self):
        system = make_multi()
        access(system, 0, 0, "R", 8)
        entry = system._entries[8]
        assert entry.state is DirState.ME and entry.owner == 0
        assert system.sockets[0].cores[0].probe(8) is MESI.E
        system.check_invariants()

    def test_cross_socket_read_downgrades_owner(self):
        system = make_multi()
        access(system, 0, 0, "W", 8)
        access(system, 1, 0, "R", 8)
        entry = system._entries[8]
        assert entry.state is DirState.S
        assert sorted(entry.sharer_sockets()) == [0, 1]
        assert system.sockets[0].cores[0].probe(8) is MESI.S
        system.check_invariants()

    def test_second_socket_gets_shared_grant(self):
        system = make_multi()
        access(system, 0, 0, "R", 8)
        access(system, 1, 0, "R", 8)
        # Socket 1's core must be S (a silent E->M would be incoherent).
        assert system.sockets[1].cores[0].probe(8) is MESI.S

    def test_cross_socket_write_invalidates(self):
        system = make_multi()
        access(system, 0, 0, "R", 8)
        access(system, 0, 1, "R", 8)
        access(system, 1, 0, "W", 8)
        assert system.sockets[0].cores[0].probe(8) is None
        assert system.sockets[0].cores[1].probe(8) is None
        assert system._entries[8].owner == 1
        system.check_invariants()

    def test_upgrade_acquires_socket_exclusivity(self):
        system = make_multi()
        access(system, 0, 0, "R", 8)
        access(system, 1, 0, "R", 8)
        access(system, 0, 0, "W", 8)     # upgrade through socket level
        assert system.sockets[1].cores[0].probe(8) is None
        assert system._entries[8].owner == 0
        system.check_invariants()

    def test_data_correct_across_sockets(self):
        system = make_multi()
        # Writes and reads ping-pong across sockets; the shared shadow
        # memory asserts every read sees the latest version.
        for round_ in range(6):
            socket = round_ % 2
            access(system, socket, 0, "W", 8)
            access(system, 1 - socket, 1, "R", 8)
        system.check_invariants()

    def test_presence_lost_updates_socket_directory(self):
        system = make_multi()
        access(system, 0, 0, "R", 8)
        # Evict via L2 conflicts, then evict the LLC copy too.
        for k in range(1, 5):
            access(system, 0, 0, "R", 8 + 8 * k)
        bank = system.sockets[0].bank_of(8)
        line = bank.peek_data(8)
        if line is not None:
            # Force LLC eviction by filling the set.
            set_blocks = [8 + 32 * t for t in range(1, 6)]
            for b in set_blocks:
                access(system, 0, 1, "R", b)
        entry = system._entries.get(8)
        assert entry is None or not entry.is_sharer(0) or \
            bank.peek_data(8) is not None

    def test_rejects_secdir(self):
        with pytest.raises(ConfigError):
            make_multi(protocol=Protocol.SECDIR)


class TestMultiSocketZeroDev:
    def cramped(self):
        return make_multi_zerodev(
            llc=CacheGeometry(2048, 2))      # 2-way LLC forces WB_DE

    def force_wb_de(self, system, socket=0):
        target = system.sockets[socket]
        blocks = [32 * t for t in range(4)]  # one LLC set of socket 0
        for block in blocks:
            access(system, socket, 0, "I", block)
            access(system, socket, 1, "I", block)
            if target.stats.wb_de_messages:
                break
        assert target.stats.wb_de_messages >= 1
        housed = [b for b in blocks
                  if target._housing.peek(b) is not None]
        assert housed
        return housed[0]

    def test_wb_de_corrupts_home_memory(self):
        system = self.cramped()
        block = self.force_wb_de(system)
        assert system.is_garbage(block)
        assert system.sockets[0].cores[0].probe(block) is MESI.S
        system.check_invariants()

    def test_owner_socket_serves_corrupted_block(self):
        system = self.cramped()
        block = self.force_wb_de(system, socket=0)
        # Socket 1 reads the corrupted block: socket-level owner is 0,
        # the data comes from socket 0 and memory stays corrupted.
        access(system, 1, 0, "R", block)
        assert system.is_garbage(block)
        entry = system._entries[block]
        assert sorted(entry.sharer_sockets()) == [0, 1]
        system.check_invariants()

    def test_denf_nack_flow(self):
        system = make_multi_zerodev(n_sockets=4,
                                    llc=CacheGeometry(2048, 2))
        # Socket 0 shares block 0 between two cores (S entry, spilled),
        # then socket 1 reads it too: socket-level S state.
        access(system, 0, 0, "I", 0)
        access(system, 0, 1, "I", 0)
        access(system, 1, 0, "I", 0)
        # Thrash socket 0's LLC set until its spilled entry is evicted
        # to home memory (WB_DE) while the block stays socket-shared.
        tag = 1
        while (system.sockets[0]._housing.peek(0) is None and tag < 24):
            access(system, 0, 2, "I", 16 * tag)
            access(system, 0, 3, "I", 16 * tag)
            tag += 1
        assert system.sockets[0]._housing.peek(0) is not None
        # A third socket reads: home forwards to sharer socket 0, whose
        # intra-socket entry is housed at home -> DENF_NACK ->
        # re-forward with the extracted entry (Figure 15 steps 7-11).
        access(system, 2, 0, "R", 0)
        assert system.denf_nacks >= 1
        system.check_invariants()

    def test_restore_on_system_wide_last_copy(self):
        system = self.cramped()
        block = self.force_wb_de(system)
        target = system.sockets[0]
        conflicts = [block + 8 * k for k in range(1, 5)]
        for core in (0, 1):
            for b in conflicts:
                access(system, 0, core, "I", b)
        assert system.restores >= 1
        assert not system.is_garbage(block)
        # The healed block is readable from memory by another socket.
        access(system, 1, 0, "R", block)
        system.check_invariants()

    def test_zero_devs_multisocket(self):
        system = self.cramped()
        for k in range(120):
            for socket in range(2):
                for core in range(4):
                    access(system, socket, core, "RWI"[k % 3],
                           (k * 3 + core + socket * 7) % 64)
        for socket_stats in system.stats:
            assert socket_stats.dev_invalidations == 0
        system.check_invariants()

    def test_four_sockets(self):
        system = make_multi_zerodev(n_sockets=4)
        for k in range(60):
            for socket in range(4):
                access(system, socket, k % 4, "RW"[k % 2],
                       (k * 5 + socket) % 48)
        system.check_invariants()
        assert sum(s.dev_invalidations for s in system.stats) == 0


class TestSocketDirectoryCache:
    def test_miss_costs_memory_lookup(self):
        system = make_multi()
        latency = system._dir_lookup_latency(12345)
        assert latency > 0
        assert system._dir_lookup_latency(12345) == 0   # now cached

    def test_lru_eviction(self):
        system = MultiSocketSystem(tiny_config(), n_sockets=2,
                                   dir_cache_blocks=2)
        system._dir_lookup_latency(1)
        system._dir_lookup_latency(2)
        system._dir_lookup_latency(3)    # evicts 1
        assert system._dir_lookup_latency(1) > 0
