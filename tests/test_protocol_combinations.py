"""Cross-product scenarios: policies x LLC designs x directory sizes.

These complement the targeted tests with exhaustive small-matrix checks
that every legal configuration runs a mixed workload invariant-clean and
that the key per-configuration facts hold (DEV freedom, fusion rules,
inclusive never housing entries).
"""

import pytest

from repro.caches.block import LineKind, MESI
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol)
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config, zerodev_config

MIXED_SCRIPT = [(c, "RWI"[(k + c) % 3], (5 * k + 11 * c) % 120)
                for k in range(150) for c in range(4)]


class TestZeroDevMatrix:
    @pytest.mark.parametrize("policy", list(DirCachingPolicy))
    @pytest.mark.parametrize("design", list(LLCDesign))
    @pytest.mark.parametrize("ratio", [None, 0.125])
    def test_runs_dev_free(self, policy, design, ratio):
        system = build_system(zerodev_config(
            dir_caching=policy, llc_design=design,
            directory=DirectoryConfig(ratio=ratio)))
        drive(system, MIXED_SCRIPT)
        assert system.stats.dev_invalidations == 0
        if design is LLCDesign.INCLUSIVE:
            assert system.stats.wb_de_messages == 0
        if design is LLCDesign.EPD:
            assert system.stats.entries_fused == 0

    @pytest.mark.parametrize("replacement",
                             [LLCReplacement.SP_LRU,
                              LLCReplacement.DATA_LRU])
    def test_cramped_llc_all_replacements(self, replacement):
        system = build_system(zerodev_config(
            llc=CacheGeometry(2048, 2), llc_replacement=replacement))
        drive(system, MIXED_SCRIPT)
        assert system.stats.dev_invalidations == 0


class TestBaselineMatrix:
    @pytest.mark.parametrize("design", list(LLCDesign))
    @pytest.mark.parametrize("ratio", [1.0, 0.125])
    def test_baseline_designs(self, design, ratio):
        system = build_system(tiny_config(
            llc_design=design, directory=DirectoryConfig(ratio=ratio)))
        drive(system, MIXED_SCRIPT)

    @pytest.mark.parametrize("protocol",
                             [Protocol.SECDIR, Protocol.MGD])
    def test_comparison_baselines_with_small_directory(self, protocol):
        system = build_system(tiny_config(
            protocol=protocol, directory=DirectoryConfig(ratio=0.25)))
        drive(system, MIXED_SCRIPT)


class TestWriteReadInterleavings:
    """Fine-grained cross-core dataflow patterns on a single block."""

    def patterns(self):
        return [
            # producer/consumer ping-pong
            [(0, "W", 9), (1, "R", 9), (0, "W", 9), (1, "R", 9)],
            # rotating writer
            [(c, "W", 9) for c in range(4)] * 2,
            # broadcast then upgrade
            [(0, "W", 9), (1, "R", 9), (2, "R", 9), (3, "R", 9),
             (2, "W", 9)],
            # read-modify-write storm
            [(c, op, 9) for c in range(4) for op in ("R", "W")],
        ]

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_single_block_dataflow(self, protocol):
        for pattern in self.patterns():
            if protocol is Protocol.ZERODEV:
                system = build_system(zerodev_config())
            elif protocol is Protocol.DLS:
                system = build_system(tiny_config(
                    protocol=protocol,
                    directory=DirectoryConfig(ratio=None),
                    llc_design=LLCDesign.INCLUSIVE))
            else:
                system = build_system(tiny_config(protocol=protocol))
            drive(system, pattern)   # shadow memory checks every read

    def test_false_sharing_neighbours(self, zerodev):
        script = [(c, "W", 16 + c) for c in range(4)] * 5 \
            + [(c, "R", 16 + (c + 1) % 4) for c in range(4)] * 5
        drive(zerodev, script)
        assert zerodev.stats.dev_invalidations == 0


class TestLatencyOrdering:
    """Latency relationships the timing model must preserve."""

    def test_l1_faster_than_l2_faster_than_uncore(self, baseline):
        miss = drive(baseline, [(0, "R", 33)])[0]
        l1 = drive(baseline, [(0, "R", 33)])[0]      # immediate re-read
        # Evict 33 from the 2-way L1D set (blocks 37, 41 share L1 set 1
        # but land in different L2 sets, so 33 stays in the L2).
        drive(baseline, [(0, "R", 37), (0, "R", 41)])
        l2 = drive(baseline, [(0, "R", 33)])[0]
        assert l1 < l2 < miss

    def test_three_hop_costs_more_than_llc_hit(self, baseline):
        drive(baseline, [(0, "W", 40)])            # owned by core 0
        forwarded = drive(baseline, [(1, "R", 40)])[0]
        drive(baseline, [(2, "I", 41)])            # S block in LLC
        llc_hit = drive(baseline, [(3, "I", 41)])[0]
        assert forwarded > llc_hit

    def test_dram_miss_costs_most(self, baseline):
        dram = drive(baseline, [(0, "R", 48)])[0]
        drive(baseline, [(1, "R", 48)])
        llc = drive(baseline, [(2, "R", 48)])[0]
        assert dram > llc

    def test_spillall_read_penalty_visible(self):
        spill = build_system(zerodev_config(
            dir_caching=DirCachingPolicy.SPILL_ALL))
        fpss = build_system(zerodev_config())
        for system in (spill, fpss):
            drive(system, [(0, "I", 7), (1, "I", 7)])
        lat_spill = drive(spill, [(2, "I", 7)])[0]
        lat_fpss = drive(fpss, [(2, "I", 7)])[0]
        # The extra data-array read is partially hidden by the MLP
        # model, but must remain visible on the critical path.
        delta = lat_spill - lat_fpss
        assert 0 < delta <= spill.config.latency.llc_data
