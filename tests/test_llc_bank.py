"""Unit tests for the LLC bank: frame kinds, policies, fuse/spill."""

import pytest

from repro.caches.block import LLCLine, LineKind
from repro.caches.llc import LLCBank
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.common.config import LLCReplacement
from repro.common.errors import ProtocolInvariantError, SimulationError


def make_bank(ways=4, sets=4, replacement=LLCReplacement.LRU):
    return LLCBank(0, sets, ways, replacement, n_banks=1)


def data(block, dirty=False, version=0):
    return LLCLine(block, LineKind.DATA, dirty=dirty, version=version)


def entry_for(block, state=DirState.S, owner=None, sharers=0b1):
    if state is DirState.ME and owner is None:
        owner = 0
    return DirectoryEntry(block, state, owner=owner, sharers=sharers)


def spill(block):
    line = LLCLine(block, LineKind.SPILLED, entry=entry_for(block))
    line.entry.location = EntryLocation.LLC_SPILLED
    return line


class TestBasicFrames:
    def test_insert_and_lookup_data(self):
        bank = make_bank()
        bank.insert(data(4))
        assert bank.lookup_data(4).block == 4
        assert bank.lookup_spill(4) is None

    def test_data_and_spill_coexist_under_same_tag(self):
        bank = make_bank()
        bank.insert(data(4))
        bank.insert(spill(4))
        assert bank.lookup_data(4).kind is LineKind.DATA
        assert bank.lookup_spill(4).kind is LineKind.SPILLED
        assert len(bank.frames_in_set(bank.set_of(4))) == 2

    def test_duplicate_data_frame_rejected(self):
        bank = make_bank()
        bank.insert(data(4))
        with pytest.raises(SimulationError):
            bank.insert(data(4))

    def test_lru_victim(self):
        bank = make_bank(ways=2)
        bank.insert(data(0))
        bank.insert(data(4))
        victim = bank.insert(data(8))
        assert victim.block == 0

    def test_counts(self):
        bank = make_bank()
        bank.insert(data(0))
        bank.insert(spill(4))
        entry = entry_for(8, DirState.ME, owner=1)
        bank.insert(data(8))
        assert bank.fuse(8, entry)
        assert bank.data_block_count() == 2
        assert bank.spilled_count() == 1
        assert bank.fused_count() == 1


class TestFuseUnfuse:
    def test_fuse_marks_frame_and_location(self):
        bank = make_bank()
        bank.insert(data(4, dirty=True, version=3))
        entry = entry_for(4, DirState.ME, owner=2)
        assert bank.fuse(4, entry)
        line = bank.lookup_data(4)
        assert line.kind is LineKind.FUSED
        assert line.dirty and line.version == 3
        assert entry.location is EntryLocation.LLC_FUSED

    def test_fuse_fails_when_absent(self):
        bank = make_bank()
        assert not bank.fuse(4, entry_for(4, DirState.ME, owner=0))

    def test_fuse_fails_on_already_fused(self):
        bank = make_bank()
        bank.insert(data(4))
        bank.fuse(4, entry_for(4, DirState.ME, owner=0))
        assert not bank.fuse(4, entry_for(4, DirState.ME, owner=1))

    def test_unfuse_restores_data(self):
        bank = make_bank()
        bank.insert(data(4))
        entry = entry_for(4, DirState.ME, owner=0)
        bank.fuse(4, entry)
        assert bank.unfuse(4) is entry
        assert bank.lookup_data(4).kind is LineKind.DATA

    def test_unfuse_without_fused_raises(self):
        bank = make_bank()
        bank.insert(data(4))
        with pytest.raises(ProtocolInvariantError):
            bank.unfuse(4)

    def test_free_spill(self):
        bank = make_bank()
        line = spill(4)
        bank.insert(line)
        assert bank.free_spill(4) is line.entry
        assert bank.lookup_spill(4) is None

    def test_free_spill_missing_raises(self):
        with pytest.raises(ProtocolInvariantError):
            make_bank().free_spill(4)


class TestSpLRU:
    def test_insert_keeps_resident_spill_above_its_block(self):
        # Regression: re-installing a block's data frame used to land at
        # MRU *above* the block's resident spilled entry, inverting the
        # spLRU order; replacement would then evict the live entry
        # (WB_DE) while its block stayed resident -- case (iiib).
        bank = make_bank(ways=3, replacement=LLCReplacement.SP_LRU)
        bank.insert(spill(4))
        bank.insert(data(8))
        bank.insert(data(4))
        frames = bank.frames_in_set(bank.set_of(4))
        assert [(f.block, f.kind) for f in frames[-2:]] == [
            (4, LineKind.DATA), (4, LineKind.SPILLED)]
        assert bank.choose_victim(bank.set_of(4)).block == 8

    def test_spill_insert_not_reordered(self):
        # The reorder applies to data inserts only; a freshly spilled
        # entry already lands at MRU, above its block.
        bank = make_bank(ways=3, replacement=LLCReplacement.SP_LRU)
        bank.insert(data(4))
        bank.insert(spill(4))
        frames = bank.frames_in_set(bank.set_of(4))
        assert frames[-1].kind is LineKind.SPILLED

    def test_promotion_with_spill_already_at_mru(self):
        # Spilled entry at MRU, then a data access to the same block:
        # the touch sequence (block first, entry second) must leave the
        # entry above the block, not below it.
        bank = make_bank(ways=3, replacement=LLCReplacement.SP_LRU)
        bank.insert(data(4))
        bank.insert(data(8))
        bank.insert(spill(4))           # spill4 is MRU
        bank.lookup_data(4)
        frames = bank.frames_in_set(bank.set_of(4))
        assert [(f.block, f.kind) for f in frames] == [
            (8, LineKind.DATA), (4, LineKind.DATA), (4, LineKind.SPILLED)]

    def test_data_access_promotes_its_spill_above_it(self):
        bank = make_bank(ways=3, replacement=LLCReplacement.SP_LRU)
        bank.insert(spill(4))
        bank.insert(data(4))
        bank.insert(data(8))
        # Access block 4: B to MRU, then its spill above it.
        bank.lookup_data(4)
        frames = bank.frames_in_set(bank.set_of(4))
        assert [f.kind for f in frames[-2:]] == [LineKind.DATA,
                                                 LineKind.SPILLED]
        victim = bank.choose_victim(bank.set_of(4))
        assert victim.block == 8        # block 8 is now LRU

    def test_block_evicted_before_its_spill(self):
        bank = make_bank(ways=2, replacement=LLCReplacement.SP_LRU)
        bank.insert(data(4))
        bank.insert(spill(4))
        bank.lookup_data(4)
        assert bank.choose_victim(bank.set_of(4)).kind is LineKind.DATA


class TestDataLRU:
    def test_data_blocks_evicted_before_entries(self):
        bank = make_bank(ways=3, replacement=LLCReplacement.DATA_LRU)
        bank.insert(spill(4))
        bank.insert(data(8))
        bank.insert(data(12))
        bank.lookup_data(8)     # 12 is now the LRU data block? no: 12 newer
        victim = bank.choose_victim(bank.set_of(4))
        assert victim.kind is LineKind.DATA
        assert victim.block == 12 or victim.block == 8
        # precisely: LRU-to-MRU = [spill4, 12, 8] -> first DATA is 12
        assert victim.block == 12

    def test_entries_only_evicted_when_no_data_left(self):
        bank = make_bank(ways=2, replacement=LLCReplacement.DATA_LRU)
        bank.insert(spill(4))
        entry = entry_for(8, DirState.ME, owner=0)
        bank.insert(data(8))
        bank.fuse(8, entry)     # set now: spill + fused, no plain data
        victim = bank.choose_victim(bank.set_of(4))
        assert victim.kind is LineKind.SPILLED

    def test_protection_of_own_spill_during_fill(self):
        bank = make_bank(ways=2, replacement=LLCReplacement.DATA_LRU)
        bank.insert(spill(4))
        other = spill(8)
        bank.insert(other)
        victim = bank.choose_victim(bank.set_of(4), protect_block=4)
        assert victim is other

    def test_protection_covers_data_frames_too(self):
        bank = make_bank(ways=2, replacement=LLCReplacement.DATA_LRU)
        bank.insert(data(4))
        bank.insert(spill(8))
        victim = bank.choose_victim(bank.set_of(4), protect_block=4)
        assert victim.block == 8

    def test_protection_falls_back_when_alone(self):
        bank = make_bank(ways=1, replacement=LLCReplacement.DATA_LRU)
        own = spill(4)
        bank.insert(own)
        assert bank.choose_victim(bank.set_of(4),
                                  protect_block=4) is own

    def test_insert_protects_own_block(self):
        # Spilling an entry must not evict its own block's data frame.
        bank = make_bank(ways=2, replacement=LLCReplacement.DATA_LRU)
        bank.insert(data(4))
        bank.insert(data(8))
        victim = bank.insert(spill(4))
        assert victim.block == 8

    def test_choose_victim_empty_set_raises(self):
        with pytest.raises(SimulationError):
            make_bank().choose_victim(0)

    def test_all_entries_set_falls_back_to_lru_entry(self):
        # A set with no V=1 block (all spilled/fused frames) has no
        # dataLRU candidate; the policy falls back to plain LRU over the
        # entry frames -- the *oldest* entry is the WB_DE victim.
        bank = make_bank(ways=3, replacement=LLCReplacement.DATA_LRU)
        bank.insert(spill(4))
        bank.insert(spill(8))
        bank.insert(data(12))
        bank.fuse(12, entry_for(12, DirState.ME, owner=0))
        victim = bank.choose_victim(bank.set_of(4))
        assert victim.kind is LineKind.SPILLED and victim.block == 4

    def test_all_protected_data_set_picks_lru_entry_frame(self):
        # dataLRU tier 2 pinned: the only DATA frame is the protected
        # block's own, the rest are entry frames -- the victim is the
        # least-recent *unprotected* frame in LRU order, deterministic
        # because frames is an ordered list, never a dict walk.
        bank = make_bank(ways=4, replacement=LLCReplacement.DATA_LRU)
        bank.insert(spill(4))
        bank.insert(spill(8))
        bank.insert(spill(12))
        bank.insert(data(0))
        bank.lookup_spill(4)            # 4 to MRU; LRU order: 8, 12, 0, 4
        victim = bank.choose_victim(bank.set_of(0), protect_block=0)
        assert victim.kind is LineKind.SPILLED and victim.block == 8
        # Recency, not insertion order, decides: repeatable.
        assert bank.choose_victim(bank.set_of(0),
                                  protect_block=0) is victim

    def test_every_frame_protected_returns_overall_lru(self):
        # dataLRU tier 3 pinned: both frames of a 2-way set belong to
        # the protected block itself, so the documented last resort is
        # the overall LRU frame -- here the block's data frame, which
        # was inserted (and last touched) before its spilled entry.
        bank = make_bank(ways=2, replacement=LLCReplacement.DATA_LRU)
        own_data = data(4)
        bank.insert(own_data)
        bank.insert(spill(4))
        victim = bank.choose_victim(bank.set_of(4), protect_block=4)
        assert victim is own_data


class TestEndToEndSpLRU:
    """Protocol-level regression for the spLRU insert-ordering bug."""

    def test_reinstalled_block_does_not_doom_its_own_entry(self):
        from repro.common.config import DirCachingPolicy
        from tests.conftest import OPS, zerodev_config
        from repro.common.addressing import BLOCK_SHIFT
        from repro.harness.system_builder import build_system

        system = build_system(zerodev_config(
            llc_replacement=LLCReplacement.SP_LRU,
            dir_caching=DirCachingPolicy.FPSS))
        # Spill block 0's entry (shared ifetch), re-install its data at
        # MRU, then storm the same LLC set with fused fills. Before the
        # fix the spilled entry sat *below* its block, got evicted to
        # memory, and the case-(iiib) invariant fired on the next fill.
        script = [(0, "I", 0), (1, "I", 0),
                  (2, "R", 32), (2, "R", 64), (2, "R", 96),
                  (3, "I", 0),
                  (2, "R", 128), (2, "R", 160), (2, "R", 192)]
        for core, op, block in script:
            system.access(core, OPS[op], block << BLOCK_SHIFT)
            system.check_invariants()
        assert system.stats.dev_invalidations == 0
