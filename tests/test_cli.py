"""Tests for the command-line interface and trace persistence."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.workloads import make_multithreaded
from repro.workloads.trace import Workload
from repro.workloads.suites import find_profile

from tests.conftest import tiny_config


class TestTracePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        workload = make_multithreaded(find_profile("canneal"),
                                      tiny_config(), 300, seed=9)
        path = tmp_path / "trace.npz"
        workload.save(path)
        loaded = Workload.load(path)
        assert loaded.name == workload.name
        assert loaded.n_cores == workload.n_cores
        for a, b in zip(workload.traces, loaded.traces):
            assert a.core == b.core
            assert np.array_equal(a.ops, b.ops)
            assert np.array_equal(a.addresses, b.addresses)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig19" in out and "PARSEC" in out and "freqmine" in out

    def test_every_experiment_registered(self):
        expected = {"fig2", "fig3", "fig4", "fig5", "fig6", "fig17",
                    "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
                    "fig24", "fig25", "fig26", "fig27", "contenders",
                    "energy", "multisocket"}
        assert set(EXPERIMENTS) == expected

    def test_demo(self, capsys):
        assert main(["demo", "--app", "swaptions",
                     "--accesses", "500"]) == 0
        out = capsys.readouterr().out
        assert "0 DEVs" in out and "speedup" in out

    def test_run_figure(self, capsys, monkeypatch):
        monkeypatch.chdir  # keep results/ writes relative to repo root
        assert main(["run", "fig19", "--accesses", "300"]) == 0
        out = capsys.readouterr().out
        assert "ZeroDEV speedup vs baseline" in out
        assert "PARSEC NoDir GEOMEAN" in out

    def test_trace_then_simulate(self, capsys, tmp_path):
        path = str(tmp_path / "t.npz")
        assert main(["trace", "leela", path, "--accesses", "300",
                     "--rate"]) == 0
        assert main(["simulate", path, "--protocol", "zerodev"]) == 0
        out = capsys.readouterr().out
        assert "dev_invalidations" in out

    def test_simulate_baseline(self, capsys, tmp_path):
        path = str(tmp_path / "t.npz")
        main(["trace", "povray", path, "--accesses", "200"])
        assert main(["simulate", path, "--protocol", "baseline",
                     "--ratio", "1.0"]) == 0

    def test_parser_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_verify_command(self, capsys):
        assert main(["verify", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_verify_baseline(self, capsys):
        assert main(["verify", "--protocol", "baseline",
                     "--depth", "2"]) == 0

    def test_verify_dls(self, capsys):
        assert main(["verify", "--protocol", "dls",
                     "--depth", "2"]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_verify_seed_without_samples_rejected(self, capsys):
        # A silently ignored --seed looked like a varied run; it is now
        # a clean one-line error, never a traceback.
        assert main(["verify", "--seed", "3", "--depth", "2"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--samples" in err

    def test_verify_seed_with_samples_accepted(self, capsys):
        assert main(["verify", "--depth", "2", "--samples", "5",
                     "--seed", "3"]) == 0
        assert "seed 3" in capsys.readouterr().out

    def test_verify_kernel_diff_accepts_seed(self, capsys):
        # CI passes --seed with --kernel-diff; it seeds the campaign.
        assert main(["verify", "--kernel-diff", "--seed", "7",
                     "--budget", "2"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_report_command(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "EXPERIMENTS.md" in out

    def test_fuzz_parser_accepts_campaign_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--resume", "j.jsonl", "--run-timeout", "2.5",
             "--retries", "3"])
        assert args.resume == "j.jsonl"
        assert args.run_timeout == 2.5
        assert args.retries == 3

    def test_fuzz_resume_round_trip(self, capsys, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        argv = ["fuzz", "--seed", "5", "--budget", "2", "--no-shrink",
                "--resume", str(journal)]
        assert main(argv) == 0
        assert main(argv) == 0                 # replay, nothing re-run
        out = capsys.readouterr().out
        assert "runs resumed from journal" in out
        assert main(["report", str(journal)]) == 0
        assert "campaign healthy" in capsys.readouterr().out
