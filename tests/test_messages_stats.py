"""Unit tests for the message catalogue and statistics counters."""

import pytest

from repro.common.messages import (CTRL_BYTES, DATA_BYTES, MessageType,
                                   message_bytes)
from repro.common.stats import (SystemStats, makespan_speedup,
                                weighted_speedup)


class TestMessageBytes:
    def test_control_message(self):
        assert message_bytes(MessageType.GETS) == CTRL_BYTES

    def test_data_message(self):
        assert message_bytes(MessageType.DATA) == DATA_BYTES
        assert DATA_BYTES == CTRL_BYTES + 64

    def test_writeback_carries_data(self):
        assert message_bytes(MessageType.WRITEBACK) == DATA_BYTES

    def test_wb_de_carries_a_block(self):
        # A WB_DE message carries the 64-byte image W (Section III-D).
        assert message_bytes(MessageType.WB_DE) == DATA_BYTES

    def test_e_state_notice_carries_reconstruction_bits(self):
        assert message_bytes(MessageType.EVICT_CLEAN_BITS) == CTRL_BYTES + 1
        assert message_bytes(MessageType.EVICT_CLEAN) == CTRL_BYTES

    def test_denf_nack_is_control(self):
        assert message_bytes(MessageType.DENF_NACK) == CTRL_BYTES

    def test_every_type_has_a_size(self):
        for kind in MessageType:
            assert message_bytes(kind) >= CTRL_BYTES


class TestSystemStats:
    def test_record_message_accumulates_bytes(self):
        stats = SystemStats(2)
        stats.record_message(MessageType.GETS)
        stats.record_message(MessageType.DATA, count=2)
        assert stats.traffic_bytes == CTRL_BYTES + 2 * DATA_BYTES
        assert stats.messages[MessageType.DATA] == 2

    def test_advance_core(self):
        stats = SystemStats(2)
        stats.advance_core(0, 10)
        stats.advance_core(1, 30)
        stats.advance_core(0, 5)
        assert stats.cycles == [15, 30]
        assert stats.accesses == [2, 1]
        assert stats.total_cycles == 30
        assert stats.total_accesses == 3

    def test_misses_per_kilo_access(self):
        stats = SystemStats(1)
        stats.advance_core(0, 1)
        stats.advance_core(0, 1)
        stats.core_cache_misses = 1
        assert stats.misses_per_kilo_access() == pytest.approx(500.0)

    def test_fractions_guard_division_by_zero(self):
        stats = SystemStats(1)
        assert stats.dram_write_entry_fraction() == 0.0
        assert stats.corrupted_read_fraction() == 0.0

    def test_dram_write_entry_fraction(self):
        stats = SystemStats(1)
        stats.dram_writes = 200
        stats.dram_writes_entry_eviction = 1
        assert stats.dram_write_entry_fraction() == pytest.approx(0.005)

    def test_as_dict_contains_scalars(self):
        stats = SystemStats(1)
        stats.core_cache_misses = 7
        flat = stats.as_dict()
        assert flat["core_cache_misses"] == 7
        assert "total_cycles" in flat


class TestSpeedupMetrics:
    def test_weighted_speedup_identity(self):
        assert weighted_speedup([100, 200], [100, 200]) == 1.0

    def test_weighted_speedup_mean_of_ratios(self):
        assert weighted_speedup([100, 100], [50, 200]) == pytest.approx(
            (2.0 + 0.5) / 2)

    def test_weighted_speedup_rejects_mismatched(self):
        with pytest.raises(ValueError):
            weighted_speedup([1], [1, 2])

    def test_makespan_speedup(self):
        base, new = SystemStats(1), SystemStats(1)
        base.advance_core(0, 200)
        new.advance_core(0, 100)
        assert makespan_speedup(base, new) == 2.0
