"""Deeper multi-socket flow scenarios (Sections III-D3..D5)."""

import pytest

from repro.caches.block import MESI
from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol)
from repro.coherence.entry import DirState
from repro.multisocket import MultiSocketSystem
from repro.workloads.trace import Op

from tests.conftest import tiny_config


def access(system, socket, core, op, block):
    system.access(socket, core, {"R": Op.READ, "W": Op.WRITE,
                                 "I": Op.IFETCH}[op], block << BLOCK_SHIFT)


def make(n_sockets=2, **kw):
    return MultiSocketSystem(tiny_config(**kw), n_sockets=n_sockets)


class TestDirtyDataAcrossSockets:
    def test_remote_exclusive_fetch_carries_dirty_data(self):
        system = make()
        access(system, 0, 0, "W", 8)
        access(system, 1, 0, "W", 8)     # remote GETX: data must travel
        access(system, 0, 0, "R", 8)     # and come back intact
        system.check_invariants()

    def test_writeback_updates_home_memory(self):
        system = make()
        access(system, 0, 0, "W", 8)
        # Evict through L2 conflicts, then evict the dirty LLC copy.
        for k in range(1, 5):
            access(system, 0, 0, "R", 8 + 8 * k)
        for tag in range(1, 6):
            access(system, 0, 1, "R", 8 + 32 * tag)
        # Another socket reads: whatever path it takes, it must observe
        # the written version (the shared shadow enforces this).
        access(system, 1, 0, "R", 8)
        system.check_invariants()

    def test_upgrade_then_remote_read(self):
        system = make()
        access(system, 0, 0, "R", 8)
        access(system, 1, 0, "R", 8)     # socket-level S
        access(system, 0, 0, "W", 8)     # upgrade invalidates socket 1
        assert system.sockets[1].cores[0].probe(8) is None
        access(system, 1, 0, "R", 8)     # 3-socket-hop read-back
        assert system.sockets[0].cores[0].probe(8) is MESI.S
        system.check_invariants()


class TestSocketPresence:
    def test_socket_dir_entry_removed_when_both_leave(self):
        system = make()
        access(system, 0, 0, "R", 8)
        access(system, 1, 0, "R", 8)
        for node in (0, 1):
            for k in range(1, 5):
                access(system, node, 0, "R", 8 + 8 * k)
            target = system.sockets[node]
            # Force the LLC copy out as well.
            for tag in range(1, 6):
                access(system, node, 1, "R", 8 + 32 * tag)
        entry = system._entries.get(8)
        if entry is not None:
            # Presence may legitimately remain while an LLC copy does.
            held = [s for s in entry.sharer_sockets()
                    if system.sockets[s].bank_of(8).peek_data(8)
                    is not None
                    or system.sockets[s]._peek_entry(8) is not None]
            assert held
        system.check_invariants()

    def test_refetch_after_total_eviction(self):
        system = make()
        access(system, 0, 0, "W", 8)
        for k in range(1, 5):
            access(system, 0, 0, "R", 8 + 8 * k)
        for tag in range(1, 6):
            access(system, 0, 1, "R", 8 + 32 * tag)
        access(system, 1, 0, "R", 8)     # must read the written version
        system.check_invariants()


class TestZeroDevMultiSocketDesigns:
    def zconfig(self, **kw):
        defaults = dict(
            protocol=Protocol.ZERODEV,
            directory=DirectoryConfig(ratio=None),
            llc_replacement=LLCReplacement.DATA_LRU,
            llc=CacheGeometry(2048, 2))
        defaults.update(kw)
        return tiny_config(**defaults)

    def soak(self, system, rounds=120):
        for k in range(rounds):
            for socket in range(system.n_sockets):
                for core in range(4):
                    access(system, socket, core, "RWI"[k % 3],
                           (3 * k + 5 * core + socket) % 72)
        system.check_invariants()
        assert all(s.dev_invalidations == 0 for s in system.stats)

    def test_epd_zerodev_two_sockets(self):
        system = MultiSocketSystem(
            self.zconfig(llc_design=LLCDesign.EPD,
                         directory=DirectoryConfig(ratio=0.5)),
            n_sockets=2)
        self.soak(system)

    def test_spillall_two_sockets(self):
        system = MultiSocketSystem(
            self.zconfig(dir_caching=DirCachingPolicy.SPILL_ALL),
            n_sockets=2)
        self.soak(system)

    def test_fuseall_two_sockets(self):
        system = MultiSocketSystem(
            self.zconfig(dir_caching=DirCachingPolicy.FUSE_ALL),
            n_sockets=2)
        self.soak(system)

    def test_sp_lru_two_sockets(self):
        system = MultiSocketSystem(
            self.zconfig(llc_replacement=LLCReplacement.SP_LRU),
            n_sockets=2)
        self.soak(system)

    def test_solution2_zerodev(self):
        system = MultiSocketSystem(self.zconfig(), n_sockets=2,
                                   dir_cache_blocks=8, dir_solution=2)
        self.soak(system, rounds=80)


class TestCorruptedBitmapAccounting:
    """WB_DE -> GET_DE flows must return corrupted-block counts to zero.

    Regression: the socket-level heal/restore paths cleared only the
    multi-level garbage set; the per-socket ``MemoryHousing`` bits stayed
    set forever, so a socket's corrupted-bitmap count never returned to
    zero once its home segment had housed an entry.
    """

    def zconfig(self, llc=CacheGeometry(2048, 2)):
        return tiny_config(
            protocol=Protocol.ZERODEV,
            directory=DirectoryConfig(ratio=None),
            llc_replacement=LLCReplacement.DATA_LRU,
            dir_caching=DirCachingPolicy.FPSS,
            llc=llc)

    def test_dirty_writeback_heals_socket_bitmap(self):
        system = MultiSocketSystem(self.zconfig(), n_sockets=2)
        s0 = system.sockets[0]
        # Blocks 0/16/32/48 all map to bank 0 set 0 (2 ways) of socket 0.
        access(system, 0, 0, "W", 0)     # fused M entry for block 0
        access(system, 0, 1, "R", 16)
        access(system, 0, 2, "R", 32)    # WB_DE: block 0's entry housed
        assert s0._housing.is_garbage(0) and system.is_garbage(0)
        access(system, 0, 3, "R", 0)     # GET_DE promotes the entry back
        assert s0._housing.peek(0) is None
        assert s0._housing.is_garbage(0)   # image still corrupt
        # Evicting the dirty LLC copy writes real data home: both the
        # multi-level marker and the socket bit must clear, exactly once.
        access(system, 0, 1, "R", 48)
        assert not system.is_garbage(0)
        assert not s0._housing.is_garbage(0)
        system.check_invariants()

    def test_last_copy_eviction_restores_and_clears_bitmaps(self):
        import random
        system = MultiSocketSystem(self.zconfig(CacheGeometry(1024, 2)),
                                   n_sockets=2)
        rng = random.Random(0)
        ops = "RWI"
        # Hot sharing phases over a small pool, then cold sweeps that
        # evict every copy -- driving WB_DE housing, DENF_NACK forwards,
        # and last-copy restores, with invariants checked per step.
        for phase in range(8):
            for _ in range(40):
                access(system, rng.randrange(2), rng.randrange(4),
                       ops[rng.randrange(3)], rng.randrange(12))
                system.check_invariants()
            for block in range(64, 128):
                for socket in range(2):
                    access(system, socket, rng.randrange(4), "R", block)
                    system.check_invariants()
        assert system.restores > 0
        assert system.denf_nacks > 0
        # No stale socket-local corruption bits: every remaining bit is
        # backed by an actually-corrupted home image (no double count).
        for socket in system.sockets:
            for block in socket._housing.garbage_blocks():
                assert system.is_garbage(block)


class TestHomeDistribution:
    def test_blocks_map_to_all_homes(self):
        system = make(n_sockets=4)
        homes = {system.home_of(block) for block in range(16)}
        assert homes == {0, 1, 2, 3}

    def test_remote_access_costs_link_latency(self):
        system = make(n_sockets=2)
        # Block 0 homes at socket 0: socket 1's miss pays the link.
        link = system._link
        s1 = system.sockets[1]
        before = s1.stats.cycles[0]
        access(system, 1, 0, "R", 0)
        remote_latency = s1.stats.cycles[0] - before
        s0 = system.sockets[0]
        before = s0.stats.cycles[0]
        access(system, 0, 0, "R", 2)     # also homes at socket 0
        local_latency = s0.stats.cycles[0] - before
        assert remote_latency > local_latency
