"""Extra reporting-layer coverage while system-level runs execute."""

import json

import pytest

from repro.harness.reporting import Row, Table, ascii_bars, geomean


class TestTableEdgeCases:
    def test_empty_table_renders(self):
        table = Table("empty")
        text = table.render()
        assert "empty" in text

    def test_unit_and_note_render(self):
        table = Table("t")
        table.add("x", 5.0, unit="%", note="hello")
        assert "%" in table.render()
        assert "hello" in table.render()

    def test_json_round_trip(self):
        table = Table("t")
        table.add("a", 1.0, paper=None)
        table.add("b", 2.0, paper=3.0)
        data = json.loads(json.dumps(table.to_dict()))
        assert data["rows"][0]["paper"] is None
        assert data["rows"][1]["paper"] == 3.0

    def test_long_labels_align(self):
        table = Table("t")
        table.add("a" * 40, 1.0)
        table.add("b", 2.0)
        lines = table.render().splitlines()
        # Measured values line up in one column.
        positions = {line.find("1.000") for line in lines
                     if "1.000" in line}
        positions |= {line.find("2.000") for line in lines
                      if "2.000" in line}
        assert len(positions) == 1


class TestGeomeanEdgeCases:
    def test_single_value(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geomean([-1.0, 2.0, 8.0]) == pytest.approx(4.0)

    def test_all_nonpositive(self):
        assert geomean([-1.0, 0.0]) == 0.0


class TestAsciiBarsEdgeCases:
    def test_explicit_bounds(self):
        chart = ascii_bars([0.5], ["x"], lo=0.0, hi=1.0, width=10)
        assert "0.500" in chart

    def test_minimum_one_hash(self):
        chart = ascii_bars([0.0, 100.0], ["low", "high"])
        low_line = chart.splitlines()[0]
        assert "#" in low_line
