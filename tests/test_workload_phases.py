"""Tests for multi-phase workload generation."""

import numpy as np
import pytest

from repro.workloads.synthetic import AppProfile, generate
from repro.workloads.trace import Op
from repro.workloads.suites import find_profile

from tests.conftest import tiny_config


def phased_profile():
    return AppProfile(
        "phased", code_fraction=0.0, shared_fraction=0.0,
        ws_private_x_l2=2.0,
        phases=(
            (1, {"write_fraction": 0.0}),
            (1, {"write_fraction": 1.0}),
        ))


class TestPhaseExpansion:
    def test_phase_profiles_split_counts(self):
        segments = phased_profile().phase_profiles(1000)
        assert [count for count, _ in segments] == [500, 500]
        assert segments[0][1].write_fraction == 0.0
        assert segments[1][1].write_fraction == 1.0
        assert segments[0][1].phases == ()

    def test_uneven_weights_sum_to_total(self):
        profile = phased_profile().with_(phases=(
            (3, {}), (1, {}), (3, {})))
        segments = profile.phase_profiles(1000)
        assert sum(count for count, _ in segments) == 1000

    def test_no_phases_is_single_segment(self):
        profile = AppProfile("flat")
        assert profile.phase_profiles(100) == [(100, profile)]


class TestPhasedGeneration:
    def test_phases_change_op_mix_over_time(self):
        traces = generate(phased_profile(), tiny_config(), 1000, seed=2)
        ops = traces[0].ops
        first, second = ops[:500], ops[500:]
        assert (first == Op.WRITE.value).mean() == 0.0
        assert (second == Op.WRITE.value).mean() == 1.0

    def test_phases_share_one_address_space(self):
        profile = phased_profile().with_(phases=(
            (1, {"locality": 1.0}), (1, {"locality": 1.0})))
        traces = generate(profile, tiny_config(), 1000, seed=2)
        addresses = traces[0].addresses
        first = set(np.unique(addresses[:500]))
        second = set(np.unique(addresses[500:]))
        assert first & second        # phases revisit the same data

    def test_fftw_profile_is_phased(self):
        profile = find_profile("fftw")
        assert len(profile.phases) == 4
        traces = generate(profile, tiny_config(), 800, seed=1)
        assert len(traces[0]) == 800

    def test_deterministic_with_phases(self):
        profile = find_profile("fftw")
        a = generate(profile, tiny_config(), 600, seed=7)
        b = generate(profile, tiny_config(), 600, seed=7)
        assert np.array_equal(a[0].addresses, b[0].addresses)
