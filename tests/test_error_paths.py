"""Error-path and guard-rail tests: the invariant machinery itself.

A protocol checker is only trustworthy if its guards actually fire;
these tests corrupt state deliberately and assert the right error
surfaces.
"""

import pytest

from repro.caches.block import LineKind, MESI
from repro.coherence.entry import DirState, EntryLocation
from repro.coherence.shadow import ShadowMemory
from repro.common.errors import (ProtocolInvariantError, SimulationError)
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config, zerodev_config


class TestShadowMemory:
    def test_detects_stale_read(self):
        shadow = ShadowMemory()
        version = shadow.commit_write(5)
        shadow.check_read(5, version, "test")           # fine
        shadow.commit_write(5)
        with pytest.raises(ProtocolInvariantError, match="stale"):
            shadow.check_read(5, version, "test")

    def test_unwritten_block_is_version_zero(self):
        shadow = ShadowMemory()
        shadow.check_read(7, 0, "test")
        assert shadow.latest(7) == 0

    def test_versions_monotonic(self):
        shadow = ShadowMemory()
        versions = [shadow.commit_write(1) for _ in range(5)]
        assert versions == sorted(versions)
        assert len(set(versions)) == 5


class TestInvariantDetection:
    def test_swmr_violation_detected(self, baseline):
        drive(baseline, [(0, "W", 5)])
        # Corrupt: give core 1 a second owned copy behind the
        # protocol's back.
        baseline.cores[1].fill(5, MESI.M, 99, code=False)
        with pytest.raises(ProtocolInvariantError, match="SWMR"):
            baseline.check_invariants()

    def test_untracked_block_detected(self, baseline):
        drive(baseline, [(0, "R", 5)])
        baseline.directory.remove(5)
        with pytest.raises(ProtocolInvariantError, match="untracked"):
            baseline.check_invariants()

    def test_imprecise_sharer_vector_detected(self, baseline):
        drive(baseline, [(0, "R", 5)])
        entry = baseline._peek_entry(5)
        entry.add_sharer(3)                    # core 3 has no copy
        with pytest.raises(ProtocolInvariantError, match="imprecise"):
            baseline.check_invariants()

    def test_fused_state_mismatch_detected(self, zerodev):
        drive(zerodev, [(0, "R", 5)])          # fused M/E entry (FPSS)
        line = zerodev.bank_of(5).peek_data(5)
        assert line.kind is LineKind.FUSED
        line.entry.state = DirState.S          # corrupt: fused but S
        with pytest.raises(ProtocolInvariantError,
                           match="FPSS|state S but core owns"):
            zerodev.check_invariants()

    def test_location_mismatch_detected(self, zerodev):
        drive(zerodev, [(0, "R", 5)])
        line = zerodev.bank_of(5).peek_data(5)
        line.entry.location = EntryLocation.MEMORY
        with pytest.raises(ProtocolInvariantError, match="mismatch"):
            zerodev.check_invariants()

    def test_dev_counter_guard(self, zerodev):
        drive(zerodev, [(0, "R", 5)])
        zerodev.stats.dev_invalidations = 1    # should be impossible
        with pytest.raises(ProtocolInvariantError,
                           match="eviction victims"):
            zerodev.check_invariants()


class TestProtocolGuards:
    def test_notice_without_entry_raises_in_baseline(self, baseline):
        from repro.caches.private_cache import EvictionNotice
        notice = EvictionNotice(core=0, block=77, state=MESI.S,
                                version=0, is_code=False)
        with pytest.raises(ProtocolInvariantError, match="untracked"):
            baseline._process_notice(notice)

    def test_fused_frame_in_baseline_rejected(self, baseline):
        from repro.caches.block import LLCLine
        from repro.coherence.entry import DirectoryEntry
        bank = baseline.bank_of(5)
        entry = DirectoryEntry(5, DirState.ME, owner=0)
        bank.insert(LLCLine(5, LineKind.FUSED, entry=entry))
        victim = bank.peek_data(5)
        with pytest.raises(ProtocolInvariantError):
            baseline._handle_llc_victim(bank, victim)

    def test_demand_fetch_of_corrupted_block_rejected(self, zerodev):
        from repro.coherence.entry import DirectoryEntry
        entry = DirectoryEntry(42, DirState.ME, owner=0)
        zerodev._housing.house(42, entry)
        with pytest.raises(ProtocolInvariantError, match="corrupted"):
            zerodev._memory_fetch_latency(42)

    def test_wb_de_under_inclusion_rejected(self):
        from repro.common.config import LLCDesign
        from repro.coherence.entry import DirectoryEntry
        system = build_system(zerodev_config(
            llc_design=LLCDesign.INCLUSIVE))
        entry = DirectoryEntry(5, DirState.ME, owner=0)
        with pytest.raises(ProtocolInvariantError, match="inclusive"):
            system._writeback_entry_to_memory(entry)
