"""Bounded-exhaustive protocol verification (model-checking-lite).

These explore *every* access sequence up to the depth bound on micro
configurations. The alphabets are chosen so the state space stays around
10^4-10^5 sequences while still covering all interesting interactions:
two/three cores, blocks that collide in the directory and the caches,
reads and writes.
"""

import pytest

from repro.coherence.exhaustive import ExhaustiveExplorer
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol, SystemConfig)
from repro.workloads.trace import Op


def micro_config(**overrides) -> SystemConfig:
    base = dict(
        n_cores=2,
        l1i=CacheGeometry(256, 2),     # 4 blocks
        l1d=CacheGeometry(256, 2),
        l2=CacheGeometry(512, 2),      # 8 blocks, 4 sets
        llc=CacheGeometry(1024, 2),    # 16 blocks, 8 sets, tiny!
        llc_banks=2,
        directory=DirectoryConfig(ratio=0.5),  # 8 entries
    )
    base.update(overrides)
    return SystemConfig(**base)


def zerodev_micro(**overrides) -> SystemConfig:
    defaults = dict(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU,
    )
    defaults.update(overrides)
    return micro_config(**defaults)


#: Blocks 0 and 8 share L2 set 0 and the directory set; 1 is disjoint.
BLOCKS = (0, 8, 1)


def no_devs(system):
    assert system.stats.dev_invalidations == 0


class TestExhaustiveBaseline:
    def test_depth_4_two_cores(self):
        explorer = ExhaustiveExplorer(micro_config, cores=(0, 1),
                                      blocks=BLOCKS)
        report = explorer.explore(depth=4)
        assert report.ok, str(report.counterexample)
        assert report.sequences_explored == (2 * 2 * 3) ** 4

    def test_depth_3_with_code_fetches(self):
        explorer = ExhaustiveExplorer(
            micro_config, cores=(0, 1), blocks=(0, 8),
            ops=(Op.READ, Op.WRITE, Op.IFETCH))
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)

    def test_depth_3_inclusive(self):
        explorer = ExhaustiveExplorer(
            lambda: micro_config(llc_design=LLCDesign.INCLUSIVE),
            cores=(0, 1), blocks=BLOCKS)
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)

    def test_depth_3_epd(self):
        explorer = ExhaustiveExplorer(
            lambda: micro_config(llc_design=LLCDesign.EPD),
            cores=(0, 1), blocks=BLOCKS)
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)


class TestExhaustiveZeroDev:
    @pytest.mark.parametrize("policy", list(DirCachingPolicy))
    def test_depth_3_policies_dev_free(self, policy):
        explorer = ExhaustiveExplorer(
            lambda: zerodev_micro(dir_caching=policy),
            cores=(0, 1), blocks=BLOCKS, extra_check=no_devs)
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)

    def test_depth_4_fpss(self):
        explorer = ExhaustiveExplorer(zerodev_micro, cores=(0, 1),
                                      blocks=BLOCKS, extra_check=no_devs)
        report = explorer.explore(depth=4)
        assert report.ok, str(report.counterexample)

    def test_deeper_sampled_exploration(self):
        explorer = ExhaustiveExplorer(zerodev_micro, cores=(0, 1),
                                      blocks=(0, 8, 16, 1),
                                      extra_check=no_devs)
        report = explorer.explore_sampled(depth=12, samples=400, seed=3)
        assert report.ok, str(report.counterexample)

    def test_counterexample_reporting(self):
        def broken_check(system):
            raise AssertionError("deliberate")

        explorer = ExhaustiveExplorer(zerodev_micro, cores=(0,),
                                      blocks=(0,),
                                      extra_check=broken_check)
        report = explorer.explore(depth=1)
        assert not report.ok
        assert len(report.counterexample.sequence) == 1
        assert "deliberate" in str(report.counterexample)
