"""Bounded-exhaustive protocol verification (model-checking-lite).

These explore *every* access sequence up to the depth bound on micro
configurations. The alphabets are chosen so the state space stays around
10^4-10^5 sequences while still covering all interesting interactions:
two/three cores, blocks that collide in the directory and the caches,
reads and writes.
"""

import pytest

from repro.coherence.exhaustive import ExhaustiveExplorer
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol, SystemConfig)
from repro.workloads.trace import Op


def micro_config(**overrides) -> SystemConfig:
    base = dict(
        n_cores=2,
        l1i=CacheGeometry(256, 2),     # 4 blocks
        l1d=CacheGeometry(256, 2),
        l2=CacheGeometry(512, 2),      # 8 blocks, 4 sets
        llc=CacheGeometry(1024, 2),    # 16 blocks, 8 sets, tiny!
        llc_banks=2,
        directory=DirectoryConfig(ratio=0.5),  # 8 entries
    )
    base.update(overrides)
    return SystemConfig(**base)


def zerodev_micro(**overrides) -> SystemConfig:
    defaults = dict(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU,
    )
    defaults.update(overrides)
    return micro_config(**defaults)


#: Blocks 0 and 8 share L2 set 0 and the directory set; 1 is disjoint.
BLOCKS = (0, 8, 1)


def no_devs(system):
    assert system.stats.dev_invalidations == 0


class TestExhaustiveBaseline:
    def test_depth_4_two_cores(self):
        explorer = ExhaustiveExplorer(micro_config, cores=(0, 1),
                                      blocks=BLOCKS)
        report = explorer.explore(depth=4)
        assert report.ok, str(report.counterexample)
        assert report.sequences_explored == (2 * 2 * 3) ** 4

    def test_depth_3_with_code_fetches(self):
        explorer = ExhaustiveExplorer(
            micro_config, cores=(0, 1), blocks=(0, 8),
            ops=(Op.READ, Op.WRITE, Op.IFETCH))
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)

    def test_depth_3_inclusive(self):
        explorer = ExhaustiveExplorer(
            lambda: micro_config(llc_design=LLCDesign.INCLUSIVE),
            cores=(0, 1), blocks=BLOCKS)
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)

    def test_depth_3_epd(self):
        explorer = ExhaustiveExplorer(
            lambda: micro_config(llc_design=LLCDesign.EPD),
            cores=(0, 1), blocks=BLOCKS)
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)


class TestExhaustiveZeroDev:
    @pytest.mark.parametrize("policy", list(DirCachingPolicy))
    def test_depth_3_policies_dev_free(self, policy):
        explorer = ExhaustiveExplorer(
            lambda: zerodev_micro(dir_caching=policy),
            cores=(0, 1), blocks=BLOCKS, extra_check=no_devs)
        report = explorer.explore(depth=3)
        assert report.ok, str(report.counterexample)

    def test_depth_4_fpss(self):
        explorer = ExhaustiveExplorer(zerodev_micro, cores=(0, 1),
                                      blocks=BLOCKS, extra_check=no_devs)
        report = explorer.explore(depth=4)
        assert report.ok, str(report.counterexample)

    def test_deeper_sampled_exploration(self):
        explorer = ExhaustiveExplorer(zerodev_micro, cores=(0, 1),
                                      blocks=(0, 8, 16, 1),
                                      extra_check=no_devs)
        report = explorer.explore_sampled(depth=12, samples=400, seed=3)
        assert report.ok, str(report.counterexample)

    def test_counterexample_reporting(self):
        def broken_check(system):
            raise AssertionError("deliberate")

        explorer = ExhaustiveExplorer(zerodev_micro, cores=(0,),
                                      blocks=(0,),
                                      extra_check=broken_check)
        report = explorer.explore(depth=1)
        assert not report.ok
        assert len(report.counterexample.sequence) == 1
        assert "deliberate" in str(report.counterexample)


class TestSampledReproducibility:
    """explore_sampled must be a pure function of (seed, depth, samples)
    -- the worker count must never change what is explored or found."""

    def explorer(self, **kw):
        return ExhaustiveExplorer(zerodev_micro, cores=(0, 1),
                                  blocks=(0, 8, 16, 1),
                                  extra_check=no_devs, **kw)

    def test_same_seed_same_report_across_jobs(self):
        serial = self.explorer().explore_sampled(depth=8, samples=120,
                                                 seed=11, jobs=1)
        pooled = self.explorer().explore_sampled(depth=8, samples=120,
                                                 seed=11, jobs=2)
        assert serial.sequences_explored == pooled.sequences_explored
        assert serial.states_checked == pooled.states_checked
        assert (serial.counterexample is None) == (
            pooled.counterexample is None)

    def test_different_seeds_draw_different_sequences(self):
        import random
        explorer = self.explorer()
        draws = []
        for seed in (1, 2):
            rng = random.Random(seed)
            draws.append(tuple(
                tuple(rng.choice(explorer._alphabet) for _ in range(6))
                for _ in range(10)))
        assert draws[0] != draws[1]

    def test_counterexample_is_lowest_failing_index_and_replays(self):
        # A check that fails for any sequence touching block 8 makes
        # several samples fail; every jobs value must report the *same*
        # (first-drawn) counterexample, and replaying it must re-fail.
        def no_block_8(system):
            if system.cores[0].probe(8) is not None or \
               system.cores[1].probe(8) is not None or \
               system.bank_of(8).peek_data(8) is not None:
                raise AssertionError("block 8 touched")

        def make():
            return ExhaustiveExplorer(zerodev_micro, cores=(0, 1),
                                      blocks=(0, 8, 16, 1),
                                      extra_check=no_block_8)

        reports = [make().explore_sampled(depth=6, samples=80, seed=5,
                                          jobs=jobs)
                   for jobs in (1, 2)]
        assert all(not r.ok for r in reports)
        assert (reports[0].counterexample.sequence
                == reports[1].counterexample.sequence)
        assert (reports[0].sequences_explored
                == reports[1].sequences_explored)
        replayed = make().replay(reports[0].counterexample.sequence)
        assert replayed is not None
        assert "block 8 touched" in str(replayed.error)

    def test_replay_of_passing_sequence_returns_none(self):
        explorer = self.explorer()
        assert explorer.replay(((0, Op.READ, 0), (1, Op.READ, 0))) is None
