"""The isolation property behind the security motivation (Section I-A2).

A prime+probe attacker measures how many of its primed blocks miss after
a victim access. Under the baseline the observation depends on the
victim's secret (which directory set it touched); under ZeroDEV it is
provably independent -- the core caches are isolated from directory
pressure. This is the same experiment as
``examples/side_channel_isolation.py``, asserted deterministically.
"""

import pytest

from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import (CacheGeometry, DirectoryConfig,
                                 LLCReplacement, Protocol, SystemConfig)
from repro.harness.system_builder import build_system
from repro.workloads.trace import Op

ATTACKER, VICTIM = 0, 1


def small_socket(protocol: Protocol) -> SystemConfig:
    directory = DirectoryConfig(
        ratio=None if protocol is Protocol.ZERODEV else 0.125)
    replacement = (LLCReplacement.DATA_LRU
                   if protocol is Protocol.ZERODEV else LLCReplacement.LRU)
    return SystemConfig(
        n_cores=2,
        l1i=CacheGeometry(512, 2), l1d=CacheGeometry(512, 2),
        l2=CacheGeometry(4096, 4), llc=CacheGeometry(16384, 4),
        llc_banks=2, protocol=protocol, directory=directory,
        llc_replacement=replacement)


def prime_probe(protocol: Protocol, secret: int, trial: int = 0) -> int:
    system = build_system(small_socket(protocol))
    config = system.config
    dir_sets = max(1, config.directory_entries // 8)
    attacker_blocks = [dir_sets * (tag + 1) for tag in range(8)]
    for block in attacker_blocks:
        system.access(ATTACKER, Op.READ, block << BLOCK_SHIFT)
    victim_set = 0 if secret else 1 % dir_sets
    victim_block = victim_set + dir_sets * (1000 + trial)
    system.access(VICTIM, Op.READ, victim_block << BLOCK_SHIFT)
    before = system.stats.core_cache_misses
    for block in attacker_blocks:
        system.access(ATTACKER, Op.READ, block << BLOCK_SHIFT)
    return system.stats.core_cache_misses - before


class TestDirectorySideChannel:
    def test_baseline_leaks_the_secret(self):
        quiet = [prime_probe(Protocol.BASELINE, 0, t) for t in range(10)]
        noisy = [prime_probe(Protocol.BASELINE, 1, t) for t in range(10)]
        # The observation distributions are disjoint: a perfect leak.
        assert max(quiet) < min(noisy)

    def test_zerodev_shows_zero_signal(self):
        quiet = [prime_probe(Protocol.ZERODEV, 0, t) for t in range(10)]
        noisy = [prime_probe(Protocol.ZERODEV, 1, t) for t in range(10)]
        assert quiet == noisy

    def test_secdir_narrows_but_zerodev_closes(self):
        # SecDir avoids the *direct* cross-core DEV: the victim's single
        # access migrates entries instead of invalidating them, so the
        # immediate observation carries no signal either -- the paper's
        # point is that SecDir remains attackable through private-
        # partition self-conflicts, which need a longer access sequence.
        quiet = prime_probe(Protocol.SECDIR, 0)
        noisy = prime_probe(Protocol.SECDIR, 1)
        assert noisy - quiet <= prime_probe(Protocol.BASELINE, 1) \
            - prime_probe(Protocol.BASELINE, 0)
