"""Tests for the parallel run layer and the content-addressed cache.

The load-bearing property is *bit-identical determinism*: the heap
scheduler must replay the seed's linear-scan interleaving exactly, the
multiprocessing path must reproduce the serial path exactly, and cached
results must be indistinguishable (statistically) from fresh ones. Each
is asserted here against small fig17-style comparisons.
"""

from __future__ import annotations

import pytest

from repro.common.config import DirCachingPolicy, DirectoryConfig
from repro.harness.parallel import run_many
from repro.harness.result_cache import (ResultCache, run_key,
                                        reset_session_cache,
                                        session_cache)
from repro.harness.runner import RunResult, run_workload
from repro.harness.sweep import BaselineSummary, Sweep
from repro.harness.system_builder import build_system
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile
from repro.workloads.trace import OP_BY_CODE, Workload

from tests.conftest import tiny_config, zerodev_config


def small_workload(name="blackscholes", accesses=250, seed=3):
    return make_multithreaded(find_profile(name), tiny_config(),
                              accesses, seed=seed)


def fig17_style_specs():
    """Baseline + the three ZeroDEV policies, over two workloads."""
    base = tiny_config()
    policies = (DirCachingPolicy.SPILL_ALL, DirCachingPolicy.FPSS,
                DirCachingPolicy.FUSE_ALL)
    configs = [base] + [zerodev_config(dir_caching=policy)
                        for policy in policies]
    workloads = [small_workload("blackscholes"),
                 small_workload("canneal")]
    return [(config, workload) for config in configs
            for workload in workloads]


@pytest.fixture(autouse=True)
def fresh_session_cache():
    reset_session_cache()
    yield
    reset_session_cache()


def stats_dicts(results):
    return [result.stats.as_dict() for result in results]


class TestLinearScanEquivalence:
    def test_heap_matches_reference_linear_scan(self):
        """The heap scheduler replays the seed's O(n) min-clock scan."""
        config = tiny_config()
        workload = small_workload("freqmine", accesses=400)

        reference = build_system(config)
        traces = workload.traces
        positions = [0] * len(traces)
        lengths = [len(trace) for trace in traces]
        # The original runner: scan for the lowest-clock unfinished core
        # (ties to the lowest index) and issue its next reference.
        while True:
            best, best_clock = -1, None
            for core in range(len(traces)):
                if positions[core] >= lengths[core]:
                    continue
                clock = reference.stats.cycles[core]
                if best_clock is None or clock < best_clock:
                    best, best_clock = core, clock
            if best < 0:
                break
            trace = traces[best]
            index = positions[best]
            reference.access(best, OP_BY_CODE[trace.ops[index]],
                             int(trace.addresses[index]))
            positions[best] += 1

        heap_run = run_workload(build_system(config), workload)
        assert heap_run.stats.as_dict() == reference.stats.as_dict()


class TestRunMany:
    def test_serial_matches_individual_runs(self):
        specs = fig17_style_specs()
        expected = [run_workload(build_system(config), workload).stats
                    for config, workload in specs]
        results = run_many(specs, jobs=1, cache=None)
        assert [r.workload for r in results] == [w.name for _, w in specs]
        assert stats_dicts(results) == [s.as_dict() for s in expected]

    def test_parallel_bit_identical_to_serial(self):
        specs = fig17_style_specs()
        serial = run_many(specs, jobs=1, cache=None)
        parallel = run_many(specs, jobs=4, cache=None)
        assert stats_dicts(parallel) == stats_dicts(serial)
        assert ([r.workload for r in parallel]
                == [r.workload for r in serial])

    def test_parallel_results_are_detached(self):
        results = run_many(fig17_style_specs()[:2], jobs=4, cache=None)
        assert all(result.system is None for result in results)

    def test_speedups_identical_serial_vs_parallel(self):
        """A fig17-style speedup table is unchanged by parallelism."""
        specs = fig17_style_specs()
        n_workloads = 2

        def speedups(results):
            base = results[:n_workloads]
            return [base[i % n_workloads].cycles / results[i].cycles
                    for i in range(n_workloads, len(results))]

        assert (speedups(run_many(specs, jobs=4, cache=None))
                == speedups(run_many(specs, jobs=1, cache=None)))

    def test_duplicate_specs_run_once(self):
        config = tiny_config()
        workload = small_workload()
        cache = ResultCache()
        first, second = run_many([(config, workload)] * 2, jobs=1,
                                 cache=cache)
        assert len(cache) == 1             # one execution, one alias
        assert not first.cached and second.cached
        assert second.stats.as_dict() == first.stats.as_dict()


class TestResultCache:
    def test_second_batch_is_served_from_cache(self):
        specs = fig17_style_specs()[:4]
        cache = ResultCache()
        fresh = run_many(specs, jobs=1, cache=cache)
        cached = run_many(specs, jobs=1, cache=cache)
        assert all(not r.cached for r in fresh)
        assert all(r.cached for r in cached)
        assert stats_dicts(cached) == stats_dicts(fresh)

    def test_session_cache_shared_across_batches(self):
        spec = (tiny_config(), small_workload())
        assert not run_many([spec], jobs=1)[0].cached
        assert run_many([spec], jobs=1)[0].cached
        assert len(session_cache()) == 1

    def test_disk_cache_survives_new_instance(self, tmp_path):
        config, workload = tiny_config(), small_workload()
        key = run_key(config, workload)
        writer = ResultCache(tmp_path)
        run_many([(config, workload)], jobs=1, cache=writer)
        reader = ResultCache(tmp_path)
        hit = reader.get(key)
        assert hit is not None and hit.cached
        fresh = run_workload(build_system(config), workload)
        assert hit.stats.as_dict() == fresh.stats.as_dict()

    @pytest.mark.parametrize("garbage", [
        b"not a pickle",      # UnpicklingError
        b"garbage\n",         # ValueError ('g' opcode parses an int line)
        b"",                  # EOFError
    ])
    def test_corrupt_disk_entry_recomputed(self, tmp_path, garbage):
        config, workload = tiny_config(), small_workload()
        key = run_key(config, workload)
        (tmp_path / f"{key}.pkl").write_bytes(garbage)
        cache = ResultCache(tmp_path)
        assert cache.get(key) is None
        result = run_many([(config, workload)], jobs=1, cache=cache)[0]
        assert not result.cached

    def _damaged_entry_recomputes_identically(self, tmp_path, damage):
        """Write a real cache entry, damage it, assert the re-read misses
        and the recomputation matches an uncached run bit-for-bit."""
        config, workload = tiny_config(), small_workload()
        key = run_key(config, workload)
        expected = run_workload(build_system(config),
                                workload).stats.as_dict()
        writer = ResultCache(tmp_path)
        run_many([(config, workload)], jobs=1, cache=writer)
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(damage(path.read_bytes()))
        cache = ResultCache(tmp_path)
        assert cache.get(key) is None
        result = run_many([(config, workload)], jobs=1, cache=cache)[0]
        assert not result.cached
        assert result.stats.as_dict() == expected
        # The recomputation republished a good entry: next read hits.
        assert ResultCache(tmp_path).get(key) is not None

    def test_truncated_disk_entry_recomputed_identically(self, tmp_path):
        """A torn write (interrupted process) must behave as a miss."""
        self._damaged_entry_recomputes_identically(
            tmp_path, lambda blob: blob[:len(blob) // 2])

    def test_bitflipped_disk_entry_recomputed_identically(self, tmp_path):
        """Bit rot in the pickle header must behave as a miss.

        Byte 1 is the pickle protocol number; flipping its bits makes
        every load raise "unsupported pickle protocol" deterministically.
        """
        self._damaged_entry_recomputes_identically(
            tmp_path,
            lambda blob: bytes([blob[0], blob[1] ^ 0xFF]) + blob[2:])

    def test_wrong_object_disk_entry_recomputed(self, tmp_path):
        """A pickle that decodes to a non-RunResult is treated as a miss."""
        import pickle
        config, workload = tiny_config(), small_workload()
        key = run_key(config, workload)
        (tmp_path / f"{key}.pkl").write_bytes(
            pickle.dumps({"not": "a RunResult"}))
        cache = ResultCache(tmp_path)
        assert cache.get(key) is None
        assert not run_many([(config, workload)], jobs=1,
                            cache=cache)[0].cached


class TestRunKey:
    def test_key_is_content_addressed(self):
        config = tiny_config()
        assert (run_key(config, small_workload(seed=3))
                == run_key(config, small_workload(seed=3)))

    def test_key_ignores_workload_name(self):
        config = tiny_config()
        renamed = small_workload()
        renamed = Workload("other-label", renamed.traces)
        assert run_key(config, small_workload()) == run_key(config,
                                                            renamed)

    def test_key_changes_with_inputs(self):
        config = tiny_config()
        workload = small_workload()
        baseline = run_key(config, workload)
        assert run_key(config, small_workload(seed=4)) != baseline
        assert run_key(config, small_workload(accesses=300)) != baseline
        assert run_key(zerodev_config(), workload) != baseline
        assert run_key(
            config.with_(directory=DirectoryConfig(ratio=0.5)),
            workload) != baseline


class TestSweepBaselines:
    def test_baselines_are_summaries_not_systems(self):
        reference = tiny_config()
        sweep = Sweep(reference, lambda r: reference.with_(
            directory=DirectoryConfig(ratio=r)))
        workload = small_workload("canneal", 300)
        points = sweep.run([1.0, 0.125], [workload])
        assert len(points) == 2
        summary = sweep._baselines[workload.name]
        assert isinstance(summary, BaselineSummary)
        assert summary.total_cycles > 0
        # Re-running reuses the summary (still exactly one entry).
        sweep.run([0.5], [workload])
        assert len(sweep._baselines) == 1


class TestRunResult:
    def test_detached_drops_live_system(self):
        run = run_workload(build_system(tiny_config()), small_workload())
        assert run.system is not None and run.wall_seconds > 0
        detached = run.detached()
        assert detached.system is None
        assert detached.stats is run.stats
        assert detached.wall_seconds == run.wall_seconds
