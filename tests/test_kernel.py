"""Tests for the batched access kernel (repro.kernel).

The load-bearing property is *bit identity* with the scalar runner:
identical final stats, shadow memory, and event streams for every
protocol, workload shape, and driver feature (warm-up, invariant
checking, tracing, multi-socket). The classification machinery --
shrink-journal absorption, epoch staleness, adaptive mode switching --
gets targeted unit tests on top.
"""

import numpy as np
import pytest

from repro.caches.block import MESI
from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import DirectoryConfig, Protocol, resolve_kernel
from repro.common.errors import ConfigError
from repro.harness.runner import run_workload
from repro.harness.system_builder import build_system
from repro.kernel import SlotKernel, drive_batched
from repro.obs import EventBus, attach
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile
from repro.workloads.trace import CoreTrace, Op, Workload

from tests.conftest import tiny_config, zerodev_config


def final_state(config, workload, **kwargs):
    system = build_system(config)
    run_workload(system, workload, **kwargs)
    import copy
    return (copy.deepcopy(vars(system.stats)),
            dict(system.shadow._latest))        # noqa: SLF001


def assert_kernels_identical(config, workload, **kwargs):
    scalar = final_state(config.with_(kernel="scalar"), workload,
                         **kwargs)
    for kernel in ("batched", "vectorized"):
        other = final_state(config.with_(kernel=kernel), workload,
                            **kwargs)
        diffs = [k for k in scalar[0] if scalar[0][k] != other[0][k]]
        assert not diffs, f"{kernel} stats diverged on {diffs}"
        assert scalar[1] == other[1], f"{kernel} shadow diverged"


class TestBitIdentity:
    def workload(self, config, accesses=600, app="blackscholes"):
        return make_multithreaded(find_profile(app), config, accesses,
                                  seed=11)

    @pytest.mark.parametrize("config", [
        tiny_config(),
        zerodev_config(),
        tiny_config(protocol=Protocol.SECDIR),
        tiny_config(protocol=Protocol.MGD),
        tiny_config(directory=DirectoryConfig(ratio=0.25)),
    ], ids=["baseline", "zerodev", "secdir", "mgd", "quarter-dir"])
    def test_across_protocols(self, config):
        assert_kernels_identical(config, self.workload(config))

    def test_share_heavy_workload(self):
        config = tiny_config()
        assert_kernels_identical(config,
                                 self.workload(config, app="canneal"))

    def test_with_warmup(self):
        config = tiny_config()
        assert_kernels_identical(config, self.workload(config),
                                 warmup=777)

    def test_with_invariant_checking(self):
        config = zerodev_config()
        assert_kernels_identical(config, self.workload(config),
                                 check_invariants_every=97)

    def test_event_streams_identical(self):
        config = zerodev_config()
        workload = self.workload(config)
        streams = {}
        for kernel in ("scalar", "batched", "vectorized"):
            system = build_system(config.with_(kernel=kernel))
            events = []
            bus = EventBus()
            bus.subscribe(type("Sink", (), {
                "handle": staticmethod(events.append)})())
            attach(system, bus)
            run_workload(system, workload)
            streams[kernel] = events
        # Order, payloads, and step tags all equal.
        assert streams["scalar"] == streams["batched"]
        assert streams["scalar"] == streams["vectorized"]

    def test_multisocket_identical(self):
        from repro.harness.runner import run_multisocket_workload
        from repro.multisocket.system import MultiSocketSystem

        config = tiny_config(n_cores=2)
        workload = make_multithreaded(
            find_profile("blackscholes"), tiny_config(), 400, seed=4)
        per_kernel = {}
        for kernel in ("scalar", "batched", "vectorized"):
            system = MultiSocketSystem(config.with_(kernel=kernel),
                                       n_sockets=2, dir_cache_blocks=4)
            run_multisocket_workload(system, workload,
                                     check_invariants_every=50)
            per_kernel[kernel] = [
                {k: v for k, v in vars(s).items()}
                for s in system.stats]
        assert per_kernel["scalar"] == per_kernel["batched"]
        assert per_kernel["scalar"] == per_kernel["vectorized"]

    def test_sampling_forces_scalar_driver(self):
        # Gauges observe schedule-dependent mid-states; an instrumented
        # run must behave exactly like the scalar runner.
        config = tiny_config()
        workload = self.workload(config)
        samples = {}
        for kernel in ("scalar", "batched", "vectorized"):
            system = build_system(config.with_(kernel=kernel))
            seen = []
            run_workload(system, workload, sample_every=100,
                         sample_fn=lambda s: seen.append(
                             s.stats.total_accesses))
            samples[kernel] = seen
        assert samples["scalar"] == samples["batched"]
        assert samples["scalar"] == samples["vectorized"]


class TestKernelSelection:
    def test_env_override(self, monkeypatch):
        config = tiny_config()
        assert resolve_kernel(config) == "batched"
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert resolve_kernel(config) == "scalar"

    def test_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ConfigError):
            resolve_kernel(tiny_config())

    def test_env_selects_vectorized(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vectorized")
        assert resolve_kernel(tiny_config()) == "vectorized"

    def test_config_rejects_unknown(self):
        with pytest.raises(ConfigError):
            tiny_config(kernel="bogus")

    def test_cache_keys_separate_kernels(self, monkeypatch):
        from repro.harness.result_cache import run_key
        config = tiny_config()
        workload = make_multithreaded(find_profile("blackscholes"),
                                      config, 50, seed=1)
        batched_key = run_key(config, workload)
        scalar_key = run_key(config.with_(kernel="scalar"), workload)
        vector_key = run_key(config.with_(kernel="vectorized"),
                             workload)
        assert len({batched_key, scalar_key, vector_key}) == 3
        # The env override must also change the key, or a REPRO_KERNEL
        # run could replay results cached under the other kernel.
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert run_key(config, workload) != batched_key


class TestClassification:
    def hit_kernel(self, n=16):
        """A core with one L2-resident block and an all-hits trace."""
        system = build_system(tiny_config())
        system.access(0, Op.READ, 4 << BLOCK_SHIFT)
        hier = system.cores[0]
        ops = np.full(n, Op.READ.value, dtype=np.int8)
        addresses = np.full(n, 4 << BLOCK_SHIFT, dtype=np.int64)
        kernel = SlotKernel(0, hier, system.stats, system.shadow,
                            system.config.latency, ops, addresses)
        return system, hier, kernel

    def test_safe_prefix_classified(self):
        _, _, kernel = self.hit_kernel()
        assert kernel.safe_end(0) == 16

    def test_invalidation_shrinks_prefix_via_journal(self):
        _, hier, kernel = self.hit_kernel()
        assert kernel.safe_end(0) == 16
        hier.invalidate(4, cause="test")
        # The epoch moved; absorption truncates at the first occurrence
        # of the journaled block without a rescan.
        assert kernel.safe_end(0) == 0
        assert not hier.shrink_log        # journal consumed

    def test_unrelated_invalidation_keeps_prefix(self):
        _, hier, kernel = self.hit_kernel()
        assert kernel.safe_end(0) == 16
        hier.epoch += 1
        hier.shrink_log.append(999)       # not in this slot's window
        assert kernel.safe_end(0) == 16

    def test_downgrade_to_s_makes_store_unsafe(self):
        system = build_system(tiny_config())
        system.access(0, Op.WRITE, 4 << BLOCK_SHIFT)
        hier = system.cores[0]
        assert hier.probe(4) is MESI.M
        ops = np.full(8, Op.WRITE.value, dtype=np.int8)
        addresses = np.full(8, 4 << BLOCK_SHIFT, dtype=np.int64)
        kernel = SlotKernel(0, hier, system.stats, system.shadow,
                            system.config.latency, ops, addresses)
        assert kernel.safe_end(0) == 8
        hier.downgrade_to_s(4)
        assert kernel.safe_end(0) == 0    # S write = upgrade = unsafe

    def test_write_to_shared_is_unsafe_boundary(self):
        system = build_system(tiny_config())
        # Core 0 and core 1 both read: line ends S in both.
        system.access(0, Op.READ, 4 << BLOCK_SHIFT)
        system.access(1, Op.READ, 4 << BLOCK_SHIFT)
        hier = system.cores[0]
        assert hier.probe(4) is MESI.S
        ops = np.array([Op.READ.value, Op.WRITE.value, Op.READ.value],
                       dtype=np.int8)
        addresses = np.full(3, 4 << BLOCK_SHIFT, dtype=np.int64)
        kernel = SlotKernel(0, hier, system.stats, system.shadow,
                            system.config.latency, ops, addresses)
        assert kernel.safe_end(0) == 1    # read safe, S-write not

    def test_retire_run_matches_scalar_hit_path(self):
        system_a = build_system(tiny_config())
        system_b = build_system(tiny_config())
        for system in (system_a, system_b):
            system.access(0, Op.WRITE, 4 << BLOCK_SHIFT)
            system.access(0, Op.READ, 12 << BLOCK_SHIFT)
        ops = np.array([Op.READ.value, Op.WRITE.value, Op.READ.value,
                        Op.IFETCH.value], dtype=np.int8)
        blocks = [12, 4, 4, 12]
        addresses = np.array([b << BLOCK_SHIFT for b in blocks],
                             dtype=np.int64)
        # Scalar path on system_a; the ifetch of a data-resident block
        # is an L2 hit through the L1I, same as the kernel's path.
        for op, address in zip([Op.READ, Op.WRITE, Op.READ, Op.IFETCH],
                               addresses.tolist()):
            system_a.access(0, op, address)
        kernel = SlotKernel(0, system_b.cores[0], system_b.stats,
                            system_b.shadow, system_b.config.latency,
                            ops, addresses)
        end = kernel.safe_end(0)
        assert end == 4
        kernel.retire_run(0, end, system_b.stats.cycles[0], 1 << 62)
        assert vars(system_a.stats) == vars(system_b.stats)
        assert (system_a.shadow._latest        # noqa: SLF001
                == system_b.shadow._latest)    # noqa: SLF001


class TestAdaptiveModes:
    def two_phase_workload(self, config, per_core=1200):
        """Miss-heavy phase (degrades) then hit-heavy phase (promotes)."""
        rng = np.random.default_rng(3)
        traces = []
        for core in range(config.n_cores):
            span_base = 1 << 16
            miss_blocks = rng.integers(span_base,
                                       span_base + 4096, per_core // 2)
            hot = span_base + 8192 + core * 8
            hit_blocks = np.array([hot + (i % 4)
                                   for i in range(per_core // 2)])
            blocks = np.concatenate([miss_blocks, hit_blocks])
            ops = np.where(rng.random(per_core) < 0.2,
                           Op.WRITE.value, Op.READ.value).astype(np.int8)
            traces.append(CoreTrace(
                core, ops, (blocks << BLOCK_SHIFT).astype(np.int64)))
        return Workload("two-phase", traces)

    def test_mode_transitions_preserve_identity(self, monkeypatch):
        import repro.kernel.batched as batched

        monkeypatch.setattr(batched, "ADAPT_WINDOW", 192)
        config = tiny_config()
        workload = self.two_phase_workload(config)
        calls = []
        real_reset = SlotKernel.reset_classification
        real_retire = SlotKernel.retire_run

        def spy_reset(self):
            calls.append("degraded-eval")
            return real_reset(self)

        def spy_retire(self, *args):
            if not calls or calls[-1] != "bulk":
                calls.append("bulk")
            return real_retire(self, *args)

        monkeypatch.setattr(SlotKernel, "reset_classification",
                            spy_reset)
        monkeypatch.setattr(SlotKernel, "retire_run", spy_retire)
        batched_state = final_state(config.with_(kernel="batched"),
                                    workload)
        # The miss phase degraded the driver at least once, and the hit
        # phase promoted it back (bulk retirement after a degraded
        # window evaluation).
        assert "degraded-eval" in calls
        assert "bulk" in calls[calls.index("degraded-eval"):]
        monkeypatch.setattr(SlotKernel, "reset_classification",
                            real_reset)
        monkeypatch.setattr(SlotKernel, "retire_run", real_retire)
        scalar_state = final_state(config.with_(kernel="scalar"),
                                   workload)
        assert scalar_state == batched_state

    def test_degraded_mode_with_warmup_boundary(self, monkeypatch):
        import repro.kernel.batched as batched

        monkeypatch.setattr(batched, "ADAPT_WINDOW", 192)
        config = tiny_config()
        workload = self.two_phase_workload(config)
        # Warm-up boundary lands inside the miss phase, where the
        # driver is (or is about to be) degraded.
        assert_kernels_identical(config, workload, warmup=900)


class TestKernelDiff:
    def test_workload_of_splits_per_core(self):
        from repro.kernel.diff import workload_of
        from repro.verify.tracegen import FuzzTrace

        trace = FuzzTrace("t", 3, ((0, 0, 5), (1, 1, 6), (0, 2, 7),
                                   (2, 0, 5)))
        workload = workload_of(trace)
        assert workload.n_cores == 3
        assert workload.traces[0].ops.tolist() == [0, 2]
        assert (workload.traces[0].addresses.tolist()
                == [5 << BLOCK_SHIFT, 7 << BLOCK_SHIFT])
        assert workload.traces[1].ops.tolist() == [1]
        assert len(workload.traces[2]) == 1

    def test_diff_runs_detects_divergence(self):
        from repro.kernel.diff import KernelRun, diff_runs

        a = KernelRun([{"l1_hits": 3}], [{4: 1}], [])
        b = KernelRun([{"l1_hits": 4}], [{4: 1}], [])
        diffs = diff_runs(a, b)
        assert diffs and "l1_hits" in diffs[0]
        assert not diff_runs(a, a)

    def test_campaign_clean_on_model_subset(self):
        from repro.kernel.diff import run_kernel_diff
        from repro.verify.models import model_matrix

        specs = [s for s in model_matrix()
                 if s.name in ("baseline-1x",
                               "zerodev-fuse-private-spill-shared",
                               "zerodev-2socket-sol1")]
        assert len(specs) == 3
        report = run_kernel_diff(seed=13, budget=5, models=specs,
                                 check_every=12)
        assert report.ok, report.summary()
        # 5 traces x 3 models x (batched, vectorized).
        assert report.kernels == ("batched", "vectorized")
        assert report.runs == 30

    def test_campaign_kernel_subset(self):
        from repro.kernel.diff import run_kernel_diff
        from repro.verify.models import model_matrix

        specs = [s for s in model_matrix() if s.name == "baseline-1x"]
        report = run_kernel_diff(seed=13, budget=2, models=specs,
                                 kernels=("vectorized",))
        assert report.ok, report.summary()
        assert report.runs == 2
        assert "vectorized" in report.summary()


class TestDriveBatchedDirect:
    def test_empty_and_unequal_slots(self):
        system = build_system(tiny_config())
        lengths = [6, 0, 3, 6]
        traces = []
        for core, n in enumerate(lengths):
            ops = np.full(n, Op.READ.value, dtype=np.int8)
            addresses = np.array(
                [(core * 64 + i) << BLOCK_SHIFT for i in range(n)],
                dtype=np.int64)
            traces.append(CoreTrace(core, ops, addresses))
        assert_kernels_identical(tiny_config(),
                                 Workload("unequal", traces))

    def test_returns_total_steps(self):
        system = build_system(tiny_config())
        system.access(0, Op.READ, 4 << BLOCK_SHIFT)
        hier = system.cores[0]
        ops = np.full(5, Op.READ.value, dtype=np.int8)
        addresses = np.full(5, 4 << BLOCK_SHIFT, dtype=np.int64)
        slot = SlotKernel(0, hier, system.stats, system.shadow,
                          system.config.latency, ops, addresses)

        def issue(core, index):
            system.access(core, Op.READ, int(addresses[index]))
            return system.stats.cycles[core]

        assert drive_batched([slot], issue) == 5
