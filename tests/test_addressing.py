"""Unit tests for block/bank/set address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addressing import (AddressMapper, BLOCK_BYTES,
                                     address_of, block_of, set_index)


class TestBlockConversion:
    def test_block_of_start_of_block(self):
        assert block_of(0) == 0
        assert block_of(64) == 1

    def test_block_of_mid_block(self):
        assert block_of(63) == 0
        assert block_of(65) == 1

    def test_address_of_is_inverse_on_aligned(self):
        assert address_of(block_of(128)) == 128

    def test_block_bytes_constant(self):
        assert BLOCK_BYTES == 64

    @given(st.integers(min_value=0, max_value=2**48))
    def test_roundtrip_property(self, address):
        block = block_of(address)
        assert address_of(block) <= address < address_of(block + 1)


class TestAddressMapper:
    def test_bank_interleaving(self):
        mapper = AddressMapper(n_banks=8, sets_per_bank=64)
        assert [mapper.bank_of(b) for b in range(10)] == [
            0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_set_uses_bits_above_bank(self):
        mapper = AddressMapper(n_banks=8, sets_per_bank=64)
        assert mapper.set_of(0) == 0
        assert mapper.set_of(8) == 1
        assert mapper.set_of(8 * 64) == 0     # wraps after 64 sets

    def test_tag_above_bank_and_set(self):
        mapper = AddressMapper(n_banks=8, sets_per_bank=64)
        assert mapper.tag_of(8 * 64) == 1

    def test_single_bank(self):
        mapper = AddressMapper(n_banks=1, sets_per_bank=4)
        assert mapper.bank_of(123) == 0
        assert mapper.set_of(5) == 1

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ValueError):
            AddressMapper(n_banks=3, sets_per_bank=4)

    def test_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            AddressMapper(n_banks=2, sets_per_bank=0)

    @given(st.integers(min_value=0, max_value=2**40),
           st.sampled_from([1, 2, 4, 8]),
           st.sampled_from([4, 16, 64]))
    def test_bank_set_tag_reconstruct(self, block, banks, sets):
        mapper = AddressMapper(banks, sets)
        bank_bits = banks.bit_length() - 1
        set_bits = sets.bit_length() - 1
        rebuilt = (mapper.tag_of(block) << (bank_bits + set_bits)
                   | mapper.set_of(block) << bank_bits
                   | mapper.bank_of(block))
        assert rebuilt == block


class TestSetIndex:
    def test_low_bits(self):
        assert set_index(0b101101, 8) == 0b101

    def test_single_set(self):
        assert set_index(12345, 1) == 0
