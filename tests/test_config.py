"""Unit tests for configuration dataclasses and presets."""

import pytest

from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol, SystemConfig, KERNELS, KERNEL_ENV,
                                 resolve_kernel, scaled_socket,
                                 table1_socket)
from repro.common.errors import ConfigError


class TestCacheGeometry:
    def test_blocks_and_sets(self):
        geometry = CacheGeometry(32 * 1024, 8)
        assert geometry.blocks == 512
        assert geometry.sets == 64

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 8)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheGeometry(3 * 64 * 4, 4)   # 3 sets


class TestDirectoryConfig:
    def test_one_x_sizing_matches_aggregate_l2(self):
        config = table1_socket()
        # 8 cores x 4096 L2 blocks = 32768 entries at 1x.
        assert config.directory_entries == 32768

    def test_fractional_ratio(self):
        config = table1_socket(directory=DirectoryConfig(ratio=0.125))
        assert config.directory_entries == 4096

    def test_no_directory(self):
        dcfg = DirectoryConfig(ratio=None)
        assert not dcfg.present
        assert dcfg.entries_for(1000) == 0

    def test_unbounded(self):
        dcfg = DirectoryConfig(unbounded=True)
        assert dcfg.present
        assert dcfg.entries_for(1000) == 0

    def test_entries_rounded_to_pow2_sets(self):
        dcfg = DirectoryConfig(ratio=0.3, ways=8)
        entries = dcfg.entries_for(2048)
        assert entries % 8 == 0
        sets = entries // 8
        assert sets & (sets - 1) == 0


class TestSystemConfig:
    def test_table1_defaults(self):
        config = table1_socket()
        assert config.n_cores == 8
        assert config.llc.size_bytes == 8 * 1024 * 1024
        assert config.llc.ways == 16
        assert config.llc_banks == 8
        assert config.l2.size_bytes == 256 * 1024

    def test_llc_to_l2_capacity_ratio_is_4(self):
        for config in (table1_socket(), scaled_socket()):
            assert config.llc.blocks == 4 * config.aggregate_l2_blocks

    def test_scaled_preserves_associativity(self):
        config = scaled_socket(16)
        assert config.llc.ways == 16
        assert config.l2.ways == 8

    def test_scaled_rejects_non_pow2(self):
        with pytest.raises(ConfigError):
            scaled_socket(3)

    def test_no_directory_requires_zerodev(self):
        with pytest.raises(ConfigError):
            SystemConfig(directory=DirectoryConfig(ratio=None))

    def test_zerodev_rejects_plain_lru(self):
        with pytest.raises(ConfigError):
            SystemConfig(protocol=Protocol.ZERODEV,
                         llc_replacement=LLCReplacement.LRU)

    def test_zerodev_nodir_with_datalru_allowed(self):
        config = SystemConfig(protocol=Protocol.ZERODEV,
                              directory=DirectoryConfig(ratio=None),
                              llc_replacement=LLCReplacement.DATA_LRU)
        assert config.directory_entries == 0

    def test_with_returns_modified_copy(self):
        config = table1_socket()
        other = config.with_(llc_design=LLCDesign.EPD)
        assert other.llc_design is LLCDesign.EPD
        assert config.llc_design is LLCDesign.NON_INCLUSIVE

    def test_bank_sets(self):
        config = table1_socket()
        assert config.llc_bank_sets * config.llc_banks == config.llc.sets

    def test_enums_roundtrip(self):
        assert Protocol("zerodev") is Protocol.ZERODEV
        assert DirCachingPolicy("fuse-all") is DirCachingPolicy.FUSE_ALL
        assert LLCReplacement("dataLRU") is LLCReplacement.DATA_LRU
        assert LLCDesign("epd") is LLCDesign.EPD


class TestKernelSelection:
    def test_default_is_batched(self):
        assert table1_socket().kernel == "batched"
        assert "batched" in KERNELS and "scalar" in KERNELS

    def test_vectorized_is_a_valid_kernel(self):
        assert "vectorized" in KERNELS
        config = SystemConfig(kernel="vectorized")
        assert config.kernel == "vectorized"
        assert config.with_(kernel="batched").kernel == "batched"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(kernel="simd")

    def test_unknown_kernel_error_names_choices(self):
        # The message must enumerate the valid kernels so a typo in
        # REPRO_KERNEL or a config file is self-diagnosing.
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(kernel="simd")
        message = str(excinfo.value)
        for kernel in KERNELS:
            assert kernel in message
        assert "simd" in message

    def test_resolve_prefers_env(self, monkeypatch):
        config = table1_socket()
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel(config) == "batched"
        monkeypatch.setenv(KERNEL_ENV, "scalar")
        assert resolve_kernel(config) == "scalar"
        assert resolve_kernel(config.with_(kernel="scalar")) == "scalar"
        monkeypatch.setenv(KERNEL_ENV, "vectorized")
        assert resolve_kernel(config) == "vectorized"

    def test_resolve_rejects_unknown_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "turbo")
        with pytest.raises(ConfigError) as excinfo:
            resolve_kernel(table1_socket())
        message = str(excinfo.value)
        for kernel in KERNELS:
            assert kernel in message
