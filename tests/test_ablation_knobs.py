"""Tests for the ablation knobs: replacement-enabled ZeroDEV directories
and the solution-2 socket-level directory backing."""

import pytest

from repro.common.config import (CacheGeometry, DirectoryConfig, Protocol)
from repro.common.errors import ConfigError
from repro.harness.system_builder import build_system
from repro.multisocket import MultiSocketSystem
from repro.workloads.trace import Op

from tests.conftest import drive, tiny_config, zerodev_config


class TestReplacementEnabledZeroDev:
    def config(self):
        return zerodev_config(directory=DirectoryConfig(
            ratio=0.125, zerodev_replacement_enabled=True))

    def test_directory_has_replacement(self):
        system = build_system(self.config())
        assert not system.directory.replacement_disabled

    def test_victim_relocates_to_llc_without_dev(self):
        system = build_system(self.config())
        # 1/8x: 16 entries in 2 sets; nine live even blocks overflow
        # set 0 and must relocate a victim into the LLC.
        blocks = [2 * k for k in range(9)]
        drive(system, [(0, "R", b) for b in blocks])
        assert system.stats.dir_evictions >= 1
        assert system.stats.dev_invalidations == 0
        in_llc = system.stats.entries_fused + system.stats.entries_spilled
        assert in_llc >= 1
        # Every block is still privately cached and still tracked.
        for block in blocks:
            assert system.cores[0].probe(block) is not None
            assert system._peek_entry(block) is not None

    def test_disabled_variant_disturbs_fewer_structures(self):
        script = [(c, "RW"[k % 2], (3 * k + c) % 64)
                  for k in range(200) for c in range(4)]
        enabled = build_system(self.config())
        drive(enabled, script)
        disabled = build_system(zerodev_config(
            directory=DirectoryConfig(ratio=0.125)))
        drive(disabled, script)
        # The replacement-disabled design never touches a second
        # structure after placement: zero directory evictions.
        assert disabled.stats.dir_evictions == 0
        assert enabled.stats.dir_evictions >= 0
        assert disabled.stats.dev_invalidations == 0
        assert enabled.stats.dev_invalidations == 0


class TestSocketDirectorySolutions:
    def run_system(self, solution, cache_blocks=4):
        system = MultiSocketSystem(tiny_config(), n_sockets=2,
                                   dir_cache_blocks=cache_blocks,
                                   dir_solution=solution)
        for k in range(150):
            for socket in range(2):
                system.access(socket, k % 4, Op.READ,
                              ((7 * k + socket) % 64) << 6)
        system.check_invariants()
        return system

    def test_solution_values_validated(self):
        with pytest.raises(ConfigError):
            MultiSocketSystem(tiny_config(), dir_solution=3)

    def test_solution1_misses_cost_memory_reads(self):
        system = self.run_system(1)
        assert system.sockets[0].stats.dram_reads > 0

    def test_solution2_runs_and_uses_bitmap(self):
        system = self.run_system(2)
        # The tiny directory cache forces evictions, which set DirEvict
        # bits that later lookups consult.
        assert (system._dir_evict_bits.cache_hits
                + system._dir_evict_bits.cache_misses) > 0

    def test_solutions_agree_on_coherence(self):
        stats1 = self.run_system(1).sockets[0].stats
        stats2 = self.run_system(2).sockets[0].stats
        # Identical coherence behaviour; only lookup latency differs.
        assert stats1.core_cache_misses == stats2.core_cache_misses
        assert stats1.dev_invalidations == stats2.dev_invalidations
