"""Regression tests for the subtle transaction-ordering hazards found
during development (each of these once produced a real bug)."""

import pytest

from repro.caches.block import LineKind, MESI
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCDesign, LLCReplacement,
                                 Protocol)
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config, zerodev_config


class TestSpillEvictsOwnBlockHazard:
    """Spilling an entry must never victimize its own block's frame
    mid-transaction (found by the inclusive-design matrix test)."""

    def test_inclusive_spill_pressure(self):
        system = build_system(zerodev_config(
            llc_design=LLCDesign.INCLUSIVE,
            llc=CacheGeometry(2048, 2)))
        # Shared reads leave S entries spilled in 2-way sets while the
        # blocks must stay resident (inclusion).
        script = []
        for tag in range(6):
            block = 16 * tag
            script += [(0, "I", block), (1, "I", block)]
        drive(system, script)
        assert system.stats.wb_de_messages == 0

    def test_non_inclusive_spill_pressure(self):
        system = build_system(zerodev_config(
            llc=CacheGeometry(2048, 2)))
        script = []
        for tag in range(6):
            block = 16 * tag
            script += [(0, "I", block), (1, "I", block)]
        drive(system, script)
        # Case (iiib) never arises (asserted inside check_invariants).


class TestUpgradeGrantsOwnership:
    """The upgrade path must move the private line out of S before the
    store commits (the first bug the shadow memory caught)."""

    def test_upgrade_write_read(self, baseline):
        drive(baseline, [(0, "R", 9), (1, "R", 9), (1, "W", 9),
                         (0, "R", 9)])
        assert baseline.cores[1].probe(9) is MESI.S
        assert baseline.cores[0].probe(9) is MESI.S


class TestPromotionReestablishesInvariant:
    """A promoted (memory-housed) entry must be back on chip before its
    block's data re-enters the LLC (cross-socket downgrade hazard)."""

    def test_promote_then_data_returns(self):
        system = build_system(zerodev_config(
            llc=CacheGeometry(2048, 2)))
        blocks = [32 * t for t in range(4)]
        housed = None
        for block in blocks:
            drive(system, [(0, "I", block), (1, "I", block)])
            housed = next(iter(system._housing.housed_blocks()), None)
            if housed is not None:
                break
        assert housed is not None
        # Demand access promotes; install of the block must not recreate
        # case (iiib) -- checked by drive()'s invariant sweep.
        drive(system, [(2, "I", housed), (3, "I", housed)])
        assert system.bank_of(housed).peek_data(housed) is not None \
            or system._peek_entry(housed) is not None


class TestFPSSRelocationChain:
    """S->M->S->M relocation chain: spill -> fuse -> spill -> fuse."""

    def test_full_chain(self, zerodev):
        drive(zerodev, [(0, "R", 5)])           # fused (M/E)
        drive(zerodev, [(1, "R", 5)])           # -> spilled (S)
        assert zerodev.bank_of(5).peek_spill(5) is not None
        drive(zerodev, [(1, "W", 5)])           # -> fused again
        line = zerodev.bank_of(5).peek_data(5)
        assert line.kind is LineKind.FUSED
        drive(zerodev, [(0, "R", 5)])           # -> spilled again
        assert zerodev.bank_of(5).peek_spill(5) is not None
        assert zerodev.stats.spill_to_fuse >= 1
        assert zerodev.stats.fuse_to_spill >= 2

    def test_chain_preserves_data(self, zerodev):
        # Interleave writes into the chain; the shadow memory verifies
        # every read along the way.
        drive(zerodev, [(0, "W", 5), (1, "R", 5), (1, "W", 5),
                        (2, "R", 5), (0, "W", 5), (3, "R", 5)])


class TestEvictionDuringFillWindow:
    """The L2 victim produced by a fill is processed after the fill, so
    cascaded LLC evictions always see consistent private state."""

    def test_fill_cascade_inclusive(self):
        system = build_system(tiny_config(
            llc_design=LLCDesign.INCLUSIVE,
            llc=CacheGeometry(2048, 2)))
        # Walk far more blocks than the LLC holds.
        drive(system, [(0, "R", 3 * k) for k in range(60)])
        drive(system, [(1, "W", 3 * k) for k in range(60)])

    def test_fill_cascade_zerodev_fuseall(self):
        system = build_system(zerodev_config(
            dir_caching=DirCachingPolicy.FUSE_ALL,
            llc=CacheGeometry(2048, 2)))
        drive(system, [(c, "RWI"[k % 3], 5 * k % 80)
                       for k in range(120) for c in range(4)])
        assert system.stats.dev_invalidations == 0
