"""Smoke tests for the experiment layer at minimal scale.

These keep ``repro.harness.experiments`` exercised by the unit suite; the
full-scale versions run under ``pytest benchmarks/ --benchmark-only``.
"""

import os

import pytest

from repro.harness import experiments
from repro.harness.reporting import Table


@pytest.fixture(autouse=True)
def minimal_scale(monkeypatch):
    monkeypatch.setenv("REPRO_ACCESSES", "400")
    monkeypatch.setenv("REPRO_FULL", "0")


class TestExperimentSmoke:
    def test_scaling_knobs(self, monkeypatch):
        assert experiments.accesses_per_core() == 400
        monkeypatch.setenv("REPRO_ACCESSES", "123")
        assert experiments.accesses_per_core() == 123
        assert not experiments.run_full()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert experiments.run_full()

    def test_representative_subsets_cover_named_apps(self):
        for suite, names in experiments.REPRESENTATIVE.items():
            available = {p.name for p in
                         experiments.apps_of(suite)}
            assert set(names) == available or set(names) <= available

    def test_fig19_structure(self):
        table, results = experiments.fig19_parsec()
        assert isinstance(table, Table)
        assert set(results) == {"1x", "1/8x", "NoDir", "_aggregates"}
        assert results["_aggregates"]["NoDir"]["dev_invalidations"] == 0
        assert set(results["NoDir"]) == {"PARSEC"}
        apps = results["NoDir"]["PARSEC"]
        assert "freqmine" in apps
        for speedup in apps.values():
            assert 0.5 < speedup < 2.0

    def test_fig5_occupancy_structure(self):
        table, results = experiments.fig5_llc_occupancy()
        for suite, maxima in results.items():
            assert all(m >= 0 for m in maxima)

    def test_energy_structure(self):
        table, results = experiments.energy_comparison()
        assert -1.0 < results["saving"] < 1.0

    def test_multisocket_structure(self):
        table, results = experiments.multisocket_comparison(2)
        assert results["speedups"]

    def test_fig23_mix_count(self):
        table, results = experiments.fig23_heterogeneous(n_mixes=2)
        assert all(len(v) == 2 for v in results.values())

    def test_fig12_design_space(self):
        from benchmarks.test_fig12_design_space import fig12_design_space
        table, measured = fig12_design_space()
        assert set(measured) == {"SpillAll", "FPSS", "FuseAll"}
        assert measured["FPSS"]["extra_array_reads"] == 0

    def test_ablation_functions(self):
        from benchmarks.test_ablations import (
            ablation_notice_bits_overhead, ablation_replacement_disabled)
        _, notice = ablation_notice_bits_overhead()
        assert max(notice["fractions"]) < 0.05
        _, repl = ablation_replacement_disabled()
        assert repl["disturbances"]["disabled"] == 0
