"""Tests for the Multi-grain Directory comparison baseline (MICRO'13)."""

import pytest

from repro.caches.block import MESI
from repro.common.config import DirectoryConfig, Protocol
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config


def mgd(ratio=0.25, **kw):
    return build_system(tiny_config(
        protocol=Protocol.MGD,
        directory=DirectoryConfig(ratio=ratio), **kw))


class TestRegionCoverage:
    def test_private_fill_allocates_region_entry(self):
        system = mgd()
        drive(system, [(0, "R", 5)])
        assert 0 in system._mgd.region_entries        # region 5 // 16
        assert 5 in system._covered
        assert not system._mgd.block_entries

    def test_region_covers_sixteen_blocks_with_one_entry(self):
        system = mgd()
        drive(system, [(0, "R", b) for b in range(8)])
        assert len(system._mgd.region_entries) == 1
        assert system._mgd.region_entries[0].block_count == 8

    def test_code_fill_uses_block_entry(self):
        system = mgd()
        drive(system, [(0, "I", 5)])
        assert 5 in system._mgd.block_entries
        assert not system._mgd.region_entries

    def test_second_core_demotes_region(self):
        system = mgd()
        drive(system, [(0, "R", 0), (0, "R", 1), (1, "R", 2)])
        assert system.stats.region_demotions == 1
        assert 0 not in system._mgd.region_entries
        assert 0 in system._mgd.block_entries
        assert 1 in system._mgd.block_entries
        # No invalidations: demotion is DEV-free.
        assert system.cores[0].probe(0) is not None
        assert system.stats.dev_invalidations == 0

    def test_region_entry_freed_when_owner_evicts_all(self):
        system = mgd()
        drive(system, [(0, "R", 0)])
        conflicts = [8 * k for k in range(1, 5)]     # evict block 0
        drive(system, [(0, "R", b) for b in conflicts])
        assert 0 not in system._covered

    def test_write_within_own_region_covered(self):
        system = mgd()
        drive(system, [(0, "R", 0), (0, "W", 1), (0, "W", 0)])
        assert len(system._mgd.region_entries) == 1
        assert system.cores[0].probe(0) is MESI.M


class TestRegionDEVs:
    def test_region_eviction_invalidates_owner_blocks(self):
        # 1/32 directory: 4 entries in one 4-way... ratio 1/32 of 128 =
        # 4 entries -> 1 set of 8 ways is rounded; use ratio so sets=1.
        system = mgd(ratio=1 / 16)                   # 8 entries, 1 set
        # 9 live regions (spread over L2 sets so all stay cached) must
        # evict a region entry from the 8-entry directory.
        script = [(0, "R", 16 * r + r % 8) for r in range(9)]
        drive(system, script)
        assert system.stats.dir_evictions >= 1
        assert system.stats.dev_invalidations >= 1

    def test_region_dev_kills_multiple_blocks(self):
        system = mgd(ratio=1 / 16)
        # Populate one region densely, then thrash the directory set.
        drive(system, [(0, "R", b) for b in range(4)])
        before = system.stats.dev_invalidations
        drive(system, [(1, "R", 16 * r + 8) for r in range(1, 10)])
        if system.cores[0].probe(0) is None:
            assert system.stats.dev_invalidations - before >= 2


class TestMgDCoherence:
    def test_cross_core_write_after_demotion(self):
        system = mgd()
        drive(system, [(0, "R", 0), (1, "W", 0), (0, "R", 0)])
        assert system.cores[0].probe(0) is MESI.S
        assert system.cores[1].probe(0) is MESI.S

    def test_sharing_a_covered_block(self):
        system = mgd()
        drive(system, [(0, "W", 0), (1, "R", 0)])
        entry = system._peek_entry(0)
        assert sorted(entry.sharer_cores()) == [0, 1]

    def test_scales_better_than_baseline_at_small_sizes(self):
        def misses(protocol):
            system = build_system(tiny_config(
                protocol=protocol, directory=DirectoryConfig(ratio=0.125)))
            script = [(c, "R", (32 * c) + k % 28)
                      for k in range(200) for c in range(4)]
            drive(system, script)
            return system.stats.core_cache_misses
        assert misses(Protocol.MGD) <= misses(Protocol.BASELINE)

    def test_soak_run_stays_invariant_clean(self):
        system = mgd(ratio=0.125)
        script = [(c, "RWI"[k % 3], (7 * k + 5 * c) % 160)
                  for k in range(250) for c in range(4)]
        drive(system, script)
