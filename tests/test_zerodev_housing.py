"""Directed tests for the second ZeroDEV mechanism: invalidation-free
directory-entry eviction from the LLC into home memory (Section III-D)."""

import pytest

from repro.caches.block import LineKind, MESI
from repro.coherence.entry import EntryLocation
from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCReplacement, Protocol)
from repro.common.errors import ProtocolInvariantError
from repro.core.housing import DirEvictBitmap, MemoryHousing
from repro.coherence.entry import DirectoryEntry, DirState
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config


def cramped_zerodev(**kw):
    """ZeroDEV socket with a 2-way LLC so entry frames get evicted."""
    defaults = dict(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU,
        dir_caching=DirCachingPolicy.FPSS,
        llc=CacheGeometry(2048, 2),       # 32 blocks, 16 sets, 2 banks
    )
    defaults.update(kw)
    return build_system(tiny_config(**defaults))


def same_llc_set_blocks(system, count, bank=0, set_idx=0):
    """Blocks mapping to one (bank, set) of the LLC."""
    bank_bits = system.config.llc_banks.bit_length() - 1
    set_bits = system.config.llc_bank_sets.bit_length() - 1
    return [(tag << (bank_bits + set_bits)) | (set_idx << bank_bits) | bank
            for tag in range(count)]


def force_wb_de(system):
    """Drive shared reads until a live entry is evicted from the LLC.

    Returns the housed block. Each shared block leaves an S entry spilled
    in the same 2-way LLC set; dataLRU evicts the data blocks first and
    then a spilled entry, which must trigger WB_DE.
    """
    blocks = same_llc_set_blocks(system, 3)
    for block in blocks:
        drive(system, [(0, "I", block), (1, "I", block)])
        if system.stats.wb_de_messages:
            break
    assert system.stats.wb_de_messages >= 1
    housed = [b for b in blocks
              if system._housing.peek(b) is not None]
    assert housed
    return housed[0]


class TestWbDe:
    def test_entry_eviction_writes_to_memory_without_invalidation(self):
        system = cramped_zerodev()
        block = force_wb_de(system)
        # The paper's guarantee: the cores still hold their copies.
        assert system.cores[0].probe(block) is MESI.S
        assert system.cores[1].probe(block) is MESI.S
        assert system.stats.dev_invalidations == 0
        entry = system._housing.peek(block)
        assert entry.location is EntryLocation.MEMORY
        assert system.stats.dram_writes_entry_eviction >= 1

    def test_block_not_in_llc_while_housed(self):
        system = cramped_zerodev()
        block = force_wb_de(system)
        assert system.bank_of(block).peek_data(block) is None

    def test_demand_access_promotes_entry(self):
        system = cramped_zerodev()
        block = force_wb_de(system)
        reads_before = system.stats.corrupted_block_reads
        drive(system, [(2, "I", block)])
        assert system.stats.corrupted_block_reads == reads_before + 1
        assert system._housing.peek(block) is None       # promoted
        entry = system._peek_entry(block)
        assert entry is not None and entry.is_sharer(2)

    def test_eviction_notice_uses_get_de(self):
        system = cramped_zerodev()
        block = force_wb_de(system)
        # Evict core 0's copy via L2 conflicts (L2: 4 ways, 8 sets).
        conflicts = [block + 8 * k for k in range(1, 5)]
        drive(system, [(0, "I", b) for b in conflicts])
        assert system.stats.get_de_messages >= 1
        housed = system._housing.peek(block)
        assert housed is not None and not housed.is_sharer(0)

    def test_last_copy_eviction_restores_memory(self):
        system = cramped_zerodev()
        block = force_wb_de(system)
        conflicts = [block + 8 * k for k in range(1, 5)]
        drive(system, [(0, "I", b) for b in conflicts])
        drive(system, [(1, "I", b) for b in conflicts])
        assert system.stats.corrupted_blocks_restored >= 1
        assert system._housing.peek(block) is None
        assert not system._housing.is_garbage(block)
        # The block is readable again straight from memory.
        drive(system, [(3, "I", block)])

    def test_dirty_writeback_heals_corruption(self):
        system = cramped_zerodev()
        block = force_wb_de(system)
        drive(system, [(2, "W", block)])     # promote + own + write
        version = system.shadow.latest(block)
        # Evict the dirty copy down to memory.
        conflicts = [block + 8 * k for k in range(1, 5)]
        drive(system, [(2, "W", b) for b in conflicts])
        blocks_set = same_llc_set_blocks(system, 6)[3:]
        drive(system, [(3, "R", b) for b in blocks_set])
        if not system._housing.is_garbage(block):
            assert system._dram_version.get(block, 0) in (0, version)

    def test_zero_devs_through_the_whole_housing_lifecycle(self):
        system = cramped_zerodev()
        script = [(c, "RWI"[k % 3], (k + c * 17) % 96)
                  for k in range(300) for c in range(4)]
        drive(system, script)
        assert system.stats.dev_invalidations == 0


class TestMemoryHousingUnit:
    def test_house_peek_promote(self):
        housing = MemoryHousing()
        entry = DirectoryEntry(5, DirState.ME, owner=0)
        housing.house(5, entry)
        assert housing.peek(5) is entry
        assert housing.is_garbage(5)
        assert housing.promote(5) is entry
        assert housing.peek(5) is None
        assert housing.is_garbage(5)      # garbage survives promotion

    def test_double_house_rejected(self):
        housing = MemoryHousing()
        housing.house(5, DirectoryEntry(5, DirState.ME, owner=0))
        with pytest.raises(ProtocolInvariantError):
            housing.house(5, DirectoryEntry(5, DirState.ME, owner=1))

    def test_promote_missing_rejected(self):
        with pytest.raises(ProtocolInvariantError):
            MemoryHousing().promote(5)

    def test_heal_clears_garbage(self):
        housing = MemoryHousing()
        housing.house(5, DirectoryEntry(5, DirState.ME, owner=0))
        housing.promote(5)
        housing.heal(5)
        assert not housing.is_garbage(5)

    def test_heal_with_housed_entry_rejected(self):
        housing = MemoryHousing()
        housing.house(5, DirectoryEntry(5, DirState.ME, owner=0))
        with pytest.raises(ProtocolInvariantError):
            housing.heal(5)

    def test_restore_clears_everything(self):
        housing = MemoryHousing()
        housing.house(5, DirectoryEntry(5, DirState.ME, owner=0))
        housing.restore(5)
        assert housing.peek(5) is None
        assert not housing.is_garbage(5)
        assert housing.housed_count == 0


class TestDirEvictBitmap:
    def test_set_test_clear(self):
        bitmap = DirEvictBitmap()
        bitmap.set(100)
        value, _ = bitmap.test(100)
        assert value
        bitmap.clear(100)
        value, _ = bitmap.test(100)
        assert not value

    def test_cache_hit_within_group(self):
        bitmap = DirEvictBitmap(cached_groups=2)
        bitmap.set(0)
        _, hit = bitmap.test(1)            # same 512-block group
        assert hit

    def test_cache_miss_across_groups(self):
        bitmap = DirEvictBitmap(cached_groups=1)
        bitmap.set(0)
        _, hit = bitmap.test(512)
        assert not hit
        _, hit = bitmap.test(0)            # evicted by the miss above
        assert not hit

    def test_len_counts_set_bits(self):
        bitmap = DirEvictBitmap()
        for block in range(10):
            bitmap.set(block)
        assert len(bitmap) == 10
