"""Tests for the sweep utility, warm-up support, and report extras."""

import pytest

from repro.common.config import DirectoryConfig
from repro.harness.reporting import ascii_bars, traffic_breakdown
from repro.harness.runner import run_workload
from repro.harness.sweep import Sweep
from repro.harness.system_builder import build_system
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

from tests.conftest import tiny_config


def small_workload(name="blackscholes", accesses=300, seed=3):
    return make_multithreaded(find_profile(name), tiny_config(),
                              accesses, seed=seed)


class TestWarmup:
    def test_warmup_resets_statistics(self):
        config = tiny_config()
        workload = small_workload()
        cold = run_workload(build_system(config), workload)
        warm = run_workload(build_system(config), small_workload(),
                            warmup=400)
        assert warm.stats.total_accesses == workload.total_accesses - 400
        # Warm caches: the post-warm-up miss ratio is no worse.
        cold_rate = cold.stats.core_cache_misses / cold.stats.total_accesses
        warm_rate = warm.stats.core_cache_misses / warm.stats.total_accesses
        assert warm_rate <= cold_rate + 0.02

    def test_warmup_longer_than_workload_rejected(self):
        with pytest.raises(ValueError):
            run_workload(build_system(tiny_config()), small_workload(),
                         warmup=10_000)

    def test_stats_reset_in_place(self):
        system = build_system(tiny_config())
        mesh_stats = system.mesh._stats
        system.stats.core_cache_misses = 5
        system.stats.reset()
        assert system.stats.core_cache_misses == 0
        assert mesh_stats is system.stats   # references stay valid


class TestSweep:
    def test_directory_ratio_sweep(self):
        reference = tiny_config()
        sweep = Sweep(
            reference,
            lambda r: reference.with_(directory=DirectoryConfig(ratio=r)),
            counters=("dev_invalidations",))
        points = sweep.run([1.0, 0.125],
                           [small_workload("canneal", 400)])
        assert len(points) == 2
        assert points[0].value == 1.0
        # At the reference ratio the speedup is exactly 1 (same config).
        assert points[0].geomean_speedup == pytest.approx(1.0)
        assert points[1].geomean_speedup <= points[0].geomean_speedup
        assert (points[1].counters["dev_invalidations"]
                >= points[0].counters["dev_invalidations"])

    def test_baselines_cached(self):
        reference = tiny_config()
        sweep = Sweep(reference, lambda r: reference)
        workload = small_workload()
        sweep.run([1, 2, 3], [workload])
        assert len(sweep._baselines) == 1


class TestReportExtras:
    def test_traffic_breakdown(self):
        system = build_system(tiny_config())
        run_workload(system, small_workload())
        text = traffic_breakdown(system.stats)
        assert "GETS" in text and "%" in text

    def test_ascii_bars(self):
        chart = ascii_bars([1.0, 0.5], ["a", "bb"])
        assert chart.count("|") == 4
        assert "bb" in chart and "0.500" in chart

    def test_ascii_bars_empty(self):
        assert ascii_bars([], []) == "(no data)"

    def test_ascii_bars_constant_values(self):
        chart = ascii_bars([1.0, 1.0], ["x", "y"])
        assert "1.000" in chart
