"""Property tests for the columnar kernel's SoA mirror contract.

Three layers, mirroring the module's own contract (see
``repro/kernel/columnar.py``):

* **Round-trip**: ``HierarchyColumns``/``LLCColumns`` capture -> restore
  -> recapture must be lossless against the object model after
  arbitrary access sequences, including ZeroDEV states (fused/spilled
  frames, entry locations, NRU bits).
* **Classification**: ``lru_hit_flags`` must agree with a reference
  per-set LRU replay for every ways tier the classifier special-cases
  (W == 1, W == 2, W >= 3), under arbitrary warm state.
* **Staleness**: the columnar kernel inherits the batched kernel's
  epoch + shrink-journal machinery; a journaled mutation inside a
  cached prefix must truncate the columnar classification exactly like
  the batched one, and a full differential drive with interleaved
  foreign scalar accesses must leave both kernels bit-identical.
"""

import copy
import random
from collections import OrderedDict
from dataclasses import fields

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.block import MESI
from repro.common.addressing import BLOCK_SHIFT
from repro.harness.system_builder import build_system
from repro.kernel import ColumnarSlotKernel, SlotKernel
from repro.kernel import columnar
from repro.kernel.columnar import (HierarchyColumns, LLCColumns,
                                   lru_hit_flags)
from repro.workloads.trace import OP_BY_CODE, Op

from tests.conftest import tiny_config, zerodev_config

PROP_SETTINGS = settings(max_examples=25, deadline=None,
                         derandomize=True)

_NO_LIMIT = 1 << 62

CONFIGS = {"baseline": tiny_config, "zerodev": zerodev_config}

accesses_strategy = st.lists(
    st.tuples(st.integers(0, 3),        # core
              st.integers(0, 2),        # op code (R/W/I)
              st.integers(0, 63)),      # block
    max_size=150)


def drive_raw(system, accesses):
    for core, op_code, block in accesses:
        system.access(core, OP_BY_CODE[op_code], block << BLOCK_SHIFT)


def columns_equal(a, b):
    """Field-wise ndarray equality of two columns dataclasses."""
    return all(np.array_equal(getattr(a, f.name), getattr(b, f.name))
               for f in fields(a))


def snap_hier(hier):
    def snap(cache, with_state):
        out = []
        for s in range(cache.geometry.sets):
            if with_state:
                out.append([(ln.block, ln.state, ln.version, ln.dirty,
                             ln.is_code) for ln in cache.set_lines(s)])
            else:
                out.append([ln.block for ln in cache.set_lines(s)])
        return out
    return (snap(hier._l1i, False), snap(hier._l1d, False),  # noqa: SLF001
            snap(hier._l2, True))                            # noqa: SLF001


def snap_bank(bank):
    out = []
    for s in range(bank.sets):
        rows = []
        for line in bank.frames_in_set(s):
            entry = line.entry
            rows.append((line.block, line.kind, line.dirty, line.version,
                        None if entry is None else
                        (entry.state, entry.owner, entry.sharers,
                         entry.location, entry.nru_ref)))
        out.append(rows)
    return out


class TestRoundTrip:
    """capture -> restore -> recapture is the identity (sync-point
    contract: the columns are a lossless image of the object model)."""

    @pytest.mark.parametrize("name", list(CONFIGS))
    @given(accesses=accesses_strategy)
    @PROP_SETTINGS
    def test_hierarchy_columns(self, name, accesses):
        config = CONFIGS[name]()
        donor = build_system(config)
        drive_raw(donor, accesses)
        blank = build_system(config)
        for core in range(config.n_cores):
            image = HierarchyColumns.capture(donor.cores[core])
            image.restore(blank.cores[core])
            again = HierarchyColumns.capture(blank.cores[core])
            for level in ("l1i", "l1d", "l2"):
                assert columns_equal(getattr(image, level),
                                     getattr(again, level)), level
            assert (snap_hier(blank.cores[core])
                    == snap_hier(donor.cores[core]))

    @pytest.mark.parametrize("name", list(CONFIGS))
    @given(accesses=accesses_strategy)
    @PROP_SETTINGS
    def test_llc_columns(self, name, accesses):
        config = CONFIGS[name]()
        donor = build_system(config)
        drive_raw(donor, accesses)
        blank = build_system(config)
        for bank_index, bank in enumerate(donor.banks):
            image = LLCColumns.capture(bank)
            target = blank.banks[bank_index]
            image.restore(target)
            assert columns_equal(image, LLCColumns.capture(target))
            assert snap_bank(target) == snap_bank(bank)

    def test_l1_restore_rebuilds_lookup_index(self):
        # The restored arrays must be *live*, not display-only: a block
        # present in the image must hit through the normal lookup path.
        config = tiny_config()
        donor = build_system(config)
        drive_raw(donor, [(0, 0, b) for b in range(8)])
        blank = build_system(config)
        HierarchyColumns.capture(donor.cores[0]).restore(blank.cores[0])
        l2 = blank.cores[0]._l2                              # noqa: SLF001
        for s in range(l2.geometry.sets):
            for line in l2.set_lines(s):
                assert l2._index[line.block] is line          # noqa: SLF001


def reference_flags(stream, set_mask, ways, od_sets):
    """Pure-Python LRU replay -- the oracle lru_hit_flags must match."""
    flags = []
    for block in stream:
        od = od_sets[block & set_mask]
        hit = block in od
        if hit:
            od.move_to_end(block)
        else:
            if len(od) >= ways:
                od.popitem(last=False)
            od[block] = None
        flags.append(hit)
    return flags


class TestLRUHitFlags:
    @given(ways=st.integers(1, 4),
           warm=st.lists(st.integers(0, 31), max_size=40),
           stream=st.lists(st.integers(0, 31), max_size=200))
    @PROP_SETTINGS
    def test_matches_reference_replay(self, ways, warm, stream):
        set_mask = 3
        od_sets = [OrderedDict() for _ in range(set_mask + 1)]
        reference_flags(warm, set_mask, ways, od_sets)   # warm state
        expected = reference_flags(
            stream, set_mask, ways,
            [OrderedDict(od) for od in od_sets])
        got = lru_hit_flags(np.asarray(stream, dtype=np.int64),
                            set_mask, ways, od_sets)
        assert got.tolist() == expected

    def test_empty_stream(self):
        flags = lru_hit_flags(np.zeros(0, dtype=np.int64), 3, 2,
                              [OrderedDict() for _ in range(4)])
        assert flags.tolist() == []


def make_kernels(config, warm_blocks, ops, addrs):
    """Two identically-warmed systems, one SlotKernel + one columnar."""
    sys_a, sys_b = build_system(config), build_system(config)
    for system in (sys_a, sys_b):
        for block in warm_blocks:
            system.access(0, Op.READ, block << BLOCK_SHIFT)
    lat = config.latency
    ka = SlotKernel(0, sys_a.cores[0], sys_a.stats, sys_a.shadow, lat,
                    ops, addrs)
    kb = ColumnarSlotKernel(0, sys_b.cores[0], sys_b.stats,
                            sys_b.shadow, lat, ops, addrs)
    return sys_a, sys_b, ka, kb


class TestStaleness:
    """Epoch + shrink-journal behaviour of the columnar classification."""

    def test_journal_truncates_prefix_like_batched(self):
        config = tiny_config()
        warm = list(range(8))
        trace = warm * 8                      # 64 safe L2-resident reads
        ops = np.zeros(len(trace), dtype=np.int8)
        addrs = np.asarray(trace, dtype=np.int64) << BLOCK_SHIFT
        sys_a, sys_b, ka, kb = make_kernels(config, warm, ops, addrs)
        full = ka.safe_end(0)
        assert full == len(trace)
        assert kb.safe_end(0) == full
        # A foreign write invalidates core 0's copy of block 5: the
        # hierarchy journals the block and bumps its epoch, and the next
        # consultation must shrink both cached prefixes to the first
        # occurrence of the mutated block -- without a rescan.
        for system in (sys_a, sys_b):
            epoch = system.cores[0].epoch
            system.access(1, Op.WRITE, 5 << BLOCK_SHIFT)
            assert system.cores[0].epoch != epoch
            assert 5 in system.cores[0].shrink_log
        truncated = ka.safe_end(0)
        assert truncated == trace.index(5)
        assert kb.safe_end(0) == truncated
        # Journals were absorbed, epochs synced.
        assert not sys_a.cores[0].shrink_log
        assert not sys_b.cores[0].shrink_log

    def test_journaled_block_outside_prefix_is_free(self):
        config = tiny_config()
        warm = list(range(8))
        trace = [0, 1, 2, 3] * 16
        ops = np.zeros(len(trace), dtype=np.int8)
        addrs = np.asarray(trace, dtype=np.int64) << BLOCK_SHIFT
        _, sys_b, _, kb = make_kernels(config, warm, ops, addrs)
        assert kb.safe_end(0) == len(trace)
        sys_b.access(1, Op.WRITE, 7 << BLOCK_SHIFT)   # not in the trace
        assert kb.safe_end(0) == len(trace)           # prefix intact

    @pytest.mark.parametrize("vec_min_run", [1, 96])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_differential_drive_with_foreign_mutations(
            self, seed, vec_min_run, monkeypatch):
        """Interleave bulk retirement with scalar accesses from other
        cores (each one a potential epoch bump / journal entry) and
        assert the two kernels never diverge -- positions, clocks, the
        full hierarchy, stats, and shadow memory.

        ``vec_min_run=1`` forces every run through the column pipeline
        (the production threshold would route short runs to the batched
        loop, masking columnar bugs)."""
        monkeypatch.setattr(columnar, "VEC_MIN_RUN", vec_min_run)
        rng = random.Random(seed)
        config = tiny_config()
        n_blocks, n = 24, 1200
        ops = np.array([rng.choices((0, 1, 2), weights=(6, 2, 2))[0]
                        for _ in range(n)], dtype=np.int8)
        addrs = np.array([rng.randrange(n_blocks) << BLOCK_SHIFT
                          for _ in range(n)], dtype=np.int64)
        sys_a, sys_b, ka, kb = make_kernels(
            config, [rng.randrange(n_blocks) for _ in range(200)],
            ops, addrs)
        pos = 0
        clock_a = clock_b = 0
        while pos < n:
            # The scans cap at different windows (SCAN_WINDOW for the
            # scalar walk, VEC_SCAN_WINDOW for the columnar one), so
            # the prefixes may differ in *length*; retiring the common
            # prefix on both keeps the drives in lockstep, and any
            # classification disagreement inside it surfaces as a
            # retirement divergence below.
            end = min(ka.safe_end(pos), kb.safe_end(pos))
            if end == pos:
                op, addr = OP_BY_CODE[int(ops[pos])], int(addrs[pos])
                sys_a.access(0, op, addr)
                sys_b.access(0, op, addr)
                clock_a = sys_a.stats.cycles[0]
                clock_b = sys_b.stats.cycles[0]
                pos += 1
                ka.reset_classification()
                kb.reset_classification()
            else:
                limit = (clock_a + rng.randrange(1, 400)
                         if rng.random() < 0.5 else _NO_LIMIT)
                pos_a, clock_a = ka.retire_run(pos, end, clock_a, limit)
                pos_b, clock_b = kb.retire_run(pos, end, clock_b, limit)
                assert (pos_a, clock_a) == (pos_b, clock_b)
                pos = pos_a
            if rng.random() < 0.3:
                # Foreign scalar access: may invalidate/downgrade core
                # 0 lines, journaling into both hierarchies.
                core = rng.randrange(1, 4)
                op = OP_BY_CODE[rng.randrange(3)]
                addr = rng.randrange(n_blocks) << BLOCK_SHIFT
                sys_a.access(core, op, addr)
                sys_b.access(core, op, addr)
        assert snap_hier(sys_a.cores[0]) == snap_hier(sys_b.cores[0])
        assert vars(sys_a.stats) == vars(sys_b.stats)
        assert (dict(sys_a.shadow._latest)                # noqa: SLF001
                == dict(sys_b.shadow._latest))            # noqa: SLF001
