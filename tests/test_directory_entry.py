"""Unit tests for directory entries and the sparse directory (NRU)."""

import pytest

from repro.coherence.directory import SparseDirectory
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.common.errors import ProtocolInvariantError


def me_entry(block, owner=0):
    return DirectoryEntry(block, DirState.ME, owner=owner)


def s_entry(block, sharers):
    return DirectoryEntry(block, DirState.S, sharers=sharers)


class TestDirectoryEntry:
    def test_me_entry_owner_is_sharer(self):
        entry = me_entry(1, owner=3)
        assert entry.is_sharer(3)
        assert entry.sharer_count == 1

    def test_me_without_owner_rejected(self):
        with pytest.raises(ProtocolInvariantError):
            DirectoryEntry(1, DirState.ME)

    def test_add_remove_sharer(self):
        entry = s_entry(1, 0b0010)
        entry.add_sharer(3)
        assert sorted(entry.sharer_cores()) == [1, 3]
        entry.remove_sharer(1)
        assert list(entry.sharer_cores()) == [3]
        assert not entry.empty
        entry.remove_sharer(3)
        assert entry.empty

    def test_remove_non_sharer_raises(self):
        with pytest.raises(ProtocolInvariantError):
            s_entry(1, 0b1).remove_sharer(3)

    def test_remove_owner_clears_owner(self):
        entry = me_entry(1, owner=2)
        entry.remove_sharer(2)
        assert entry.owner is None and entry.empty

    def test_make_owned_and_shared(self):
        entry = s_entry(1, 0b111)
        entry.make_owned(2)
        assert entry.state is DirState.ME
        assert entry.owner == 2
        assert list(entry.sharer_cores()) == [2]
        entry.make_shared()
        assert entry.state is DirState.S and entry.owner is None

    def test_any_sharer_excludes(self):
        entry = s_entry(1, 0b101)
        assert entry.any_sharer(exclude=0) == 2
        assert entry.any_sharer() == 0

    def test_any_sharer_none_raises(self):
        with pytest.raises(ProtocolInvariantError):
            s_entry(1, 0b1).any_sharer(exclude=0)

    def test_storage_bits(self):
        assert me_entry(1).storage_bits(8) == 9


class TestSparseDirectory:
    def make(self, entries=16, ways=4, **kw):
        return SparseDirectory(entries, ways, **kw)

    def test_insert_lookup_remove(self):
        directory = self.make()
        directory.insert(me_entry(5))
        assert directory.lookup(5).block == 5
        assert directory.peek(5) is directory.lookup(5)
        directory.remove(5)
        assert directory.lookup(5) is None

    def test_remove_missing_raises(self):
        with pytest.raises(ProtocolInvariantError):
            self.make().remove(5)

    def test_duplicate_insert_raises(self):
        directory = self.make()
        directory.insert(me_entry(5))
        with pytest.raises(ProtocolInvariantError):
            directory.insert(me_entry(5))

    def test_has_room_per_set(self):
        directory = self.make(entries=8, ways=2)   # 4 sets
        directory.insert(me_entry(0))
        directory.insert(me_entry(4))
        assert not directory.has_room(8)    # set 0 full
        assert directory.has_room(1)

    def test_insert_full_set_raises(self):
        directory = self.make(entries=8, ways=2)
        directory.insert(me_entry(0))
        directory.insert(me_entry(4))
        with pytest.raises(ProtocolInvariantError):
            directory.insert(me_entry(8))

    def test_nru_victim_prefers_unreferenced(self):
        directory = self.make(entries=8, ways=2)
        directory.insert(me_entry(0))
        directory.insert(me_entry(4))
        directory.lookup(4)                # both now referenced
        victim = directory.choose_victim(8)
        # All referenced: bits cleared, first way chosen.
        assert victim.block == 0
        directory.lookup(0)                # re-reference 0 only
        assert directory.choose_victim(8).block == 4

    def test_unbounded_never_full(self):
        directory = self.make(unbounded=True)
        for block in range(1000):
            assert directory.has_room(block)
            directory.insert(me_entry(block))
        assert len(directory) == 1000
        with pytest.raises(ProtocolInvariantError):
            directory.choose_victim(0)

    def test_replacement_disabled_refuses_victims(self):
        directory = self.make(replacement_disabled=True)
        with pytest.raises(ProtocolInvariantError):
            directory.choose_victim(0)

    def test_insert_sets_location(self):
        directory = self.make()
        entry = me_entry(3)
        entry.location = EntryLocation.MEMORY
        directory.insert(entry)
        assert entry.location is EntryLocation.SPARSE
