"""Tests for ``repro.obs``: event tracing, sinks, sessions, reports.

The acceptance property mirrors the paper's headline claim: a traced
ZeroDEV run must contain *zero* ``priv_inv`` events with ``cause="dev"``,
while a 1/32x sparse-directory baseline over the same workload produces
them in volume.  Alongside that: the disabled path must not perturb
results, traced runs must match untraced runs stat-for-stat, and the
sinks/report pipeline must round-trip through JSONL.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.config import DirectoryConfig
from repro.common.errors import ConfigError
from repro.common.ioutil import atomic_write_text
from repro.harness.parallel import (default_jobs, execute_run, parse_jobs,
                                    run_many)
from repro.harness.runner import run_workload
from repro.harness.system_builder import build_system
from repro.obs import (Event, EventBus, EventKind, InvCause, JsonlSink,
                       PhaseProfiler, RingBufferSink, TimeSeriesAggregator,
                       TraceSession, attach, detach, load_trace,
                       render_report, summarize, timeseries_path_for)
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

from tests.conftest import tiny_config, zerodev_config


def small_workload(name="canneal", accesses=400, seed=11):
    return make_multithreaded(find_profile(name), tiny_config(),
                              accesses, seed=seed)


def sparse_baseline_config():
    """1/32x sparse directory: forces DEVs within a few hundred accesses."""
    return tiny_config(directory=DirectoryConfig(ratio=1 / 32))


# ---------------------------------------------------------------------------
# Event primitives
# ---------------------------------------------------------------------------
class TestEvents:
    def test_record_omits_unset_coordinates(self):
        event = Event(5, EventKind.DENF_NACK, -1, -1, "")
        assert event.to_record() == {"step": 5, "kind": "denf_nack"}

    def test_record_carries_coordinates(self):
        event = Event(7, EventKind.PRIV_INV, 3, 1, InvCause.DEV)
        assert event.to_record() == {"step": 7, "kind": "priv_inv",
                                     "block": 3, "core": 1, "cause": "dev"}

    def test_key_folds_cause(self):
        assert Event(0, EventKind.PRIV_INV, -1, -1,
                     InvCause.GETX).key() == "priv_inv:getx"
        assert Event(0, EventKind.DIR_INSERT, -1, -1, "").key() \
            == "dir_insert"


class TestEventBus:
    def test_fan_out_and_unsubscribe(self):
        bus = EventBus()
        first, second = RingBufferSink(8), RingBufferSink(8)
        bus.subscribe(first)
        bus.subscribe(second)
        bus.emit(EventKind.MSG, cause="GETS")
        bus.unsubscribe(second)
        bus.emit(EventKind.MSG, cause="DATA")
        assert first.total_seen == 2 and second.total_seen == 1

    def test_subscribe_is_idempotent(self):
        bus = EventBus()
        sink = RingBufferSink(8)
        bus.subscribe(sink)
        bus.subscribe(sink)
        bus.emit(EventKind.MSG)
        assert sink.total_seen == 1


class TestSinks:
    def test_ring_buffer_is_bounded(self):
        sink = RingBufferSink(4)
        for step in range(10):
            sink.handle(Event(step, EventKind.MSG, -1, -1, ""))
        assert len(sink) == 4 and sink.total_seen == 10
        assert [e.step for e in sink.events] == [6, 7, 8, 9]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_aggregator_folds_by_epoch(self):
        agg = TimeSeriesAggregator(epoch=10)
        for step in (0, 9, 10, 25):
            agg.handle(Event(step, EventKind.PRIV_INV, -1, -1,
                             InvCause.DEV))
        series = agg.series_of("priv_inv:dev")
        assert series == [2, 1, 1]
        assert agg.totals()["priv_inv:dev"] == 4

    def test_aggregator_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            TimeSeriesAggregator(epoch=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.write_meta(workload="x", n_cores=4)
        sink.handle(Event(1, EventKind.DIR_EVICT, 42, -1, InvCause.DEV))
        sink.close()
        meta, events = load_trace(path)
        assert meta["workload"] == "x" and meta["n_cores"] == 4
        assert events == [{"step": 1, "kind": "dir_evict", "block": 42,
                           "cause": "dev"}]


class TestProfiler:
    def test_phases_accumulate(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        assert profiler.calls == {"a": 2, "b": 1}
        assert set(profiler.to_dict()) == {"a", "b"}
        assert "a" in profiler.render()


# ---------------------------------------------------------------------------
# Attach / detach and non-perturbation
# ---------------------------------------------------------------------------
class TestAttachDetach:
    def test_attach_reaches_every_layer(self):
        system = build_system(sparse_baseline_config())
        bus = EventBus()
        attach(system, bus)
        assert system.obs is bus and system.mesh.obs is bus
        assert system.directory.obs is bus
        assert all(bank.obs is bus for bank in system.banks)
        assert all(core.obs is bus for core in system.cores)
        detach(system)
        assert system.obs is None and system.mesh.obs is None
        assert system.directory.obs is None
        assert all(bank.obs is None for bank in system.banks)
        assert all(core.obs is None for core in system.cores)

    def test_disabled_by_default(self):
        system = build_system(zerodev_config())
        assert system.obs is None and system.mesh.obs is None

    @pytest.mark.parametrize("config_fn", [
        zerodev_config, sparse_baseline_config])
    def test_tracing_does_not_perturb_stats(self, config_fn, tmp_path):
        workload = small_workload()
        plain = run_workload(build_system(config_fn()), workload)
        with TraceSession(build_system(config_fn()),
                          jsonl=tmp_path / "t.jsonl") as session:
            traced = session.run(workload)
        assert traced.stats.as_dict() == plain.stats.as_dict()


# ---------------------------------------------------------------------------
# The acceptance property (paper headline)
# ---------------------------------------------------------------------------
class TestZeroDevProperty:
    WORKLOAD = dict(name="canneal", accesses=600, seed=2)

    def _traced_summary(self, config, tmp_path, label):
        workload = small_workload(**self.WORKLOAD)
        path = tmp_path / f"{label}.jsonl"
        with TraceSession(build_system(config), jsonl=path) as session:
            session.run(workload)
        return summarize(path)

    def test_zerodev_trace_has_zero_dev_invalidations(self, tmp_path):
        summary = self._traced_summary(zerodev_config(), tmp_path, "zdev")
        assert summary["dev_invalidations"] == 0
        assert summary["kinds"].get("dir_evict", 0) == 0
        assert summary["total_events"] > 0       # tracing did fire

    def test_sparse_baseline_trace_has_dev_invalidations(self, tmp_path):
        summary = self._traced_summary(sparse_baseline_config(),
                                       tmp_path, "base")
        assert summary["dev_invalidations"] > 0
        assert summary["kinds"].get("dir_evict", 0) > 0


# ---------------------------------------------------------------------------
# Trace sessions, archives, reports
# ---------------------------------------------------------------------------
class TestTraceSession:
    def test_writes_jsonl_and_timeseries(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TraceSession(build_system(zerodev_config()), jsonl=path,
                          epoch=100) as session:
            result = session.run(small_workload())
        assert result.trace_path == str(path)
        assert path.is_file()
        series_path = timeseries_path_for(path)
        assert series_path.is_file()
        series = json.loads(series_path.read_text())
        assert series["epoch_accesses"] == 100
        assert series["gauges"], "epoch sampling produced no gauges"
        for gauge in ("spilled_entries", "fused_entries",
                      "corrupted_blocks", "mpki"):
            assert gauge in series["gauges"][0]
        assert "drive" in series["runner_phases"]

    def test_events_carry_monotonic_steps(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TraceSession(build_system(zerodev_config()),
                          jsonl=path) as session:
            session.run(small_workload(accesses=200))
        _meta, events = load_trace(path)
        steps = [event["step"] for event in events]
        assert steps == sorted(steps)
        assert steps[0] >= 1 and steps[-1] <= 200 * 4

    def test_close_is_idempotent_and_detaches(self, tmp_path):
        system = build_system(zerodev_config())
        session = TraceSession(system, jsonl=tmp_path / "t.jsonl")
        session.run(small_workload(accesses=200))
        session.close()
        session.close()
        assert system.obs is None

    def test_ring_only_session_needs_no_files(self):
        system = build_system(zerodev_config())
        with TraceSession(system, ring_capacity=256) as session:
            session.run(small_workload(accesses=200))
            assert session.ring.total_seen > 0
        assert session.timeseries_path is None


class TestReport:
    def test_render_report_verdicts(self, tmp_path):
        workload = small_workload(accesses=500)
        zpath, bpath = tmp_path / "z.jsonl", tmp_path / "b.jsonl"
        with TraceSession(build_system(zerodev_config()),
                          jsonl=zpath) as session:
            session.run(workload)
        with TraceSession(build_system(sparse_baseline_config()),
                          jsonl=bpath) as session:
            session.run(workload)
        zero = render_report(zpath)
        assert "ZERO directory-eviction victims" in zero
        assert "message mix" in zero and "time series" in zero
        nonzero = render_report(bpath)
        assert "DEV-caused private-cache invalidations" in nonzero

    def test_load_trace_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "meta", "workload": "w"}\n'
                        '{"step": 1, "kind": "msg", "cause": "GETS"}\n'
                        '{"step": 2, "kind": "ms')   # torn mid-record
        meta, events = load_trace(path)
        assert meta["workload"] == "w"
        assert len(events) == 1


class TestMultisocketTracing:
    def test_socket_invalidations_are_cause_tagged(self):
        from repro.common.addressing import BLOCK_SHIFT
        from repro.multisocket import MultiSocketSystem
        from repro.obs import attach_multisocket, detach_multisocket
        from repro.workloads.trace import Op
        system = MultiSocketSystem(tiny_config(), n_sockets=2)
        bus = EventBus()
        ring = RingBufferSink(8192)
        bus.subscribe(ring)
        attach_multisocket(system, bus)
        block = 8 << BLOCK_SHIFT
        system.access(0, 0, Op.READ, block)
        system.access(1, 0, Op.READ, block)      # socket-level S
        system.access(0, 0, Op.WRITE, block)     # upgrade kills socket 1
        assert ring.counts().get("priv_inv:socket", 0) >= 1
        detach_multisocket(system)
        assert system.obs is None
        assert all(socket.obs is None for socket in system.sockets)
        system.check_invariants()

    def test_traced_zerodev_multisocket_run(self):
        from repro.harness.runner import run_multisocket_workload
        from repro.multisocket import MultiSocketSystem
        from repro.obs import attach_multisocket
        system = MultiSocketSystem(zerodev_config(), n_sockets=2)
        bus = EventBus()
        ring = RingBufferSink(1 << 16)
        bus.subscribe(ring)
        attach_multisocket(system, bus)
        workload = make_multithreaded(
            find_profile("canneal"), tiny_config(n_cores=8), 300, seed=5)
        run_multisocket_workload(system, workload,
                                 check_invariants_every=200)
        counts = ring.counts()
        assert sum(count for key, count in counts.items()
                   if key.startswith("msg:")) > 0
        assert counts.get("priv_inv:dev", 0) == 0   # still zero DEVs


# ---------------------------------------------------------------------------
# run_many / result-cache propagation
# ---------------------------------------------------------------------------
class TestRunManyTracing:
    def test_trace_dir_traces_every_executed_run(self, tmp_path):
        specs = [(zerodev_config(), small_workload("blackscholes")),
                 (sparse_baseline_config(), small_workload("canneal"))]
        untraced = run_many(specs, jobs=1, cache=None)
        traced = run_many(specs, jobs=1, cache=None,
                          trace_dir=tmp_path / "traces")
        for result in traced:
            assert result.trace_path is not None
            trace = Path(result.trace_path)
            assert trace.parent == tmp_path / "traces"
            assert trace.is_file()
            assert timeseries_path_for(trace).is_file()
        assert ([r.stats.as_dict() for r in traced]
                == [r.stats.as_dict() for r in untraced])

    def test_cache_hit_preserves_trace_path(self, tmp_path):
        from repro.harness.result_cache import ResultCache
        spec = (zerodev_config(), small_workload())
        cache = ResultCache()
        first = run_many([spec], jobs=1, cache=cache,
                         trace_dir=tmp_path)[0]
        hit = run_many([spec], jobs=1, cache=cache)[0]
        assert hit.cached and hit.trace_path == first.trace_path

    def test_execute_run_with_trace_path(self, tmp_path):
        path = tmp_path / "one.jsonl"
        result = execute_run((zerodev_config(), small_workload()),
                             trace_path=str(path))
        assert result.system is None             # detached
        assert result.trace_path == str(path) and path.is_file()


# ---------------------------------------------------------------------------
# Jobs validation (satellite)
# ---------------------------------------------------------------------------
class TestJobsValidation:
    def test_parse_jobs_accepts_positive(self):
        assert parse_jobs("4") == 4
        assert parse_jobs(2) == 2
        assert parse_jobs(" 8 ") == 8

    @pytest.mark.parametrize("bad", ["0", "-2", "abc", "1.5", None, ""])
    def test_parse_jobs_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            parse_jobs(bad)

    def test_default_jobs_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_default_jobs_unset_or_blank_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert default_jobs() == 1

    @pytest.mark.parametrize("bad", ["0", "-1", "two"])
    def test_default_jobs_rejects_bad_env(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ConfigError):
            default_jobs()

    def test_run_many_validates_explicit_jobs(self):
        with pytest.raises(ConfigError):
            run_many([], jobs=0)


# ---------------------------------------------------------------------------
# Atomic archive writes (satellite)
# ---------------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "out.json"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"


# ---------------------------------------------------------------------------
# CLI surfacing
# ---------------------------------------------------------------------------
class TestCliSurfacing:
    def test_trace_events_then_report(self, capsys, tmp_path):
        from repro.cli import main
        path = str(tmp_path / "run.jsonl")
        assert main(["trace", "streamcluster", path,
                     "--accesses", "300", "--epoch", "200"]) == 0
        out = capsys.readouterr().out
        assert "ZERO directory-eviction victims" in out
        assert main(["report", path]) == 0
        assert "trace report" in capsys.readouterr().out

    def test_trace_events_baseline_shows_devs(self, capsys, tmp_path):
        from repro.cli import main
        path = str(tmp_path / "base.jsonl")
        assert main(["trace", "canneal", path, "--accesses", "400",
                     "--events", "--protocol", "baseline",
                     "--ratio", "0.03125"]) == 0
        assert "DEV-caused" in capsys.readouterr().out

    def test_report_missing_trace_is_clean_error(self, capsys, tmp_path):
        from repro.cli import main
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err
