"""Symmetry reduction (``repro.verify.symmetry``).

The drift guards promised by the module docstring:

* group construction -- identity-first deterministic enumeration,
  placement-congruent block classes, core permutations only where they
  are automorphisms (single-socket clean protocols), trivial groups for
  SecDir/MgD and armed mutations;
* the **equivariance property** -- running a relabeled access sequence
  lands in exactly the relabeled signature
  (``sig(run(pi(seq))) == relabel(sig(run(seq)), pi)``), which is the
  operational statement of soundness the PROTOCOL.md argument proves;
* orbit-minimal ``canonical_key`` collapses permuted runs onto one key
  and measurably shrinks the frontier;
* the on/off differential -- symmetry-on and symmetry-off refute all
  five seeded mutations with the same-length, same-error
  counterexample, at any worker count.
"""

from __future__ import annotations

import pytest

from repro.verify.modelcheck import (MICRO_BLOCKS, build_alphabet,
                                     canonical_key, explore_model,
                                     system_sig)
from repro.verify.models import model_by_name
from repro.verify.mutations import MUTATIONS, reference_spec
from repro.verify.symmetry import (placement_modulus,
                                   relabel_system_sig, symmetry_group)
from repro.workloads.trace import Op


def spec_of(name="zerodev-fuse-private-spill-shared"):
    return model_by_name(name)


def issue_all(spec, system, sequence):
    from repro.common.addressing import BLOCK_SHIFT
    for trace_core, op, block in sequence:
        socket, core = spec.map_core(trace_core)
        if spec.n_sockets == 1:
            system.access(core, op, block << BLOCK_SHIFT)
        else:
            system.access(socket, core, op, block << BLOCK_SHIFT)


#: Conflict-heavy sequences over the micro alphabet: sharing, migration,
#: same-set conflict (blocks 0/8), and the independent bank (block 1).
SEQUENCES = [
    [(0, Op.WRITE, 0), (1, Op.READ, 0), (0, Op.READ, 8)],
    [(0, Op.READ, 8), (0, Op.READ, 0), (1, Op.WRITE, 8),
     (1, Op.READ, 1)],
    [(1, Op.WRITE, 1), (0, Op.WRITE, 8), (1, Op.READ, 8),
     (0, Op.WRITE, 0), (1, Op.READ, 0)],
]


class TestGroupConstruction:
    def test_micro_group_identity_first(self):
        group = symmetry_group(spec_of(), build_alphabet())
        assert group[0].is_identity
        assert sum(r.is_identity for r in group) == 1
        # Two core perms x the {0, 8} congruence-class swap (block 1
        # sits alone in its class).
        assert len(group) == 4
        assert {r.describe() for r in group} >= {"identity"}

    def test_placement_modulus_covers_widest_index(self):
        # LLC bank (1 bit) + set-per-bank (2 bits) is the widest index
        # on the micro geometry.
        assert placement_modulus(spec_of()) == 8

    def test_block_classes_respect_congruence(self):
        # Blocks 0 and 8 collide mod 8 (same bank 0 set); block 1 maps
        # to bank 1 -- no sound relabeling may mix them.
        for relabeling in symmetry_group(spec_of(), build_alphabet()):
            assert relabeling.block(1) == 1
            assert relabeling.block(0) in (0, 8)
            assert relabeling.block(8) in (0, 8)

    @pytest.mark.parametrize("name", ["secdir", "mgd"])
    def test_contenders_degrade_to_trivial(self, name):
        group = symmetry_group(spec_of(name), build_alphabet())
        assert len(group) == 1 and group[0].is_identity

    def test_multisocket_keeps_identity_cores(self):
        group = symmetry_group(spec_of("zerodev-2socket-sol1"),
                               build_alphabet(blocks=(0, 8, 16)))
        assert len(group) > 1
        for relabeling in group:
            assert relabeling.core_map == tuple(
                range(len(relabeling.core_map)))

    def test_cores_symmetric_false_drops_core_perms(self):
        group = symmetry_group(spec_of(), build_alphabet(),
                               cores_symmetric=False)
        assert all(r.core_map == tuple(range(len(r.core_map)))
                   for r in group)
        assert len(group) == 2  # identity + the {0, 8} swap

    def test_asymmetric_alphabet_filters_relabelings(self):
        # Core 0 writes, core 1 only reads: the core swap no longer
        # maps the alphabet onto itself.
        symbols = [(0, Op.WRITE, 0), (0, Op.WRITE, 8), (1, Op.READ, 0),
                   (1, Op.READ, 8)]
        group = symmetry_group(spec_of(), symbols)
        assert all(r.core_map[0] == 0 for r in group)
        assert len(group) == 2

    def test_max_size_caps_deterministically(self):
        full = symmetry_group(spec_of(), build_alphabet())
        capped = symmetry_group(spec_of(), build_alphabet(), max_size=2)
        assert [r.sort_key() for r in capped] == \
            [r.sort_key() for r in full[:2]]
        assert capped[0].is_identity


class TestEquivariance:
    @pytest.mark.parametrize("seq_index", range(len(SEQUENCES)))
    def test_relabeled_run_lands_in_relabeled_sig(self, seq_index):
        # The operational soundness statement: for every relabeling pi
        # in the group, sig(run(pi(seq))) == relabel(sig(run(seq)), pi).
        # Any protocol change that starts reading core/block *identity*
        # (rather than placement) breaks this first.
        spec = spec_of()
        sequence = SEQUENCES[seq_index]
        base = spec.build()
        issue_all(spec, base, sequence)
        base_sig = system_sig(base)
        for relabeling in symmetry_group(spec, build_alphabet()):
            permuted = spec.build()
            issue_all(spec, permuted,
                      [relabeling.symbol(s) for s in sequence])
            assert system_sig(permuted) == relabel_system_sig(
                base_sig, relabeling, False,
                spec.config.directory.unbounded), relabeling.describe()

    def test_relabel_inverse_round_trips(self):
        spec = spec_of()
        system = spec.build()
        issue_all(spec, system, SEQUENCES[0])
        sig = system_sig(system)
        group = symmetry_group(spec, build_alphabet())
        for relabeling in group:
            once = relabel_system_sig(sig, relabeling, False, False)
            inverse = next(
                r for r in group
                if r.core_map == relabeling.core_order
                and all(r.block(relabeling.block(b)) == b
                        for b in MICRO_BLOCKS))
            assert relabel_system_sig(once, inverse, False, False) == sig

    def test_orbit_key_collapses_permuted_runs(self):
        spec = spec_of()
        group = symmetry_group(spec, build_alphabet())
        swap = next(r for r in group if not r.is_identity)
        base, permuted = spec.build(), spec.build()
        issue_all(spec, base, SEQUENCES[0])
        issue_all(spec, permuted,
                  [swap.symbol(s) for s in SEQUENCES[0]])
        assert canonical_key(spec, base) != canonical_key(spec, permuted)
        assert canonical_key(spec, base, group) == \
            canonical_key(spec, permuted, group)


class TestReduction:
    def test_symmetry_shrinks_the_frontier(self):
        spec = spec_of()
        plain = explore_model(spec, 3)
        reduced = explore_model(spec, 3, symmetry=True)
        assert plain.ok and reduced.ok
        assert reduced.symmetry and reduced.group_size == 4
        assert reduced.depth_reached == 3
        assert reduced.unique_states < plain.unique_states
        # The ledger invariants hold under reduction too.
        assert reduced.unique_states == 1 + sum(reduced.level_unique)
        assert reduced.transitions == \
            reduced.unique_states - 1 + reduced.dedup_hits

    def test_symmetry_reports_are_jobs_identical(self):
        spec = spec_of()
        one = explore_model(spec, 3, symmetry=True, jobs=1)
        two = explore_model(spec, 3, symmetry=True, jobs=2)
        assert one.identity_bytes() == two.identity_bytes()


class TestMutationDifferential:
    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_on_off_find_the_same_counterexample(self, name):
        # Soundness in anger: orbit collapse must never hide a seeded
        # bug, and the BFS-first counterexample keeps its length and
        # error (the path itself may be a relabeled representative).
        mutation = MUTATIONS[name]
        spec = reference_spec(mutation.reference_model)
        reports = [
            explore_model(spec, mutation.catch_depth,
                          blocks=mutation.blocks,
                          symbols=mutation.symbols or None,
                          mutation=name, symmetry=symmetry)
            for symmetry in (False, True)]
        plain, reduced = reports
        assert not plain.ok and not reduced.ok
        assert len(plain.counterexample.sequence) == \
            len(reduced.counterexample.sequence)
        assert type(plain.counterexample.error).__name__ == \
            type(reduced.counterexample.error).__name__
        # Armed mutants keep only the block-permutation subgroup.
        assert reduced.group_size >= 1
