"""The differential verification engine (``repro.verify``).

Covers the four pillars of the subsystem:

* seeded adversarial trace generation (deterministic, npz round-trip);
* the oracle driving every model in the matrix with per-step invariant
  checking, the zero-DEV witness, and the final read-back;
* fuzz campaigns that are reproducible at any worker count;
* fault injection -- every *detectable* fault is caught and shrinks to
  a tiny replayable reproducer, every *graceful* fault is absorbed --
  plus the storage-layer sibling (corrupted result-cache pickles are
  recomputed, never served).
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.harness.campaign import CampaignPolicy
from repro.verify import (FuzzTrace, TraceGenerator, emit_regression,
                          model_by_name, model_matrix, run_campaign,
                          run_trace, shrink_trace)
from repro.verify.faults import (DETECTABLE, FaultKind, FaultPlan,
                                 arm_fault, corrupt_cache_files)
from repro.verify.models import micro_config
from repro.verify.tracegen import PATTERNS, TraceGeometry


def generator(seed=1, steps=48):
    return TraceGenerator(TraceGeometry.of(micro_config()), seed,
                          steps_per_trace=steps)


class TestTraceGeneration:
    def test_deterministic_per_seed_and_index(self):
        assert generator().trace(3).steps == generator().trace(3).steps
        assert generator(1).trace(0).steps != generator(2).trace(0).steps

    def test_patterns_rotate(self):
        gen = generator()
        assert [gen.trace(i).pattern
                for i in range(len(PATTERNS))] == list(PATTERNS)

    def test_steps_address_configured_cores(self):
        trace = generator().trace(4)
        assert len(trace) == 48
        assert all(0 <= core < trace.n_cores
                   for core, _op, _block in trace.steps)

    def test_npz_round_trip(self, tmp_path):
        trace = generator().trace(1)
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = FuzzTrace.load(path)
        assert loaded.steps == trace.steps
        assert (loaded.name, loaded.pattern, loaded.n_cores,
                loaded.seed) == (trace.name, trace.pattern,
                                 trace.n_cores, trace.seed)

    def test_conflict_storm_targets_few_sets(self):
        trace = generator().trace(0)          # index 0 = conflict-storm
        geom = TraceGeometry.of(micro_config())
        targets = {(b & (geom.llc_banks - 1),
                    (b >> 1) & (geom.bank_sets - 1))
                   for _c, _o, b in trace.steps}
        assert len(targets) <= 2


class TestModelMatrix:
    def test_names_unique_and_baseline_first(self):
        matrix = model_matrix()
        names = [spec.name for spec in matrix]
        assert len(set(names)) == len(names)
        assert names[0] == "baseline-1x"
        assert sum(spec.n_sockets == 2 for spec in matrix) == 3

    def test_unknown_model_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown model"):
            model_by_name("zerodev-imaginary")

    def test_contenders_in_matrix(self):
        names = [spec.name for spec in model_matrix()]
        assert "dls" in names and "hybrid" in names
        assert len(names) == 16

    def test_lookup_is_memoized(self, monkeypatch):
        # Campaigns resolve models per item; repeated lookups must not
        # reconstruct the matrix (every rebuild re-validates 16 configs).
        import repro.verify.models as models

        builds = {"count": 0}
        real = models.model_matrix

        def counting():
            builds["count"] += 1
            return real()

        monkeypatch.setattr(models, "model_matrix", counting)
        models._specs_by_name.cache_clear()
        try:
            first = models.model_by_name("dls")
            for name in ("dls", "hybrid", "baseline-1x"):
                assert models.model_by_name(name) is not None
            assert models.model_by_name("dls") is first
            assert builds["count"] == 1
        finally:
            models._specs_by_name.cache_clear()

    def test_two_socket_core_mapping_interleaves(self):
        spec = model_by_name("zerodev-2socket-sol1")
        assert [spec.map_core(c) for c in range(4)] == [
            (0, 0), (1, 0), (0, 1), (1, 1)]

    @pytest.mark.parametrize("spec", model_matrix(),
                             ids=lambda s: s.name)
    def test_every_model_survives_one_trace(self, spec):
        outcome = run_trace(spec, generator(seed=5).trace(3))
        assert outcome.ok, str(outcome)
        if spec.is_zerodev:
            assert outcome.dev_invalidations == 0


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = run_campaign(seed=7, budget=5, jobs=1)
        assert report.ok, report.summary()
        assert report.runs == 5 * len(model_matrix())
        assert "no divergences" in report.summary()

    def test_report_identical_across_jobs(self):
        serial = run_campaign(seed=13, budget=5, jobs=1)
        pooled = run_campaign(seed=13, budget=5, jobs=2)
        assert serial.runs == pooled.runs
        assert len(serial.divergences) == len(pooled.divergences)
        assert serial.digest_mismatches == pooled.digest_mismatches

    def test_models_agree_on_final_memory(self):
        # The digest check has teeth: every ok model of one trace must
        # commit the identical version map.
        report = run_campaign(seed=2, budget=4, jobs=1, shrink=False)
        assert not report.digest_mismatches

    def test_resumed_campaign_matches_uninterrupted(self, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        uninterrupted = run_campaign(seed=11, budget=3, jobs=1,
                                     shrink=False)
        first = run_campaign(seed=11, budget=3, jobs=1, shrink=False,
                             resume=journal)
        resumed = run_campaign(seed=11, budget=3, jobs=1, shrink=False,
                               resume=journal)
        assert first.ok and resumed.ok
        assert resumed.resumed_runs == resumed.runs   # nothing re-run
        for report in (first, resumed):
            assert report.runs == uninterrupted.runs
            assert len(report.divergences) \
                == len(uninterrupted.divergences)
            assert report.digest_mismatches \
                == uninterrupted.digest_mismatches
        assert journal.exists()
        assert (tmp_path / "fuzz.jsonl.checkpoint.json").exists()

    def test_resume_rejects_different_campaign(self, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        run_campaign(seed=11, budget=2, jobs=1, shrink=False,
                     resume=journal)
        with pytest.raises(ConfigError, match="different campaign"):
            run_campaign(seed=12, budget=2, jobs=1, shrink=False,
                         resume=journal)

    def test_harness_failure_is_partial_not_divergence(self, monkeypatch):
        import repro.verify.differential as differential

        real = differential.run_trace
        matrix = model_matrix()

        def flaky(spec, trace, **kwargs):
            if spec.name == matrix[0].name:
                raise OSError("worker lost")
            return real(spec, trace, **kwargs)

        monkeypatch.setattr(differential, "run_trace", flaky)
        report = run_campaign(
            seed=7, budget=2, jobs=1, shrink=False,
            policy=CampaignPolicy(retries=0))
        assert not report.ok
        assert report.partial                 # clean but incomplete
        assert not report.divergences
        assert len(report.harness_failures) == 2   # one per trace
        assert report.runs == 2 * (len(matrix) - 1)
        assert "HARNESS FAILURE" in report.summary()
        assert "PARTIAL" in report.summary()


class TestFaultInjection:
    @pytest.mark.parametrize("kind", DETECTABLE,
                             ids=lambda k: k.value)
    def test_detectable_faults_are_detected(self, kind):
        report = run_campaign(seed=3, budget=3, jobs=1,
                              fault=FaultPlan(kind))
        assert report.fault_fired_runs > 0, report.summary()
        assert report.ok, report.summary()
        assert report.fault_detected_runs == report.fault_fired_runs

    def test_force_denf_nack_is_graceful(self):
        report = run_campaign(seed=3, budget=5, jobs=1,
                              fault=FaultPlan(FaultKind.FORCE_DENF_NACK))
        assert report.fault_fired_runs > 0, report.summary()
        assert report.ok, report.summary()

    def test_fault_needs_applicable_model(self):
        spec = model_by_name("baseline-1x")
        with pytest.raises(ConfigError):
            arm_fault(spec.build(), FaultPlan(FaultKind.DROP_WB_DE))
        with pytest.raises(ConfigError):
            arm_fault(spec.build(),
                      FaultPlan(FaultKind.FORCE_DENF_NACK))

    def test_occurrence_index_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(FaultKind.DROP_WB_DE, at=0)


class TestShrinkAcceptance:
    """The ISSUE acceptance flow: a deliberately dropped WB_DE is
    detected, shrunk to a handful of accesses, and emitted as a
    replayable regression."""

    def find_failure(self):
        spec = model_by_name("zerodev-fuse-private-spill-shared")
        fault = FaultPlan(FaultKind.DROP_WB_DE)
        for index in range(20):
            trace = generator(seed=9).trace(index)
            outcome = run_trace(spec, trace, fault=fault)
            if not outcome.ok:
                return spec, fault, trace, outcome
        pytest.fail("dropped WB_DE never surfaced in 20 traces")

    def test_dropped_wb_de_shrinks_to_minimal_repro(self, tmp_path):
        spec, fault, trace, outcome = self.find_failure()
        assert outcome.error_type == "ProtocolInvariantError"
        minimized, final = shrink_trace(spec, trace, reference=outcome,
                                        fault=fault)
        assert len(minimized) <= 20
        assert not final.ok

        npz, test = emit_regression(spec, minimized, final, tmp_path)
        reloaded = FuzzTrace.load(npz)
        assert reloaded.steps == minimized.steps
        # Replayable: fails with the fault armed, passes without -- the
        # generated pytest stub asserts exactly the clean run.
        assert not run_trace(spec, reloaded, fault=fault).ok
        assert run_trace(spec, reloaded).ok
        text = test.read_text()
        assert spec.name in text and npz.name in text
        assert "def test_" in text

    def test_shrink_refuses_passing_trace(self):
        spec = model_by_name("baseline-1x")
        with pytest.raises(ValueError, match="does not fail"):
            shrink_trace(spec, generator().trace(0))


class TestCacheCorruption:
    def test_corrupted_pickles_are_recomputed(self, tmp_path):
        from repro.harness.result_cache import ResultCache, run_key
        from repro.harness.runner import run_workload
        from repro.harness.system_builder import build_system
        from repro.workloads import make_multithreaded
        from repro.workloads.suites import find_profile

        from tests.conftest import tiny_config

        config = tiny_config()
        workload = make_multithreaded(find_profile("blackscholes"),
                                      config, 200, seed=3)
        cache = ResultCache(tmp_path)
        key = run_key(config, workload)
        result = run_workload(build_system(config), workload)
        cache.put(key, result)

        damaged = corrupt_cache_files(tmp_path, seed=1)
        assert damaged == 1
        fresh = ResultCache(tmp_path)     # disk only, no memo
        assert fresh.get(key) is None     # graceful miss, no raise
        assert fresh.misses == 1

        # Recompute-and-republish over the damaged file heals it.
        fresh.put(key, result)
        healed = ResultCache(tmp_path)
        hit = healed.get(key)
        assert hit is not None
        assert hit.stats.as_dict() == result.stats.as_dict()
