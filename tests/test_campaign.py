"""Tests for the fault-tolerant campaign layer.

The load-bearing properties:

* **Crash isolation** -- a worker SIGKILLed mid-campaign (or a run that
  raises) costs exactly that run; every sibling result is retained and
  the loss is a typed :class:`RunFailure` (or a successful retry).
* **Timeouts** -- a wedged run becomes a ``timeout`` failure on both the
  serial and the pooled path instead of hanging the batch.
* **Checkpoint/resume** -- re-running against the same journal executes
  nothing already committed and yields stats bit-identical to an
  uninterrupted serial run.

Worker functions live at module scope so fork-started processes can
resolve them; the self-killing / flaky workers coordinate through
marker files because worker state does not survive the attempt.
"""

from __future__ import annotations

import json
import os
import signal
import time
import warnings
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.harness import parallel
from repro.harness.campaign import (CampaignError, CampaignJournal,
                                    CampaignPolicy, RunFailure,
                                    RunSuccess, campaign_map,
                                    journal_summary, policy_from_env,
                                    run_specs)
from repro.harness.parallel import (ParallelMapError, fork_available,
                                    parallel_map, run_many,
                                    telemetry_since, telemetry_snapshot)
from repro.harness.result_cache import (ResultCache,
                                        reset_session_cache)
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

from tests.conftest import tiny_config, zerodev_config

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


@pytest.fixture(autouse=True)
def fresh_session_cache():
    reset_session_cache()
    yield
    reset_session_cache()


def small_workload(name="blackscholes", accesses=200, seed=3):
    return make_multithreaded(find_profile(name), tiny_config(),
                              accesses, seed=seed)


def small_specs():
    """Two configs x two workloads: enough for dedup/resume coverage."""
    workloads = [small_workload("blackscholes"),
                 small_workload("canneal")]
    return [(config, workload)
            for config in (tiny_config(), zerodev_config())
            for workload in workloads]


def stats_dicts(results):
    return [result.stats.as_dict() for result in results]


# ----------------------------------------------------------------------
# Module-level workers (fork-picklable)
# ----------------------------------------------------------------------
def _double(item):
    index, _marker_dir = item
    return index * 2


def _kill_self_once(item):
    """SIGKILL the worker on the first attempt of item 1, then succeed."""
    index, marker_dir = item
    if index == 1:
        marker = Path(marker_dir) / "killed.marker"
        if not marker.exists():
            marker.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
    return index * 2

def _kill_self_always(item):
    index, _marker_dir = item
    if index == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return index * 2


def _oserror_once(item):
    index, marker_dir = item
    marker = Path(marker_dir) / f"os{index}.marker"
    if not marker.exists():
        marker.write_text("x")
        raise OSError("transient hiccup")
    return index * 2


def _value_error(item):
    index, _marker_dir = item
    if index == 1:
        raise ValueError("deterministic bug")
    return index * 2


def _sleep_forever(item):
    index, _marker_dir = item
    if index == 1:
        time.sleep(60.0)
    return index * 2


def _sleep_catching_exceptions(item):
    """A run that records Exceptions as results, like the fuzz oracle."""
    index, _marker_dir = item
    try:
        if index == 1:
            time.sleep(60.0)
    except Exception as exc:               # noqa: BLE001 - on purpose
        return f"swallowed {type(exc).__name__}"
    return index * 2


def _identity(value):
    return value


# ----------------------------------------------------------------------
# campaign_map: crash isolation, retries, timeouts
# ----------------------------------------------------------------------
class TestCrashIsolation:
    @needs_fork
    def test_sigkilled_worker_is_retried(self, tmp_path):
        items = [(index, str(tmp_path)) for index in range(4)]
        outcomes = campaign_map(_kill_self_once, items, jobs=2,
                                policy=CampaignPolicy(retries=2,
                                                      backoff_base=0.01))
        assert all(isinstance(o, RunSuccess) for o in outcomes)
        assert [o.value for o in outcomes] == [0, 2, 4, 6]
        assert outcomes[1].attempts == 2       # died once, retried
        assert all(o.attempts == 1 for i, o in enumerate(outcomes)
                   if i != 1)

    @needs_fork
    def test_sigkilled_worker_without_retries_is_typed_failure(
            self, tmp_path):
        items = [(index, str(tmp_path)) for index in range(4)]
        outcomes = campaign_map(_kill_self_always, items, jobs=2,
                                policy=CampaignPolicy(retries=0))
        assert isinstance(outcomes[1], RunFailure)
        assert outcomes[1].kind == "worker-death"
        assert "exited" in outcomes[1].error
        # Every sibling's result was retained.
        assert [o.value for i, o in enumerate(outcomes) if i != 1] \
            == [0, 4, 6]

    def test_oserror_is_retried_serially(self, tmp_path):
        items = [(index, str(tmp_path)) for index in range(3)]
        outcomes = campaign_map(_oserror_once, items, jobs=1,
                                policy=CampaignPolicy(retries=1,
                                                      backoff_base=0.01))
        assert all(isinstance(o, RunSuccess) for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)

    def test_deterministic_exception_is_not_retried(self, tmp_path):
        items = [(index, str(tmp_path)) for index in range(3)]
        outcomes = campaign_map(_value_error, items, jobs=1,
                                policy=CampaignPolicy(retries=3))
        failure = outcomes[1]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "exception"
        assert failure.error_type == "ValueError"
        assert failure.attempts == 1           # ValueError is permanent
        assert "deterministic bug" in failure.traceback
        assert [o.value for i, o in enumerate(outcomes) if i != 1] \
            == [0, 4]

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                        reason="needs SIGALRM")
    def test_serial_timeout_becomes_typed_failure(self, tmp_path):
        items = [(index, str(tmp_path)) for index in range(2)]
        started = time.monotonic()
        outcomes = campaign_map(
            _sleep_forever, items, jobs=1,
            policy=CampaignPolicy(retries=2, run_timeout=0.2))
        assert time.monotonic() - started < 30.0
        failure = outcomes[1]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 1           # timeouts not retried
        assert outcomes[0].value == 0

    @needs_fork
    def test_pooled_timeout_becomes_typed_failure(self, tmp_path):
        items = [(index, str(tmp_path)) for index in range(3)]
        started = time.monotonic()
        outcomes = campaign_map(
            _sleep_forever, items, jobs=2,
            policy=CampaignPolicy(retries=0, run_timeout=0.2))
        assert time.monotonic() - started < 30.0
        failure = outcomes[1]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "timeout"
        assert [o.value for i, o in enumerate(outcomes) if i != 1] \
            == [0, 4]

    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                        reason="needs SIGALRM")
    def test_timeout_pierces_broad_exception_handlers(self, tmp_path):
        # The fuzz oracle catches Exception per step and records it as
        # an outcome; a timeout must never be swallowed into a "result"
        # that way (it would be committed to the journal as a success).
        items = [(index, str(tmp_path)) for index in range(2)]
        outcomes = campaign_map(
            _sleep_catching_exceptions, items, jobs=1,
            policy=CampaignPolicy(retries=0, run_timeout=0.2))
        assert isinstance(outcomes[1], RunFailure)
        assert outcomes[1].kind == "timeout"
        assert outcomes[0].value == 0

    def test_key_count_mismatch_raises(self):
        with pytest.raises(ConfigError, match="keys"):
            campaign_map(_identity, [1, 2, 3], keys=["only-one"])


# ----------------------------------------------------------------------
# Journal mechanics
# ----------------------------------------------------------------------
class TestJournal:
    def test_commit_and_resume_skip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            outcomes = campaign_map(_identity, [10, 20, 30],
                                    keys=["a", "b", "c"],
                                    journal=journal)
        assert [o.value for o in outcomes] == [10, 20, 30]
        assert path.exists()
        with CampaignJournal(path) as journal:
            assert len(journal) == 3
            again = campaign_map(_identity, [10, 20, 30],
                                 keys=["a", "b", "c"], journal=journal)
        assert all(o.resumed for o in again)
        assert all(o.attempts == 0 for o in again)
        assert [o.value for o in again] == [10, 20, 30]

    def test_partial_journal_resumes_only_missing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            campaign_map(_identity, [10, 20], keys=["a", "b"],
                         journal=journal)
        with CampaignJournal(path) as journal:
            outcomes = campaign_map(_identity, [10, 20, 30],
                                    keys=["a", "b", "c"],
                                    journal=journal)
        assert [o.resumed for o in outcomes] == [True, True, False]

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            campaign_map(_identity, [10, 20], keys=["a", "b"],
                         journal=journal)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "run_ok", "key": "c", "pay')  # torn
        with CampaignJournal(path) as journal:
            assert "a" in journal and "b" in journal
            assert "c" not in journal       # torn record = uncommitted
            outcomes = campaign_map(_identity, [10, 20, 30],
                                    keys=["a", "b", "c"],
                                    journal=journal)
        assert [o.resumed for o in outcomes] == [True, True, False]

    def test_ensure_meta_rejects_foreign_campaign(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.ensure_meta(campaign="fuzz", seed=7)
        with CampaignJournal(path) as journal:
            journal.ensure_meta(campaign="fuzz", seed=7)  # same: fine
            journal.ensure_meta(budget=50)                # new key: fine
            with pytest.raises(ConfigError, match="different campaign"):
                journal.ensure_meta(seed=8)

    def test_checkpoint_file_tracks_commits(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            campaign_map(_identity, [1, 2, 3], keys=["a", "b", "c"],
                         journal=journal)
            checkpoint = json.loads(
                journal.checkpoint_path().read_text())
        assert checkpoint["committed"] == 3
        assert checkpoint["counts"]["run_ok"] == 3

    def test_journal_renders_as_campaign_report(self, tmp_path):
        from repro.obs.report import render_report

        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.ensure_meta(campaign="test")
            campaign_map(_value_error,
                         [(index, str(tmp_path)) for index in range(3)],
                         journal=journal)
        text = render_report(path)
        assert "campaign health" in text
        assert "1 unresolved run failure(s)" in text
        with CampaignJournal(tmp_path / "ok.jsonl") as journal:
            campaign_map(_identity, [1, 2], keys=["a", "b"],
                         journal=journal)
        assert "campaign healthy" in render_report(tmp_path / "ok.jsonl")


# ----------------------------------------------------------------------
# run_specs: the fault-tolerant run_many
# ----------------------------------------------------------------------
class TestRunSpecs:
    def test_matches_run_many_and_memoizes(self):
        specs = small_specs()
        reference = run_many(specs, jobs=1, cache=None)
        reset_session_cache()
        campaign = run_specs(specs, jobs=1)
        assert campaign.ok
        assert campaign.executed == len(specs)
        assert stats_dicts(campaign.require_complete()) \
            == stats_dicts(reference)
        # Second invocation is served entirely by the session cache.
        again = run_specs(specs, jobs=1)
        assert again.executed == 0
        assert again.cache_hits == len(specs)
        assert stats_dicts(again.results) == stats_dicts(reference)

    def test_resume_is_bit_identical(self, tmp_path):
        specs = small_specs()
        reference = run_many(specs, jobs=1, cache=None)
        path = tmp_path / "sweep.jsonl"

        # "Interrupted" campaign: only half the specs committed.
        reset_session_cache()
        with CampaignJournal(path) as journal:
            run_specs(specs[:2], jobs=1, journal=journal)

        reset_session_cache()
        with CampaignJournal(path) as journal:
            resumed = run_specs(specs, jobs=1, journal=journal)
        assert resumed.ok
        assert resumed.executed == len(specs) - 2
        assert resumed.resumed == 2
        assert stats_dicts(resumed.results) == stats_dicts(reference)

        # A third run re-executes nothing at all.
        reset_session_cache()
        with CampaignJournal(path) as journal:
            replayed = run_specs(specs, jobs=1, journal=journal)
        assert replayed.executed == 0
        assert replayed.resumed == len(specs)
        assert stats_dicts(replayed.results) == stats_dicts(reference)

    def test_failure_is_typed_and_siblings_survive(self, monkeypatch):
        specs = small_specs()
        real = parallel.run_workload

        def flaky(system, workload):
            if workload.name == "canneal":
                raise ValueError("sim bug")
            return real(system, workload)

        monkeypatch.setattr(parallel, "run_workload", flaky)
        campaign = run_specs(specs, jobs=1,
                             policy=CampaignPolicy(retries=0))
        assert not campaign.ok
        assert len(campaign.failures) == 2     # canneal under each config
        assert all(f.error_type == "ValueError" for f in campaign.failures)
        survivors = [r for r in campaign.results if r is not None]
        assert len(survivors) == 2
        with pytest.raises(CampaignError, match="ValueError"):
            campaign.require_complete()

    def test_sweep_resume_round_trip(self, tmp_path):
        from repro.harness.sweep import Sweep

        workloads = [small_workload("blackscholes")]
        sweep = Sweep(tiny_config(),
                      lambda ways: zerodev_config(),
                      jobs=1)
        reference = sweep.run([1], workloads)

        fresh = Sweep(tiny_config(), lambda ways: zerodev_config(),
                      jobs=1)
        path = tmp_path / "sweep.jsonl"
        first = fresh.run([1], workloads, resume=path)
        reset_session_cache()
        rerun = Sweep(tiny_config(), lambda ways: zerodev_config(),
                      jobs=1)
        resumed = rerun.run([1], workloads, resume=path)
        for points in (first, resumed):
            assert points[0].speedups == reference[0].speedups


# ----------------------------------------------------------------------
# Satellite fixes in the plain parallel layer
# ----------------------------------------------------------------------
class TestParallelMapFailureContext:
    def test_error_names_item_and_keeps_partial(self, tmp_path):
        items = [(index, str(tmp_path)) for index in range(3)]
        with pytest.raises(ParallelMapError) as err:
            parallel_map(_value_error, items, jobs=1)
        assert err.value.item_index == 1
        assert err.value.error_type == "ValueError"
        assert err.value.partial == [0, None, 4]

    def test_run_many_names_spec_and_caches_survivors(self, monkeypatch):
        specs = small_specs()
        real = parallel.run_workload

        def flaky(system, workload):
            if workload.name == "canneal":
                raise ValueError("sim bug")
            return real(system, workload)

        monkeypatch.setattr(parallel, "run_workload", flaky)
        before = telemetry_snapshot()
        with pytest.raises(ParallelMapError) as err:
            run_many(specs, jobs=1)
        assert "canneal" in str(err.value)
        assert "kept in the cache" in str(err.value)
        assert err.value.partial[0] is not None

        # The completed runs were published: a retry after the fix only
        # re-executes the runs that failed.
        monkeypatch.setattr(parallel, "run_workload", real)
        results = run_many(specs, jobs=1)
        assert all(result is not None for result in results)
        delta = telemetry_since(before)
        assert delta["runs"] == len(specs)     # 2 + the 2 retried
        assert delta["cache_hits"] == 2


class TestTracePlanLaziness:
    def test_fully_cached_batch_creates_no_trace_dir(self, tmp_path):
        specs = small_specs()[:2]
        run_many(specs, jobs=1)                # fills the session cache
        trace_dir = tmp_path / "traces"
        results = run_many(specs, jobs=1, trace_dir=trace_dir)
        assert all(result.cached for result in results)
        assert not trace_dir.exists()

    def test_executed_runs_still_write_traces(self, tmp_path):
        specs = small_specs()[:2]
        trace_dir = tmp_path / "traces"
        results = run_many(specs, jobs=1, trace_dir=trace_dir)
        assert trace_dir.is_dir()
        for result in results:
            assert result.trace_path is not None
            assert Path(result.trace_path).is_file()


class TestCacheDroppedPuts:
    # An unwritable cache "directory": a regular file occupies the path,
    # so ``mkdir(exist_ok=True)`` raises FileExistsError (an OSError) --
    # unlike chmod tricks, this fails even when the suite runs as root.
    def test_oserror_is_counted_and_warned_once(self, tmp_path):
        blocked = tmp_path / "cache"
        blocked.write_text("not a directory")
        cache = ResultCache(blocked)
        result = run_many(small_specs()[:1], jobs=1, cache=None)[0]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache.put("k1", result)
            cache.put("k2", result)
        assert cache.dropped_puts == 2
        dropped = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(dropped) == 1               # warn once, count all
        # The in-memory tier still serves both entries.
        assert cache.get("k1") is not None

    def test_dropped_puts_reach_telemetry(self, tmp_path, monkeypatch):
        blocked = tmp_path / "cache"
        blocked.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocked))
        reset_session_cache()
        try:
            before = telemetry_snapshot()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                run_many(small_specs()[:2], jobs=1)
            assert telemetry_since(before)["cache_dropped_puts"] == 2
        finally:
            reset_session_cache()


class TestOversubscription:
    def test_explicit_jobs_above_cpu_count_is_honored(self):
        want = (os.cpu_count() or 1) + 2
        results = parallel_map(_identity, list(range(want)), jobs=want)
        assert results == list(range(want))
        assert parallel.telemetry_snapshot()["effective_jobs"] == want

    def test_jobs_clamped_to_items_not_cpus(self):
        parallel_map(_identity, [1, 2], jobs=64)
        assert parallel.telemetry_snapshot()["effective_jobs"] == 2


# ----------------------------------------------------------------------
# run_many matrix: duplicates x cache x trace_dir
# ----------------------------------------------------------------------
class TestRunManyMatrix:
    @pytest.mark.parametrize("with_cache", [True, False],
                             ids=["cache", "no-cache"])
    @pytest.mark.parametrize("with_traces", [True, False],
                             ids=["traces", "no-traces"])
    def test_duplicates_resolve_identically(self, tmp_path, with_cache,
                                            with_traces):
        base = small_specs()[:2]
        specs = base + [base[0]]               # duplicate of the first
        reference = run_many(base, jobs=1, cache=None)
        reset_session_cache()
        results = run_many(
            specs, jobs=1,
            cache=parallel.USE_SESSION_CACHE if with_cache else None,
            trace_dir=(tmp_path / "traces") if with_traces else None)
        assert stats_dicts(results[:2]) == stats_dicts(reference)
        assert stats_dicts([results[2]]) == stats_dicts([reference[0]])
        if with_cache:
            assert results[2].cached           # collapsed duplicate
        if with_traces:
            assert any(result.trace_path for result in results)


# ----------------------------------------------------------------------
# Policy plumbing
# ----------------------------------------------------------------------
class TestPolicyFromEnv:
    def test_absent_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert policy_from_env() is None

    def test_values_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_RETRIES", "3")
        policy = policy_from_env()
        assert policy.run_timeout == 12.5
        assert policy.retries == 3

    @pytest.mark.parametrize("variable,value", [
        ("REPRO_RUN_TIMEOUT", "soon"),
        ("REPRO_RUN_TIMEOUT", "-1"),
        # float() happily parses these; a non-finite deadline would
        # silently disarm the parent's SIGKILL backstop.
        ("REPRO_RUN_TIMEOUT", "inf"),
        ("REPRO_RUN_TIMEOUT", "nan"),
        ("REPRO_RETRIES", "two"),
        ("REPRO_RETRIES", "-2"),
    ])
    def test_malformed_values_raise(self, monkeypatch, variable, value):
        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        monkeypatch.setenv(variable, value)
        with pytest.raises(ConfigError, match=variable):
            policy_from_env()

    def test_backoff_is_capped_exponential(self):
        policy = CampaignPolicy(backoff_base=0.5, backoff_cap=2.0)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(10) == 2.0


class TestJournalSummary:
    """The torn-checkpoint guard: ``journal_summary`` must survive a
    checkpoint damaged mid-replace, exactly as the journal itself
    survives a torn trailing line."""

    def _journal_with_commits(self, tmp_path, n=3):
        path = tmp_path / "soak.jsonl"
        journal = CampaignJournal(path)
        journal.ensure_meta(campaign="fuzz", seed=7)
        for index in range(n):
            journal.commit(f"run{index}", {"value": index})
        journal.note("run_retry", step=1, cause="flaky")
        journal.close()
        return path

    def test_prefers_intact_checkpoint(self, tmp_path):
        path = self._journal_with_commits(tmp_path)
        summary = journal_summary(path)
        assert summary["committed"] == 3
        assert "recovered" not in summary

    @pytest.mark.parametrize("damage", [
        "",                             # truncated to nothing
        '{"journal": "soak.jsonl", "comm',  # torn mid-write
        "[1, 2, 3]",                    # wrong shape entirely
    ])
    def test_torn_checkpoint_falls_back_to_journal(self, tmp_path,
                                                   damage):
        path = self._journal_with_commits(tmp_path)
        path.with_name(path.name + ".checkpoint.json").write_text(damage)
        summary = journal_summary(path)
        assert summary["recovered"] is True
        assert summary["committed"] == 3
        assert summary["counts"]["run_retry"] == 1
        assert summary["meta"]["campaign"] == "fuzz"
        assert summary["meta"]["seed"] == 7

    def test_missing_checkpoint_replays(self, tmp_path):
        path = self._journal_with_commits(tmp_path)
        path.with_name(path.name + ".checkpoint.json").unlink()
        summary = journal_summary(path)
        assert summary["recovered"] is True
        assert summary["committed"] == 3

    def test_torn_journal_tail_tolerated_too(self, tmp_path):
        path = self._journal_with_commits(tmp_path)
        path.with_name(path.name + ".checkpoint.json").unlink()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "run_ok", "key": "torn')
        summary = journal_summary(path)
        assert summary["committed"] == 3
