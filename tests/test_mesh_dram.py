"""Unit tests for the mesh interconnect and the DRAM model."""

import pytest

from repro.common.config import (DramConfig, LatencyConfig, MeshConfig)
from repro.common.errors import ConfigError
from repro.common.messages import MessageType
from repro.common.stats import SystemStats
from repro.dram.model import DramModel
from repro.interconnect.mesh import Mesh


def make_mesh(n_cores=8, n_banks=8, width=4, height=4):
    stats = SystemStats(n_cores)
    mesh = Mesh(MeshConfig(width, height), n_cores, n_banks,
                LatencyConfig(), stats)
    return mesh, stats


class TestMesh:
    def test_hops_are_manhattan(self):
        mesh, _ = make_mesh()
        # cores 0..7 fill rows 0-1, banks 0..7 fill rows 2-3 of a 4x4.
        assert mesh.core_to_core(0, 0) == 0
        assert mesh.core_to_core(0, 1) == 1
        assert mesh.core_to_core(0, 7) == 1 + 3   # (0,0) -> (3,1)
        assert mesh.core_to_bank(0, 0) == 2       # (0,0) -> (0,2)

    def test_send_returns_latency_and_records_traffic(self):
        mesh, stats = make_mesh()
        latency = mesh.send_core_to_bank(MessageType.GETS, 0, 0)
        assert latency == 2 * LatencyConfig().mesh_hop
        assert stats.messages[MessageType.GETS] == 1
        assert stats.traffic_bytes > 0

    def test_zero_hop_send_still_counts_traffic(self):
        mesh, stats = make_mesh()
        assert mesh.send_core_to_core(MessageType.INV_ACK, 2, 2) == 0
        assert stats.messages[MessageType.INV_ACK] == 1

    def test_symmetry(self):
        mesh, _ = make_mesh()
        for core in range(8):
            for bank in range(8):
                assert (mesh.core_to_bank(core, bank)
                        == mesh.hops(("bank", bank), ("core", core)))

    def test_rejects_overfull_mesh(self):
        with pytest.raises(ConfigError):
            make_mesh(n_cores=12, n_banks=8, width=4, height=4)


class TestDram:
    def make(self, **kw):
        stats = SystemStats(1)
        return DramModel(DramConfig(**kw), stats), stats

    def test_row_miss_then_hit(self):
        dram, stats = self.make()
        config = DramConfig()
        first = dram.read(0)
        second = dram.read(2)    # same channel (even), same row
        assert first == config.row_miss_cycles
        assert second == config.row_hit_cycles
        assert stats.dram_row_misses == 1
        assert stats.dram_row_hits == 1

    def test_channel_interleaving(self):
        dram, stats = self.make()
        dram.read(0)
        dram.read(1)             # odd block -> other channel, own row
        assert stats.dram_row_misses == 2

    def test_write_counts_and_entry_tag(self):
        dram, stats = self.make()
        dram.write(0)
        dram.write(2, from_entry_eviction=True)
        assert stats.dram_writes == 2
        assert stats.dram_writes_entry_eviction == 1

    def test_reads_and_writes_share_row_buffer(self):
        dram, stats = self.make()
        dram.write(0)
        assert dram.read(2) == DramConfig().row_hit_cycles

    def test_far_block_misses_row(self):
        dram, stats = self.make()
        dram.read(0)
        dram.read(1 << 20)
        assert stats.dram_row_misses == 2
