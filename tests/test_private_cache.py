"""Unit tests for the per-core private hierarchy (L1I/L1D over L2)."""

import pytest

from repro.caches.block import MESI
from repro.caches.private_cache import PrivateHierarchy
from repro.common.config import CacheGeometry
from repro.common.errors import ProtocolInvariantError


def make_hierarchy():
    return PrivateHierarchy(
        core=0,
        l1i=CacheGeometry(256, 2),    # 4 blocks, 2 sets
        l1d=CacheGeometry(256, 2),
        l2=CacheGeometry(1024, 4),    # 16 blocks, 4 sets
    )


class TestFillAndLookup:
    def test_fill_then_l1_hit(self):
        hier = make_hierarchy()
        hier.fill(5, MESI.E, version=0, code=False)
        assert hier.read_hit_level(5, code=False) == "l1"

    def test_l2_hit_refills_l1(self):
        hier = make_hierarchy()
        hier.fill(0, MESI.E, 0, code=False)
        # Evict 0 from L1D (2-way sets by low bits: 0, 2, 4 share set 0).
        hier.fill(2, MESI.E, 0, code=False)
        hier.fill(4, MESI.E, 0, code=False)
        assert hier.read_hit_level(0, code=False) == "l2"
        assert hier.read_hit_level(0, code=False) == "l1"

    def test_code_and_data_l1s_are_split(self):
        hier = make_hierarchy()
        hier.fill(5, MESI.S, 0, code=True)
        assert hier.read_hit_level(5, code=False) == "l2"

    def test_miss_returns_none(self):
        assert make_hierarchy().read_hit_level(9, code=False) is None

    def test_double_fill_rejected(self):
        hier = make_hierarchy()
        hier.fill(5, MESI.E, 0, code=False)
        with pytest.raises(ProtocolInvariantError):
            hier.fill(5, MESI.S, 0, code=False)


class TestEvictionNotices:
    def test_l2_eviction_produces_notice_and_back_invalidates(self):
        hier = make_hierarchy()
        for block in (0, 4, 8, 12):   # fill L2 set 0
            hier.fill(block, MESI.E, 0, code=False)
        notices = hier.fill(16, MESI.E, 0, code=False)
        assert len(notices) == 1
        assert notices[0].block == 0
        assert notices[0].state is MESI.E
        assert 0 not in hier
        assert hier.read_hit_level(0, code=False) is None

    def test_notice_carries_m_state_and_version(self):
        hier = make_hierarchy()
        hier.fill(0, MESI.E, 0, code=False)
        hier.commit_write(0, version=7)
        for block in (4, 8, 12):
            hier.fill(block, MESI.E, 0, code=False)
        notices = hier.fill(16, MESI.E, 0, code=False)
        assert notices[0].state is MESI.M
        assert notices[0].version == 7

    def test_l1_eviction_is_silent(self):
        hier = make_hierarchy()
        hier.fill(0, MESI.E, 0, code=False)
        hier.fill(2, MESI.E, 0, code=False)
        notices = hier.fill(4, MESI.E, 0, code=False)  # L1D set 0 full
        assert notices == []
        assert 0 in hier                               # still in L2


class TestCoherenceActions:
    def test_write_requires_ownership(self):
        hier = make_hierarchy()
        hier.fill(3, MESI.S, 0, code=False)
        with pytest.raises(ProtocolInvariantError):
            hier.commit_write(3, 1)

    def test_silent_e_to_m(self):
        hier = make_hierarchy()
        hier.fill(3, MESI.E, 0, code=False)
        hier.commit_write(3, 9)
        assert hier.probe(3) is MESI.M
        assert hier.line_of(3).version == 9

    def test_invalidate_returns_line(self):
        hier = make_hierarchy()
        hier.fill(3, MESI.E, 5, code=False)
        line = hier.invalidate(3)
        assert line.version == 5
        assert 3 not in hier
        assert hier.invalidate(3) is None

    def test_downgrade_to_s(self):
        hier = make_hierarchy()
        hier.fill(3, MESI.E, 0, code=False)
        hier.commit_write(3, 4)
        line = hier.downgrade_to_s(3)
        assert line.version == 4
        assert hier.probe(3) is MESI.S

    def test_downgrade_requires_ownership(self):
        hier = make_hierarchy()
        hier.fill(3, MESI.S, 0, code=False)
        with pytest.raises(ProtocolInvariantError):
            hier.downgrade_to_s(3)

    def test_write_hit_state(self):
        hier = make_hierarchy()
        assert hier.write_hit_state(3) is None
        hier.fill(3, MESI.S, 0, code=False)
        assert hier.write_hit_state(3) is MESI.S

    def test_cached_blocks(self):
        hier = make_hierarchy()
        hier.fill(1, MESI.E, 0, code=False)
        hier.fill(2, MESI.S, 0, code=True)
        assert sorted(hier.cached_blocks()) == [1, 2]
