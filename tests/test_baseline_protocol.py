"""Directed scenarios for the baseline MESI + sparse-directory protocol."""

import pytest

from repro.caches.block import LineKind, MESI
from repro.coherence.entry import DirState
from repro.common.config import DirectoryConfig, LLCDesign
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config


class TestFillsAndHits:
    def test_read_miss_fills_exclusive(self, baseline):
        drive(baseline, [(0, "R", 5)])
        assert baseline.cores[0].probe(5) is MESI.E
        entry = baseline._peek_entry(5)
        assert entry.state is DirState.ME and entry.owner == 0

    def test_second_read_hits_l1(self, baseline):
        lat = drive(baseline, [(0, "R", 5), (0, "R", 5)])
        assert lat[1] == baseline.config.latency.l1_hit
        assert baseline.stats.l1_hits == 1
        assert baseline.stats.core_cache_misses == 1

    def test_code_fetch_fills_shared(self, baseline):
        drive(baseline, [(0, "I", 5)])
        assert baseline.cores[0].probe(5) is MESI.S
        assert baseline._peek_entry(5).state is DirState.S

    def test_demand_fill_allocates_in_llc(self, baseline):
        drive(baseline, [(0, "R", 5)])
        line = baseline.bank_of(5).peek_data(5)
        assert line is not None and line.kind is LineKind.DATA

    def test_write_miss_fills_modified(self, baseline):
        drive(baseline, [(0, "W", 5)])
        assert baseline.cores[0].probe(5) is MESI.M

    def test_silent_e_to_m_upgrade(self, baseline):
        drive(baseline, [(0, "R", 5), (0, "W", 5)])
        assert baseline.cores[0].probe(5) is MESI.M
        assert baseline.stats.upgrades == 0


class TestSharingTransitions:
    def test_read_of_owned_block_forwards_three_hop(self, baseline):
        drive(baseline, [(0, "W", 5), (1, "R", 5)])
        assert baseline.stats.forwarded_requests == 1
        assert baseline.cores[0].probe(5) is MESI.S
        assert baseline.cores[1].probe(5) is MESI.S
        entry = baseline._peek_entry(5)
        assert entry.state is DirState.S
        assert sorted(entry.sharer_cores()) == [0, 1]

    def test_downgrade_writes_dirty_data_to_llc(self, baseline):
        drive(baseline, [(0, "W", 5), (1, "R", 5)])
        line = baseline.bank_of(5).peek_data(5)
        assert line.dirty
        assert line.version == baseline.shadow.latest(5)

    def test_write_invalidates_sharers(self, baseline):
        drive(baseline, [(0, "R", 5), (1, "R", 5), (2, "W", 5)])
        assert baseline.cores[0].probe(5) is None
        assert baseline.cores[1].probe(5) is None
        assert baseline.cores[2].probe(5) is MESI.M
        assert baseline.stats.invalidations_sent >= 2

    def test_upgrade_from_shared(self, baseline):
        drive(baseline, [(0, "R", 5), (1, "R", 5), (1, "W", 5)])
        assert baseline.stats.upgrades == 1
        assert baseline.cores[1].probe(5) is MESI.M
        assert baseline.cores[0].probe(5) is None

    def test_getx_on_owned_block_transfers_ownership(self, baseline):
        drive(baseline, [(0, "W", 5), (1, "W", 5)])
        assert baseline.cores[0].probe(5) is None
        assert baseline.cores[1].probe(5) is MESI.M
        entry = baseline._peek_entry(5)
        assert entry.owner == 1

    def test_read_write_read_data_flows(self, baseline):
        # The shadow-memory checker inside drive() verifies every read
        # observes the latest version through all these transitions.
        drive(baseline, [(0, "R", 5), (1, "W", 5), (2, "R", 5),
                         (3, "R", 5), (0, "W", 5), (1, "R", 5)])


class TestEvictionNotices:
    def test_l2_eviction_frees_directory_entry(self, baseline):
        # L2 is 4-way with 8 sets: five same-set blocks force an eviction.
        same_set = [s * 8 for s in range(5)]
        drive(baseline, [(0, "R", b) for b in same_set])
        assert baseline._peek_entry(same_set[0]) is None
        assert baseline.cores[0].probe(same_set[0]) is None

    def test_m_eviction_writes_back_to_llc(self, baseline):
        same_set = [s * 8 for s in range(5)]
        drive(baseline, [(0, "W", same_set[0])]
              + [(0, "R", b) for b in same_set[1:]])
        line = baseline.bank_of(same_set[0]).peek_data(same_set[0])
        assert line is not None and line.dirty
        assert line.version == baseline.shadow.latest(same_set[0])

    def test_shared_eviction_keeps_entry_for_others(self, baseline):
        same_set = [s * 8 for s in range(5)]
        drive(baseline, [(0, "R", same_set[0]), (1, "R", same_set[0])]
              + [(0, "R", b) for b in same_set[1:]])
        entry = baseline._peek_entry(same_set[0])
        assert entry is not None
        assert list(entry.sharer_cores()) == [1]


def dev_prone_config(**kw):
    """1/8-size directory: 16 entries in 2 sets of 8 ways."""
    return tiny_config(directory=DirectoryConfig(ratio=0.125), **kw)


class TestDirectoryEvictionVictims:
    def test_conflict_generates_devs(self):
        system = build_system(dev_prone_config())
        blocks = [2 * k for k in range(9)]     # all map to dir set 0
        drive(system, [(0, "R", b) for b in blocks])
        assert system.stats.dir_evictions >= 1
        assert system.stats.dev_invalidations >= 1
        victims = [b for b in blocks if system.cores[0].probe(b) is None]
        assert victims                          # some private copy died

    def test_dev_invalidates_all_sharers(self):
        system = build_system(dev_prone_config())
        drive(system, [(0, "R", 0), (1, "R", 0), (2, "R", 0),
                       (3, "R", 0)])
        before = system.stats.dev_invalidations
        drive(system, [(0, "R", 2 * k) for k in range(1, 9)])
        assert system.stats.dev_invalidations - before >= 1

    def test_dirty_dev_retrieved_into_llc(self):
        system = build_system(dev_prone_config())
        drive(system, [(0, "W", 0)])
        version = system.shadow.latest(0)
        drive(system, [(1, "R", 2 * k) for k in range(1, 9)])
        if system.cores[0].probe(0) is None:    # block 0 was the victim
            line = system.bank_of(0).peek_data(0)
            assert line is not None and line.dirty
            assert line.version == version

    def test_unbounded_directory_has_no_devs(self):
        system = build_system(tiny_config(
            directory=DirectoryConfig(unbounded=True)))
        drive(system, [(c, "R", 2 * k) for k in range(30)
                       for c in range(4)])
        assert system.stats.dev_invalidations == 0
        assert system.stats.dir_evictions == 0

    def test_smaller_directory_more_devs(self):
        def devs(ratio):
            system = build_system(tiny_config(
                directory=DirectoryConfig(ratio=ratio)))
            drive(system, [(c, "R", 4 * k + c) for k in range(40)
                           for c in range(4)])
            return system.stats.dev_invalidations
        assert devs(0.125) >= devs(1.0)


class TestInclusiveLLC:
    def test_llc_eviction_back_invalidates(self):
        system = build_system(tiny_config(
            llc_design=LLCDesign.INCLUSIVE))
        # LLC sets per bank: 16, 4 ways. Five blocks in bank 0, set 0.
        blocks = [t << 5 for t in range(5)]
        drive(system, [(0, "R", b) for b in blocks])
        assert system.stats.inclusion_invalidations >= 1
        assert system.cores[0].probe(blocks[0]) is None
        assert system._peek_entry(blocks[0]) is None

    def test_dirty_inclusion_victim_written_back(self):
        system = build_system(tiny_config(
            llc_design=LLCDesign.INCLUSIVE))
        blocks = [t << 5 for t in range(5)]
        drive(system, [(0, "W", blocks[0])]
              + [(0, "R", b) for b in blocks[1:]])
        assert system.stats.dram_writes >= 1
        # Re-read returns the stored version (checked by the shadow).
        drive(system, [(1, "R", blocks[0])])


class TestEPD:
    def test_data_fill_skips_llc(self):
        system = build_system(tiny_config(llc_design=LLCDesign.EPD))
        drive(system, [(0, "R", 5)])
        assert system.bank_of(5).peek_data(5) is None
        assert system.cores[0].probe(5) is MESI.E

    def test_code_fill_allocates_llc(self):
        system = build_system(tiny_config(llc_design=LLCDesign.EPD))
        drive(system, [(0, "I", 5)])
        assert system.bank_of(5).peek_data(5) is not None

    def test_owner_eviction_allocates_llc(self):
        system = build_system(tiny_config(llc_design=LLCDesign.EPD))
        same_set = [s * 8 for s in range(5)]
        drive(system, [(0, "R", b) for b in same_set])
        assert system.bank_of(same_set[0]).peek_data(same_set[0]) \
            is not None

    def test_sharing_allocates_llc(self):
        system = build_system(tiny_config(llc_design=LLCDesign.EPD))
        drive(system, [(0, "R", 5), (1, "R", 5)])
        assert system.bank_of(5).peek_data(5) is not None

    def test_write_deallocates_from_llc(self):
        system = build_system(tiny_config(llc_design=LLCDesign.EPD))
        drive(system, [(0, "R", 5), (1, "R", 5), (1, "W", 5)])
        assert system.bank_of(5).peek_data(5) is None


class TestTrafficAccounting:
    def test_messages_recorded(self, baseline):
        drive(baseline, [(0, "W", 5), (1, "R", 5)])
        assert baseline.stats.traffic_bytes > 0
        from repro.common.messages import MessageType
        assert baseline.stats.messages[MessageType.FWD_GETS] == 1

    def test_store_latency_partially_hidden(self, baseline):
        read_lat = drive(baseline, [(0, "R", 5)])[0]
        write_lat = drive(baseline, [(1, "W", 7)])[0]
        assert write_lat < read_lat
