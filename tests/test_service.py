"""Tests for the campaign job service (``repro.service``).

The load-bearing properties:

* **Pluggable result store** -- disk and sqlite backends round-trip
  payloads behind the same contract (``get`` never raises, ``put`` is
  atomic), :class:`ResultCache` works over either, and ``REPRO_STORE``
  switches the session cache's backend.
* **Lease queue** -- claims are exclusive, heartbeats keep leases
  alive, expired leases are reclaimed exactly once with their reclaim
  count bumped, and requeues never lose items.
* **Worker-fleet failure matrix** -- a SIGKILLed worker's leased run is
  reclaimed and re-executed by a second worker, and the finished job's
  canonical journal is *byte-identical* to an uninterrupted
  single-worker run; poison items fail after bounded reclaims; partial
  jobs resume by resubmission.
* **Dedupe** -- resubmitting a finished spec returns instantly;
  identical runs across different jobs are served from the shared
  result store (``store_hit`` events).
* **HTML reports** -- self-contained: no external URLs, scripts, or
  stylesheet links.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.harness.campaign import CampaignPolicy
from repro.harness.parallel import execute_run, fork_available
from repro.harness.result_cache import (ResultCache, reset_session_cache,
                                        run_key, session_cache)
from repro.service import (DiskResultStore, JobSpec, JobStore,
                           LeaseQueue, QueueItem, SqliteResultStore,
                           job_id_for, open_store)
from repro.service.worker import MAX_RECLAIMS, Worker, run_worker
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

from tests.conftest import tiny_config

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")

#: A small fuzz job: 2 traces x 2 models = 4 items, seconds to run.
SMALL_FUZZ = {"budget": 2,
              "models": ["baseline-1x",
                         "zerodev-fuse-private-spill-shared"]}


@pytest.fixture(autouse=True)
def isolated_store_env(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    reset_session_cache()
    yield
    reset_session_cache()


def drain(root, **kwargs) -> int:
    kwargs.setdefault("poll", 0.05)
    kwargs.setdefault("until_idle", True)
    return run_worker(root, **kwargs)


def read_journal(root, job_id):
    """(kind, key, payload-bytes) triples plus the raw journal bytes."""
    path = Path(root) / "jobs" / job_id / "journal.jsonl"
    return path.read_bytes()


# ----------------------------------------------------------------------
# Result stores
# ----------------------------------------------------------------------
class TestResultStores:
    @pytest.mark.parametrize("flavour", ["disk", "sqlite"])
    def test_round_trip(self, tmp_path, flavour):
        store = (DiskResultStore(tmp_path / "s") if flavour == "disk"
                 else SqliteResultStore(tmp_path / "s.db"))
        assert store.get("k") is None
        store.put("k", {"payload": [1, 2, 3]})
        assert store.get("k") == {"payload": [1, 2, 3]}
        assert "k" in store and len(store) == 1
        assert sorted(store.keys()) == ["k"]
        store.put("k", "replaced")      # overwrite is fine
        assert store.get("k") == "replaced"

    def test_disk_corruption_is_a_miss(self, tmp_path):
        store = DiskResultStore(tmp_path)
        store.put("k", 42)
        store.path_for("k").write_bytes(b"not a pickle")
        assert store.get("k") is None

    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(tmp_path / "d"), DiskResultStore)
        sqlite_store = open_store(f"sqlite:{tmp_path / 'x.db'}")
        assert isinstance(sqlite_store, SqliteResultStore)

    def test_sqlite_survives_pickling(self, tmp_path):
        store = SqliteResultStore(tmp_path / "s.db")
        store.put("k", 7)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get("k") == 7

    def test_result_cache_over_sqlite(self, tmp_path):
        workload = make_multithreaded(find_profile("blackscholes"),
                                      tiny_config(), 200, seed=3)
        spec = (tiny_config(), workload)
        result = execute_run(spec)
        key = run_key(*spec)
        cache = ResultCache(
            store=SqliteResultStore(tmp_path / "cache.db"))
        cache.put(key, result)
        fresh = ResultCache(
            store=SqliteResultStore(tmp_path / "cache.db"))
        hit = fresh.get(key)
        assert hit is not None
        assert hit.stats.total_cycles == result.stats.total_cycles

    def test_result_cache_rejects_foreign_objects(self, tmp_path):
        store = SqliteResultStore(tmp_path / "cache.db")
        store.put("k", {"not": "a RunResult"})
        assert ResultCache(store=store).get("k") is None

    def test_repro_store_env_switches_session_cache(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_STORE",
                           f"sqlite:{tmp_path / 'session.db'}")
        reset_session_cache()
        assert isinstance(session_cache().store, SqliteResultStore)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "plain"))
        assert isinstance(session_cache().store, DiskResultStore)


# ----------------------------------------------------------------------
# Lease queue
# ----------------------------------------------------------------------
class TestLeaseQueue:
    def test_claim_is_exclusive(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        queue.enqueue(QueueItem("job-a", 0, "key0"))
        first = queue.claim()
        assert first is not None and first.index == 0
        assert queue.claim() is None    # nothing left to claim
        assert queue.pending() == 1     # but still in flight
        queue.release(first)
        assert queue.idle()

    def test_expired_lease_reclaims_once_with_bumped_count(self,
                                                           tmp_path):
        queue = LeaseQueue(tmp_path, ttl=1.0)
        queue.enqueue(QueueItem("job-a", 0, "key0"))
        item = queue.claim()
        stale = time.time() - 60
        os.utime(item.path, (stale, stale))
        leases = queue.expired_leases()
        assert leases == [item.path]
        reclaimed = queue.reclaim(leases[0])
        assert reclaimed.reclaims == 1
        assert queue.reclaim(leases[0]) is None   # second taker loses
        again = queue.claim()
        assert again.reclaims == 1 and again.key == "key0"

    def test_heartbeat_prevents_expiry(self, tmp_path):
        queue = LeaseQueue(tmp_path, ttl=1.0)
        queue.enqueue(QueueItem("job-a", 0, "key0"))
        item = queue.claim()
        stale = time.time() - 60
        os.utime(item.path, (stale, stale))
        queue.heartbeat(item)
        assert queue.expired_leases() == []

    @pytest.mark.parametrize("ttl", [0, -1.5, float("inf"),
                                     float("nan")],
                             ids=["zero", "negative", "inf", "nan"])
    def test_invalid_ttl_rejected_at_construction(self, tmp_path, ttl):
        # ttl=0 makes every live lease instantly stealable; inf/nan
        # make dead workers' leases unreclaimable. Fail fast instead.
        with pytest.raises(ConfigError, match="TTL"):
            LeaseQueue(tmp_path, ttl=ttl)

    def test_requeue_bumps_attempt(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        queue.enqueue(QueueItem("job-a", 0, "key0"))
        item = queue.claim()
        queue.requeue(item)
        retry = queue.claim()
        assert retry.attempt == item.attempt + 1
        assert queue.pending() == 1     # the lease, no duplicate todo


# ----------------------------------------------------------------------
# Jobs and specs
# ----------------------------------------------------------------------
class TestJobSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown job kind"):
            JobSpec.make("bake")

    @pytest.mark.parametrize("kind,params,match", [
        ("fuzz", {"budget": 0}, "budget"),
        ("fuzz", {"models": ["nope"]}, "unknown model"),
        ("fuzz", {"seed": "seven"}, "seed"),
        ("sweep", {"apps": []}, "apps"),
        ("sweep", {"apps": ["not-an-app"]}, "unknown application"),
        ("sweep", {"ratios": [-1.0]}, "ratios"),
        ("figure", {"figure": "fig999"}, "figure"),
    ])
    def test_bad_params_rejected(self, kind, params, match):
        with pytest.raises(ConfigError, match=match):
            JobSpec.make(kind, params)

    def test_job_id_is_content_addressed(self):
        a = JobSpec.make("fuzz", {"budget": 2, "seed": 1})
        b = JobSpec.make("fuzz", {"seed": 1, "budget": 2})
        c = JobSpec.make("fuzz", {"budget": 2, "seed": 2})
        assert job_id_for(a) == job_id_for(b)
        assert job_id_for(a) != job_id_for(c)

    def test_illegal_transition_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        with pytest.raises(ConfigError, match="illegal state"):
            store.transition(record.job_id, "done")


# ----------------------------------------------------------------------
# The worker fleet
# ----------------------------------------------------------------------
class TestWorkerFleet:
    def test_single_worker_completes_a_fuzz_job(self, tmp_path):
        store = JobStore(tmp_path)
        record, created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        assert created and record.state == "queued" and record.items == 4
        assert drain(tmp_path) == 4
        final = store.record(record.job_id)
        assert final.state == "done" and final.done == 4
        journal = store.journal_status(record.job_id)
        assert journal["committed"] == 4
        assert journal["meta"]["campaign"] == "fuzz"
        summary = json.loads(
            (store.job_dir(record.job_id) / "summary.json").read_text())
        assert summary["ok"] is True and summary["runs"] == 4

    def test_finished_job_resubmits_instantly(self, tmp_path):
        store = JobStore(tmp_path)
        spec = JobSpec.make("fuzz", SMALL_FUZZ)
        store.submit(spec)
        drain(tmp_path)
        started = time.monotonic()
        record, created = store.submit(spec)
        assert not created and record.state == "done"
        assert time.monotonic() - started < 1.0
        assert LeaseQueue(store.queue_dir).idle()   # nothing re-enqueued

    def test_backdated_lease_is_reclaimed_and_job_finishes(self,
                                                           tmp_path):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        queue = LeaseQueue(store.queue_dir, ttl=1.0)
        held = queue.claim()            # a "worker" that dies silently
        stale = time.time() - 60
        os.utime(held.path, (stale, stale))
        drain(tmp_path, lease_ttl=1.0)
        assert store.record(record.job_id).state == "done"
        events = [json.loads(line) for line in
                  (store.job_dir(record.job_id) / "events.jsonl")
                  .read_text().splitlines()]
        assert any(e["kind"] == "lease_reclaim" for e in events)

    def test_sigkilled_worker_journal_bit_identical(self, tmp_path):
        """Satellite 3: SIGKILL a leased worker; a second worker
        reclaims and finishes; the canonical journal is byte-identical
        to an uninterrupted single-worker run."""
        spec_params = dict(SMALL_FUZZ, budget=3)
        clean_root = tmp_path / "clean"
        fleet_root = tmp_path / "fleet"
        clean_store = JobStore(clean_root)
        clean_record, _ = clean_store.submit(
            JobSpec.make("fuzz", spec_params))
        drain(clean_root)
        assert clean_store.record(clean_record.job_id).state == "done"

        fleet_store = JobStore(fleet_root)
        fleet_record, _ = fleet_store.submit(
            JobSpec.make("fuzz", spec_params))
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "work", "--root",
             str(fleet_root), "--poll", "0.05", "--lease-ttl", "30"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30
            queue_dir = fleet_store.queue_dir
            while time.monotonic() < deadline:
                if list(queue_dir.glob("*.lease")):
                    break
                time.sleep(0.01)
        finally:
            victim.kill()               # SIGKILL: no cleanup, no release
            victim.wait()
        # The victim's lease (if any) never heartbeats again; backdate
        # it so the surviving worker reclaims immediately instead of
        # the test waiting out a TTL.
        stale = time.time() - 3600
        for lease in fleet_store.queue_dir.glob("*.lease"):
            os.utime(lease, (stale, stale))
        drain(fleet_root, lease_ttl=1.0, worker_id="survivor")
        final = fleet_store.record(fleet_record.job_id)
        assert final.state == "done" and final.done == 6
        assert read_journal(fleet_root, fleet_record.job_id) == \
            read_journal(clean_root, clean_record.job_id)

    def test_poison_item_fails_bounded_and_job_is_partial(self,
                                                          tmp_path):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        queue = LeaseQueue(store.queue_dir)
        poisoned = queue.claim()
        queue.release(poisoned)
        queue.enqueue(QueueItem(poisoned.job, poisoned.index,
                                poisoned.key,
                                reclaims=MAX_RECLAIMS + 1))
        drain(tmp_path)
        final = store.record(record.job_id)
        assert final.state == "partial"
        assert final.failed == 1 and final.done == 3
        assert any("poison" in line
                   for line in store.failure_lines(record.job_id))
        # Resubmission wipes the failure record and finishes the job.
        store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        drain(tmp_path)
        assert store.record(record.job_id).state == "done"

    def test_identical_runs_dedupe_across_jobs(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_STORE",
                           f"sqlite:{tmp_path / 'shared.db'}")
        root_a, root_b = tmp_path / "a", tmp_path / "b"
        JobStore(root_a).submit(JobSpec.make("fuzz", SMALL_FUZZ))
        drain(root_a)
        store_b = JobStore(root_b)
        record, _created = store_b.submit(
            JobSpec.make("fuzz", SMALL_FUZZ))
        drain(root_b)
        assert store_b.record(record.job_id).state == "done"
        events = [json.loads(line) for line in
                  (store_b.job_dir(record.job_id) / "events.jsonl")
                  .read_text().splitlines()]
        hits = [e for e in events if e["kind"] == "store_hit"]
        assert len(hits) == 4           # every run served from the store

    def test_transient_failure_is_retried_in_place(self, tmp_path,
                                                   monkeypatch):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        from repro.service.jobs import JOB_KINDS
        real = JOB_KINDS["fuzz"].execute
        calls = {"n": 0}

        def flaky(spec, index):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient I/O blip")
            return real(spec, index)

        monkeypatch.setattr(JOB_KINDS["fuzz"], "execute", flaky)
        worker = Worker(tmp_path, poll=0.05,
                        policy=CampaignPolicy(retries=2,
                                              backoff_base=0.01))
        worker.run(until_idle=True)
        assert store.record(record.job_id).state == "done"
        events = [json.loads(line) for line in
                  (store.job_dir(record.job_id) / "events.jsonl")
                  .read_text().splitlines()]
        assert any(e["kind"] == "run_retry" for e in events)


# ----------------------------------------------------------------------
# Sweep and figure kinds through the service
# ----------------------------------------------------------------------
class TestOtherJobKinds:
    def test_sweep_job_produces_points(self, tmp_path):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("sweep", {
            "apps": ["blackscholes"], "ratios": [0, 1.0],
            "accesses": 300, "seed": 3}))
        assert record.items == 3        # 1 baseline + 2 ratio points
        drain(tmp_path)
        assert store.record(record.job_id).state == "done"
        summary = json.loads(
            (store.job_dir(record.job_id) / "summary.json").read_text())
        assert [p["ratio"] for p in summary["points"]] == [0.0, 1.0]
        for point in summary["points"]:
            assert point["geomean_speedup"] > 0

    def test_sweep_items_share_the_interactive_cache_keys(self,
                                                          tmp_path):
        spec = JobSpec.make("sweep", {"apps": ["blackscholes"],
                                      "ratios": [0], "accesses": 300,
                                      "seed": 3})
        from repro.service.jobs import JOB_KINDS
        keys = JOB_KINDS["sweep"].item_keys(spec)
        # Keys are run_key() content hashes -- 64-hex, no prefix -- so
        # service runs dedupe against interactive run_many sessions.
        assert all(len(key) == 64 and not key.startswith("sweep")
                   for key in keys)


# ----------------------------------------------------------------------
# HTML reports
# ----------------------------------------------------------------------
def assert_self_contained(html: str) -> None:
    lowered = html.lower()
    assert "http://" not in lowered
    assert "https://" not in lowered
    assert "<script" not in lowered
    assert "<link" not in lowered
    assert "@import" not in lowered


class TestHtmlReports:
    def test_job_report_is_self_contained_and_complete(self, tmp_path):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        drain(tmp_path)
        html = (store.job_dir(record.job_id) / "report.html").read_text()
        assert_self_contained(html)
        assert record.job_id in html
        assert "ZERO directory-eviction victims" in html
        assert "committed runs" in html           # health section
        assert html.count("<tr") >= record.items  # per-run outcome rows

    def test_failed_runs_surface_in_the_report(self, tmp_path):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        queue = LeaseQueue(store.queue_dir)
        poisoned = queue.claim()
        queue.release(poisoned)
        queue.enqueue(QueueItem(poisoned.job, poisoned.index,
                                poisoned.key,
                                reclaims=MAX_RECLAIMS + 1))
        drain(tmp_path)
        html = (store.job_dir(record.job_id) / "report.html").read_text()
        assert_self_contained(html)
        assert "lost" in html and "poison" in html

    def test_trace_html_rendering(self, tmp_path):
        store = JobStore(tmp_path)
        record, _created = store.submit(JobSpec.make("fuzz", SMALL_FUZZ))
        drain(tmp_path)
        from repro.service.html_report import render_trace_html
        html = render_trace_html(
            store.job_dir(record.job_id) / "journal.jsonl")
        assert_self_contained(html)
        assert "campaign healthy" in html


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestServiceCli:
    def test_submit_work_status_report(self, tmp_path, capsys):
        from repro.cli import main
        root = str(tmp_path / "svc")
        assert main(["submit", "fuzz",
                     json.dumps(SMALL_FUZZ), "--root", root]) == 0
        job_id = capsys.readouterr().out.split()[1]
        assert main(["work", "--root", root, "--until-idle",
                     "--poll", "0.05"]) == 0
        capsys.readouterr()
        assert main(["status", job_id, "--root", root]) == 0
        out = capsys.readouterr().out
        assert "done" in out and "4/4" in out
        assert main(["jobs", "--root", root]) == 0
        capsys.readouterr()
        assert main(["report", "--html", job_id, "--root", root]) == 0

    def test_malformed_params_exit_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        root = str(tmp_path / "svc")
        assert main(["submit", "fuzz", "{not json",
                     "--root", root]) == 2
        assert main(["submit", "fuzz", '{"budget": 0}',
                     "--root", root]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err
