"""Tests for the protocol audit log."""

import pytest

from repro.coherence.audit import AuditLog
from repro.common.config import DirectoryConfig
from repro.harness.system_builder import build_system

from tests.conftest import drive, tiny_config, zerodev_config


class TestAuditLog:
    def test_records_accesses(self, baseline):
        with AuditLog(baseline) as log:
            drive(baseline, [(0, "R", 5), (1, "W", 5)])
            accesses = log.of_kind("access")
            assert len(accesses) == 2
            assert "core=0" in accesses[0].detail
            assert "WRITE" in accesses[1].detail

    def test_records_entry_allocation(self, baseline):
        with AuditLog(baseline) as log:
            drive(baseline, [(0, "R", 5)])
            allocs = log.of_kind("entry-alloc")
            assert len(allocs) == 1
            assert "0x5" in allocs[0].detail

    def test_records_devs(self):
        system = build_system(tiny_config(
            directory=DirectoryConfig(ratio=0.125)))
        with AuditLog(system) as log:
            drive(system, [(0, "R", 2 * k) for k in range(9)])
            assert log.of_kind("DEV")

    def test_records_notices(self, baseline):
        with AuditLog(baseline) as log:
            drive(baseline, [(0, "R", 8 * k) for k in range(5)])
            assert log.of_kind("notice")

    def test_ring_buffer_bounded(self, baseline):
        with AuditLog(baseline, capacity=10) as log:
            drive(baseline, [(0, "R", k) for k in range(30)])
            assert len(log.events) == 10

    def test_detach_restores(self, baseline):
        log = AuditLog(baseline)
        log.detach()
        before = len(log.events)
        drive(baseline, [(0, "R", 5)])
        assert len(log.events) == before

    def test_render_tail(self, zerodev):
        with AuditLog(zerodev) as log:
            drive(zerodev, [(0, "R", 5), (1, "R", 5)])
            text = log.render(5)
            assert "access" in text and "#" in text

    def test_works_on_zerodev(self, zerodev):
        with AuditLog(zerodev) as log:
            drive(zerodev, [(0, "R", 5), (1, "R", 5), (1, "W", 5)])
            kinds = {event.kind for event in log.events}
            assert "entry-alloc" in kinds
            assert zerodev.stats.dev_invalidations == 0

    def test_events_ordered_by_step(self, baseline):
        with AuditLog(baseline) as log:
            drive(baseline, [(0, "R", 5), (1, "R", 7)])
            steps = [event.step for event in log.events]
            assert steps == sorted(steps)
