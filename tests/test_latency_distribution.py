"""Tests for the latency-distribution instrumentation."""

import pytest

from repro.common.config import DirCachingPolicy
from repro.common.stats import SystemStats
from repro.harness.runner import run_workload
from repro.harness.system_builder import build_system
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

from tests.conftest import drive, tiny_config, zerodev_config


class TestBucketing:
    def test_bucket_boundaries(self):
        stats = SystemStats(1)
        stats.record_latency(False, 1)     # bucket 0
        stats.record_latency(False, 3)     # bucket 1
        stats.record_latency(False, 4)     # bucket 2
        stats.record_latency(False, 300)   # bucket 8
        assert stats.read_latency_buckets[0] == 1
        assert stats.read_latency_buckets[1] == 1
        assert stats.read_latency_buckets[2] == 1
        assert stats.read_latency_buckets[8] == 1

    def test_reads_and_writes_separate(self):
        stats = SystemStats(1)
        stats.record_latency(True, 10)
        assert sum(stats.read_latency_buckets) == 0
        assert sum(stats.write_latency_buckets) == 1

    def test_percentile_empty(self):
        assert SystemStats(1).latency_percentile(0.99) == 0

    def test_percentile_ordering(self):
        stats = SystemStats(1)
        for _ in range(99):
            stats.record_latency(False, 3)
        stats.record_latency(False, 500)
        assert stats.latency_percentile(0.50) == 4
        assert stats.latency_percentile(0.999) == 512


class TestEndToEndDistribution:
    def run(self, config):
        system = build_system(config)
        workload = make_multithreaded(find_profile("streamcluster"),
                                      config, 1500, seed=4)
        run_workload(system, workload)
        return system.stats

    def test_distribution_populated(self):
        stats = self.run(tiny_config())
        assert sum(stats.read_latency_buckets) > 0
        assert sum(stats.write_latency_buckets) > 0
        total = sum(stats.read_latency_buckets) \
            + sum(stats.write_latency_buckets)
        assert total == stats.total_accesses

    def test_median_is_l1_like(self):
        stats = self.run(tiny_config())
        # Most accesses hit the L1 (3 cycles): median bucket <= 4.
        assert stats.latency_percentile(0.5) <= 8

    def test_fuseall_has_heavier_read_tail_than_fpss(self):
        fpss = self.run(zerodev_config())
        fuse = self.run(zerodev_config(
            dir_caching=DirCachingPolicy.FUSE_ALL))
        # FuseAll forwards shared reads 3-hop: its high-latency read
        # population is at least as large as FPSS's.
        def tail(stats):
            return sum(stats.read_latency_buckets[5:])
        assert tail(fuse) >= tail(fpss)
