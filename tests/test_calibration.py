"""Unit tests for the calibration probes."""

import pytest

from repro.caches.block import MESI
from repro.harness.calibration import (PAPER_SHARED_ENTRY_FRACTION,
                                       measure_shared_fraction,
                                       shared_entry_fraction)
from repro.common.config import DirectoryConfig
from repro.harness.system_builder import build_system
from repro.workloads import make_multithreaded
from repro.workloads.synthetic import AppProfile

from tests.conftest import drive, tiny_config


class TestSharedEntryFraction:
    def test_empty_directory(self):
        system = build_system(tiny_config(
            directory=DirectoryConfig(unbounded=True)))
        assert shared_entry_fraction(system) == 0.0

    def test_counts_s_entries(self):
        system = build_system(tiny_config(
            directory=DirectoryConfig(unbounded=True)))
        drive(system, [(0, "R", 1),              # E entry
                       (0, "I", 2),              # S entry (code)
                       (0, "R", 3), (1, "R", 3)])  # S entry (shared)
        assert shared_entry_fraction(system) == pytest.approx(2 / 3)

    def test_measure_private_app_is_low(self):
        config = tiny_config()
        profile = AppProfile("priv", shared_fraction=0.0,
                             code_fraction=0.0)
        workload = make_multithreaded(profile, config, 600, seed=2)
        assert measure_shared_fraction(config, workload) < 0.05

    def test_measure_shared_app_is_high(self):
        config = tiny_config()
        profile = AppProfile("shr", shared_fraction=0.6,
                             ws_shared_x_llc=0.5,
                             shared_write_fraction=0.0,
                             code_fraction=0.2)
        workload = make_multithreaded(profile, config, 600, seed=2)
        assert measure_shared_fraction(config, workload) > 0.15

    def test_paper_anchor_table(self):
        assert PAPER_SHARED_ENTRY_FRACTION["SPLASH2X"] == 0.19
        assert PAPER_SHARED_ENTRY_FRACTION["SPECOMP"] == 0.005
