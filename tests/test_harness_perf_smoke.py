"""Tier-1 shape check for the harness throughput benchmark.

Runs :func:`benchmarks.test_harness_perf.measure` at tiny scale into a
temporary trajectory file. Only structure and internal consistency are
asserted -- never absolute timings or a parallel-beats-serial ordering
(CI machines may have one CPU) -- so the check cannot flake.
"""

import json


def test_measure_entry_shape(tmp_path):
    from benchmarks.test_harness_perf import MAX_HISTORY, measure

    path = tmp_path / "BENCH_harness.json"
    entry = measure(accesses=120, jobs=2, path=path)
    assert entry["runs"] == 8
    assert entry["accesses_total"] == 8 * 8 * 120   # specs * cores * n
    assert entry["jobs"] == 2
    for field in ("serial_seconds", "parallel_seconds", "cached_seconds"):
        assert entry[field] >= 0
    assert entry["serial_accesses_per_second"] > 0

    history = json.loads(path.read_text())
    assert history[-1] == entry

    # Appending preserves the trajectory and respects the history cap.
    measure(accesses=120, jobs=1, path=path)
    history = json.loads(path.read_text())
    assert len(history) == 2
    assert len(history) <= MAX_HISTORY
    assert history[0] == entry
