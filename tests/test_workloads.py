"""Tests for trace primitives and the synthetic workload generators."""

import numpy as np
import pytest

from repro.common.addressing import BLOCK_SHIFT, block_of
from repro.workloads import (SUITES, AppProfile, Op, SharingPattern,
                             make_heterogeneous_mixes, make_multithreaded,
                             make_rate_workload, suite_profiles)
from repro.workloads.suites import find_profile
from repro.workloads.synthetic import generate, scatter_pages
from repro.workloads.trace import CoreTrace, TraceEvent, Workload

from tests.conftest import tiny_config


class TestTracePrimitives:
    def test_from_events_roundtrip(self):
        events = [TraceEvent(Op.READ, 64), TraceEvent(Op.WRITE, 128),
                  TraceEvent(Op.IFETCH, 192)]
        trace = CoreTrace.from_events(0, events)
        assert list(trace) == events
        assert trace.event(1) == events[1]
        assert len(trace) == 3

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            CoreTrace(0, np.zeros(2, np.int8), np.zeros(3, np.int64))

    def test_workload_aggregates(self):
        trace = CoreTrace.from_events(0, [TraceEvent(Op.READ, 0)])
        workload = Workload("w", [trace, trace])
        assert workload.n_cores == 2
        assert workload.total_accesses == 2


class TestScatterPages:
    def test_preserves_within_page_offsets(self):
        blocks = np.arange(64, dtype=np.int64)       # one 4 KB page
        scattered = scatter_pages(blocks, salt=7)
        assert len(np.unique(scattered >> 6)) == 1   # same frame
        assert sorted(scattered & 63) == list(range(64))

    def test_same_salt_same_mapping(self):
        blocks = np.arange(256, dtype=np.int64)
        assert np.array_equal(scatter_pages(blocks, 5),
                              scatter_pages(blocks, 5))

    def test_different_salts_differ(self):
        blocks = np.arange(256, dtype=np.int64)
        assert not np.array_equal(scatter_pages(blocks, 5),
                                  scatter_pages(blocks, 6))

    def test_scatters_across_sets(self):
        # Consecutive pages must not stay consecutive (the point of the
        # exercise: spreading working sets over directory sets).
        blocks = np.arange(0, 64 * 32, 64, dtype=np.int64)
        frames = scatter_pages(blocks, 1) >> 6
        assert len(np.unique(frames % 64)) > 8


class TestGenerate:
    def config(self):
        return tiny_config()

    def test_deterministic(self):
        profile = find_profile("freqmine")
        a = generate(profile, self.config(), 500, seed=3)
        b = generate(profile, self.config(), 500, seed=3)
        for trace_a, trace_b in zip(a, b):
            assert np.array_equal(trace_a.addresses, trace_b.addresses)
            assert np.array_equal(trace_a.ops, trace_b.ops)

    def test_seed_changes_traces(self):
        profile = find_profile("freqmine")
        a = generate(profile, self.config(), 500, seed=3)
        b = generate(profile, self.config(), 500, seed=4)
        assert not np.array_equal(a[0].addresses, b[0].addresses)

    def test_code_fraction_respected(self):
        profile = AppProfile("t", code_fraction=0.4)
        traces = generate(profile, self.config(), 4000, seed=0)
        fetches = (traces[0].ops == Op.IFETCH.value).mean()
        assert 0.3 < fetches < 0.5

    def test_zero_shared_fraction_keeps_data_private(self):
        profile = AppProfile("t", shared_fraction=0.0, code_fraction=0.0)
        traces = generate(profile, self.config(), 800, seed=1)
        seen = [set(np.unique(t.addresses >> BLOCK_SHIFT))
                for t in traces]
        for i in range(len(seen)):
            for j in range(i + 1, len(seen)):
                assert not seen[i] & seen[j]

    def test_multithreaded_shares_code_and_data(self):
        profile = AppProfile("t", shared_fraction=0.5, code_fraction=0.3,
                             ws_shared_x_llc=0.2)
        traces = generate(profile, self.config(), 2000, seed=1)
        seen = [set(np.unique(t.addresses)) for t in traces]
        assert seen[0] & seen[1]

    def test_migratory_pattern_produces_writes(self):
        profile = AppProfile("t", shared_fraction=0.6,
                             pattern=SharingPattern.MIGRATORY,
                             code_fraction=0.0)
        traces = generate(profile, self.config(), 2000, seed=1)
        writes = (traces[0].ops == Op.WRITE.value).mean()
        assert writes > 0.2

    def test_crc_low16_collision_still_distinct_streams(self):
        # Regression: the generator used to seed the per-core RNG with
        # only the low 16 bits of the name's crc32, so profiles whose
        # tags collide mod 2^16 drew identical streams.  "app192" and
        # "app3140" collide (0x37d6e92 vs 0x18996e92, both & 0xffff ==
        # 0x6e92) but must not generate the same addresses.
        import zlib
        a_tag, b_tag = (zlib.crc32(b"app192"), zlib.crc32(b"app3140"))
        assert a_tag != b_tag and (a_tag & 0xffff) == (b_tag & 0xffff)
        a = generate(AppProfile("app192"), self.config(), 500, seed=3)
        b = generate(AppProfile("app3140"), self.config(), 500, seed=3)
        # Page scattering is salted with the full name either way, so
        # addresses would differ even under the old bug; the op streams
        # come straight from the per-core RNG and are the discriminating
        # observable.
        for trace_a, trace_b in zip(a, b):
            assert not np.array_equal(trace_a.ops, trace_b.ops)
            assert not np.array_equal(trace_a.addresses,
                                      trace_b.addresses)


class TestMixBuilders:
    def test_rate_workload_shares_code_only(self):
        profile = find_profile("xalancbmk")
        workload = make_rate_workload(profile, tiny_config(), 1500,
                                      seed=2)
        assert workload.n_cores == 4
        code, data = [], []
        for trace in workload.traces:
            is_code = trace.ops == Op.IFETCH.value
            code.append(set(np.unique(trace.addresses[is_code])))
            data.append(set(np.unique(trace.addresses[~is_code])))
        assert code[0] & code[1]              # same binary
        assert not data[0] & data[1]          # disjoint heaps

    def test_heterogeneous_mixes_equal_representation(self):
        mixes = make_heterogeneous_mixes(tiny_config(), 9, 100, seed=0)
        assert len(mixes) == 9
        assert all(m.n_cores == 4 for m in mixes)
        assert mixes[0].name == "W1"

    def test_multithreaded_names(self):
        profile = find_profile("canneal")
        workload = make_multithreaded(profile, tiny_config(), 100)
        assert workload.name == "canneal"


class TestSuiteRegistry:
    def test_table2_suites_present(self):
        for suite in ("PARSEC", "SPLASH2X", "SPECOMP", "FFTW",
                      "CPU2017", "SERVER"):
            assert suite_profiles(suite)

    def test_parsec_has_paper_applications(self):
        names = {p.name for p in suite_profiles("PARSEC")}
        assert {"blackscholes", "canneal", "freqmine", "vips",
                "streamcluster"} <= names
        assert len(names) == 10

    def test_cpu2017_includes_figure21_apps(self):
        names = {p.name for p in suite_profiles("CPU2017")}
        assert {"xalancbmk", "mcf", "lbm", "gcc.ppO2"} <= names
        assert len(names) >= 30

    def test_server_suite(self):
        names = {p.name for p in suite_profiles("SERVER")}
        assert {"SPECjbb", "TPC-C", "TPC-E", "TPC-H"} <= names

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            suite_profiles("NOPE")

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            find_profile("nope")

    def test_profile_names_unique(self):
        names = [p.name for suite in SUITES.values() for p in suite]
        assert len(names) == len(set(names))
