"""Fidelity of the Table I / Table II encodings at full (paper) size."""

import pytest

from repro.common.config import (DirectoryConfig, table1_socket)
from repro.harness.system_builder import build_system
from repro.harness.runner import run_workload
from repro.workloads import make_multithreaded, suite_profiles
from repro.workloads.suites import find_profile


class TestTable1FullSize:
    def test_paper_socket_geometry(self):
        config = table1_socket()
        assert config.n_cores == 8
        assert config.l1i.size_bytes == 32 * 1024
        assert config.l1d.size_bytes == 32 * 1024
        assert config.l2.size_bytes == 256 * 1024
        assert config.llc.size_bytes == 8 * 1024 * 1024
        assert config.llc.ways == 16 and config.llc_banks == 8
        assert config.directory.ways == 8
        # 1x = aggregate private L2 blocks (Section I).
        assert config.directory_entries == 8 * 4096

    def test_paper_socket_builds_and_runs(self):
        """A short run on the *unscaled* socket (REPRO_SCALE=1 path)."""
        config = table1_socket()
        system = build_system(config)
        workload = make_multithreaded(find_profile("swaptions"), config,
                                      800, seed=1)
        result = run_workload(system, workload,
                              check_invariants_every=1600)
        assert result.stats.total_accesses == 8 * 800

    def test_dram_timing_parameters(self):
        config = table1_socket()
        assert config.dram.channels == 2          # two controllers
        assert config.dram.banks_per_channel == 8
        assert config.dram.row_bytes == 1024      # 1 KB row buffer


class TestTable2Coverage:
    def test_parsec_matches_table2(self):
        names = {p.name for p in suite_profiles("PARSEC")}
        assert names == {"blackscholes", "canneal", "dedup", "facesim",
                         "ferret", "fluidanimate", "freqmine",
                         "swaptions", "streamcluster", "vips"}

    def test_splash2x_matches_table2(self):
        names = {p.name for p in suite_profiles("SPLASH2X")}
        assert names == {"fft", "lu_cb", "radix", "lu_ncb", "ocean_cp",
                         "radiosity", "raytrace", "water_nsquared",
                         "water_spatial"}

    def test_specomp_matches_table2(self):
        names = {p.name for p in suite_profiles("SPECOMP")}
        assert names == {"312.swim", "314.mgrid", "316.applu",
                         "320.equake", "324.apsi", "330.art"}

    def test_server_matches_table2(self):
        names = {p.name for p in suite_profiles("SERVER")}
        assert names == {"SPECjbb", "SPECWeb-B", "SPECWeb-E",
                         "SPECWeb-S", "TPC-C", "TPC-E", "TPC-H"}

    def test_cpu2017_has_figure21_axis(self):
        names = {p.name for p in suite_profiles("CPU2017")}
        figure21 = {"blender", "bwaves.1", "bwaves.2", "bwaves.3",
                    "bwaves.4", "cactuBSSN", "cam4", "deepsjeng",
                    "exchange2", "fotonik3d", "gcc.pp", "gcc.ppO2",
                    "gcc.ref32", "gcc.ref32O5", "gcc.smaller",
                    "imagick", "lbm", "leela", "mcf", "nab", "namd",
                    "omnetpp", "parest", "perl.check", "perl.diff",
                    "perl.split", "povray", "roms", "wrf", "x264.pass1",
                    "x264.pass2", "x264.seek500", "xalancbmk", "xz.cld",
                    "xz.docs", "xz.combined"}
        assert figure21 <= names
