"""Memoized bounded-exhaustive model checking (``repro.verify.modelcheck``).

Covers the frontier engine and its harness:

* canonicalization -- symmetric interleavings collapse, latency-only
  state (stats) is excluded, soundness is preserved by checking every
  transition;
* clean exploration across representative matrix models, plus the
  ``explore_memoized`` bridge on the legacy explorer;
* counterexample prefixes that replay through ``run_trace`` and shrink
  through ``repro shrink`` exactly like fuzz divergences;
* the mutation gate -- every seeded bug caught by modelcheck at its
  documented depth, and at least one provably missed by the pinned
  fixed-budget fuzz baseline;
* the oracle's readback attribution and the multi-socket
  single-shared-shadow invariant (verify-layer bugfix regressions).
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import ConfigError
from repro.obs.bus import EventBus
from repro.obs.events import EventKind
from repro.verify import run_campaign, run_trace, shrink_trace
from repro.verify.checks import DivergenceError, shadow_of
from repro.verify.modelcheck import (MICRO_BLOCKS, ModelCheckReport,
                                     _explore_frontier, build_alphabet,
                                     canonical_key, explore_model,
                                     frontier_vs_replay, mutation_gate)
from repro.verify.models import model_by_name, model_matrix
from repro.verify.mutations import (MUTATIONS, arm_mutation,
                                    mutant_spec, reference_spec)
from repro.verify.tracegen import FuzzTrace
from repro.workloads.trace import Op


def spec_of(name="zerodev-fuse-private-spill-shared"):
    return model_by_name(name)


def issue_all(spec, system, sequence):
    from repro.common.addressing import BLOCK_SHIFT
    for trace_core, op, block in sequence:
        socket, core = spec.map_core(trace_core)
        if spec.n_sockets == 1:
            system.access(core, op, block << BLOCK_SHIFT)
        else:
            system.access(socket, core, op, block << BLOCK_SHIFT)


class TestCanonicalization:
    def test_same_accesses_same_key(self):
        spec = spec_of()
        seq = [(0, Op.WRITE, 0), (1, Op.READ, 0), (0, Op.READ, 8)]
        keys = []
        for _ in range(2):
            system = spec.build()
            issue_all(spec, system, seq)
            keys.append(canonical_key(spec, system))
        assert keys[0] == keys[1]

    def test_stats_are_excluded(self):
        # Identical protocol state, divergent latency bookkeeping: the
        # canonical key must not see the difference -- that collapse is
        # where the frontier's state-space reduction comes from.
        spec = spec_of()
        system = spec.build()
        issue_all(spec, system, [(0, Op.WRITE, 0)])
        before = canonical_key(spec, system)
        system.stats.dev_invalidations += 7
        assert canonical_key(spec, system) == before

    def test_order_sensitive_where_lru_reads_order(self):
        # Touch order decides the LRU victim, so two L2 fill orders of
        # the same two blocks are *different* protocol states.
        spec = spec_of()
        one, two = spec.build(), spec.build()
        issue_all(spec, one, [(0, Op.READ, 0), (0, Op.READ, 8)])
        issue_all(spec, two, [(0, Op.READ, 8), (0, Op.READ, 0)])
        assert canonical_key(spec, one) != canonical_key(spec, two)

    def test_multisocket_key_covers_socket_entries(self):
        spec = spec_of("zerodev-2socket-sol1")
        local, remote = spec.build(), spec.build()
        issue_all(spec, local, [(0, Op.WRITE, 0)])
        issue_all(spec, remote, [(1, Op.WRITE, 0)])
        assert canonical_key(spec, local) != canonical_key(spec, remote)


class TestFrontier:
    @pytest.mark.parametrize("name", [
        "baseline-1x", "zerodev-fuse-private-spill-shared",
        "zerodev-fuse-private-spill-shared-splru",
    ])
    def test_clean_to_depth_three(self, name):
        report = explore_model(spec_of(name), 3)
        assert report.ok
        assert report.depth_reached == 3
        assert not report.capped
        # Dedup is the whole point: well under one unique state per
        # transition, and the per-level ledger adds up.
        assert report.dedup_hits > 0
        assert report.unique_states == 1 + sum(report.level_unique)
        assert report.transitions == \
            report.unique_states - 1 + report.dedup_hits

    def test_two_socket_clean_shallow(self):
        report = explore_model(spec_of("zerodev-2socket-sol1"), 2)
        assert report.ok and report.depth_reached == 2

    def test_max_states_caps_cleanly(self):
        report = explore_model(spec_of(), 4, max_states=50)
        assert report.ok and report.capped
        assert report.unique_states <= 50

    def test_budget_caps_cleanly(self):
        report = explore_model(spec_of(), 6, budget_s=0.2)
        assert report.ok and report.capped

    def test_alphabet_override(self):
        symbols = [(0, Op.WRITE, 0), (1, Op.READ, 0)]
        report = explore_model(spec_of(), 2, symbols=symbols)
        assert report.ok and report.alphabet_size == 2

    def test_frontier_events_emitted(self):
        class Sink:
            def __init__(self):
                self.events = []

            def handle(self, event):
                self.events.append(event)

        bus, sink = EventBus(), Sink()
        bus.subscribe(sink)
        explore_model(spec_of(), 2, bus=bus)
        levels = [e for e in sink.events
                  if e.kind is EventKind.MC_FRONTIER]
        assert [e.step for e in levels] == [1, 2]
        assert all(len(e.cause.split("/")) == 3 for e in levels)

    def test_max_states_mid_level_advances_depth(self):
        # Regression: the cap used to return without advancing
        # depth_reached past the last *complete* level, even though the
        # capped level's transitions were checked and its fresh states
        # counted.  Every exit must leave the ledger consistent.
        report = explore_model(spec_of(), 4, max_states=50)
        assert report.ok and report.capped
        assert report.unique_states == 50  # the cap is exact
        assert report.depth_reached == len(report.level_unique)
        assert report.level_unique[-1] > 0  # the partial level counts
        assert report.unique_states == 1 + sum(report.level_unique)
        assert report.transitions == \
            report.unique_states - 1 + report.dedup_hits

    def test_budget_mid_level_keeps_partial_fresh(self, monkeypatch):
        # Regression: budget expiry used to discard the in-progress
        # level's fresh count.  A fake clock (+0.1s per invariant
        # check) expires the deadline deterministically after the first
        # node of level 2: the partial level must appear in the ledger.
        import repro.verify.modelcheck as mc

        class FakeTime:
            now = 0.0

            @classmethod
            def perf_counter(cls):
                return cls.now

        monkeypatch.setattr(mc, "time", FakeTime)
        alphabet = [1, 2, 3]

        def issue(system, symbol):
            system.append(symbol)

        def check(system):
            FakeTime.now += 0.1

        report = ModelCheckReport("toy", 3, len(alphabet))
        # Root check: t=0.1.  Level 1 (3 checks): t=0.4.  Level 2 node
        # 1 (3 checks): t=0.7 > deadline -> timed out before node 2.
        _explore_frontier(
            report, list, issue, check,
            lambda s: repr(s).encode(), lambda s: None,
            alphabet, 3, 250_000, budget_s=0.65)
        assert report.ok and report.capped
        assert report.level_unique == (3, 3)
        assert report.depth_reached == 2
        assert report.unique_states == 1 + sum(report.level_unique)

    def test_budget_before_any_transition_adds_no_ledger_entry(
            self, monkeypatch):
        # The complement: expiry *before* any level-2 transition is
        # checked must not invent an empty ledger entry.
        import repro.verify.modelcheck as mc

        class FakeTime:
            now = 0.0

            @classmethod
            def perf_counter(cls):
                return cls.now

        monkeypatch.setattr(mc, "time", FakeTime)

        def check(system):
            FakeTime.now += 0.1

        report = ModelCheckReport("toy", 3, 2)
        _explore_frontier(
            report, list, lambda s, a: s.append(a), check,
            lambda s: repr(s).encode(), lambda s: None,
            [1, 2], 3, 250_000, budget_s=0.25)
        # Root t=0.1, level 1 completes at t=0.3 (one node, so its
        # mid-node expiry is only seen at the next boundary); level 2's
        # pre-level deadline check fires with 0 transitions processed.
        assert report.ok and report.capped
        assert report.level_unique == (2,)
        assert report.depth_reached == 1
        assert report.unique_states == 1 + sum(report.level_unique)

    def test_root_counterexample_accounting(self):
        # Regression: a root-level check failure used to return with
        # level_unique unset and unique_states == 0 -- the root was
        # explored, so it must be counted.
        def check(system):
            raise DivergenceError("root is already broken")

        report = ModelCheckReport("toy", 3, 2)
        _explore_frontier(
            report, list, lambda s, a: s.append(a), check,
            lambda s: repr(s).encode(), lambda s: None,
            [1, 2], 3, 250_000, None)
        assert not report.ok
        assert report.counterexample.sequence == ()
        assert report.unique_states == 1
        assert report.level_unique == ()
        assert report.depth_reached == 0

    def test_mid_level_counterexample_accounting(self):
        mutation = MUTATIONS["skip-corrupt-restore"]
        spec = reference_spec(mutation.reference_model)
        report = explore_model(spec, mutation.catch_depth,
                               blocks=mutation.blocks,
                               mutation=mutation.name)
        assert not report.ok
        assert report.depth_reached == len(report.level_unique)
        assert report.unique_states == 1 + sum(report.level_unique)

    def test_capped_frontier_event_carries_status(self):
        # Regression: capped exits used to emit no MC_FRONTIER at all,
        # so a capped trace looked like a short clean run.  The final
        # event now carries a fourth "capped" part.
        class Sink:
            def __init__(self):
                self.events = []

            def handle(self, event):
                self.events.append(event)

        bus, sink = EventBus(), Sink()
        bus.subscribe(sink)
        explore_model(spec_of(), 4, max_states=50, bus=bus)
        levels = [e for e in sink.events
                  if e.kind is EventKind.MC_FRONTIER]
        assert levels, "capped run emitted no MC_FRONTIER events"
        assert levels[-1].cause.split("/")[-1] == "capped"
        assert len(levels[-1].cause.split("/")) == 4

    def test_merge_events_report_partition_shape(self):
        class Sink:
            def __init__(self):
                self.events = []

            def handle(self, event):
                self.events.append(event)

        bus, sink = EventBus(), Sink()
        bus.subscribe(sink)
        explore_model(spec_of(), 2, bus=bus, jobs=2)
        merges = [e for e in sink.events
                  if e.kind is EventKind.MC_MERGE]
        assert [e.step for e in merges] == [1, 2]
        for event in merges:
            partitions, frontier, transitions = \
                (int(part) for part in event.cause.split("/"))
            assert event.core == partitions <= 2
            assert transitions <= frontier * len(build_alphabet())

    def test_explore_memoized_bridges_legacy_explorer(self):
        from repro.coherence.exhaustive import ExhaustiveExplorer
        from repro.verify.models import micro_config
        explorer = ExhaustiveExplorer(micro_config, cores=(0, 1),
                                      blocks=MICRO_BLOCKS)
        legacy = explorer.explore(depth=2)
        memoized = explorer.explore_memoized(depth=3)
        assert legacy.ok and memoized.ok
        assert memoized.depth_reached == 3
        assert memoized.alphabet_size == len(build_alphabet())


class TestCounterexamples:
    def trigger(self):
        mutation = MUTATIONS["skip-corrupt-restore"]
        spec = reference_spec(mutation.reference_model)
        report = explore_model(spec, mutation.catch_depth,
                               blocks=mutation.blocks,
                               mutation=mutation.name)
        assert not report.ok
        return spec, mutation, report

    def test_prefix_replays_through_run_trace(self):
        spec, mutation, report = self.trigger()
        trace = report.counterexample_trace()
        assert trace.pattern == "modelcheck"
        # The bug needs its mutation: mutant fails, clean model passes.
        assert not run_trace(mutant_spec(spec, mutation.name), trace).ok
        assert run_trace(spec, trace).ok

    def test_prefix_shrinks_like_a_fuzz_divergence(self):
        spec, mutation, report = self.trigger()
        mutant = mutant_spec(spec, mutation.name)
        trace = report.counterexample_trace()
        outcome = run_trace(mutant, trace)
        minimized, final = shrink_trace(mutant, trace,
                                        reference=outcome)
        assert not final.ok
        assert len(minimized) <= len(trace)

    def test_npz_round_trip(self, tmp_path):
        _spec, _mutation, report = self.trigger()
        trace = report.counterexample_trace()
        path = tmp_path / "cex.npz"
        trace.save(path)
        loaded = FuzzTrace.load(path)
        assert loaded.steps == trace.steps

    def test_cex_event_emitted(self):
        class Sink:
            def __init__(self):
                self.events = []

            def handle(self, event):
                self.events.append(event)

        mutation = MUTATIONS["skip-corrupt-restore"]
        spec = reference_spec(mutation.reference_model)
        bus, sink = EventBus(), Sink()
        bus.subscribe(sink)
        explore_model(spec, mutation.catch_depth,
                      blocks=mutation.blocks, mutation=mutation.name,
                      bus=bus)
        assert any(e.kind is EventKind.MC_CEX for e in sink.events)


class TestMutations:
    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_caught_at_documented_depth(self, name):
        mutation = MUTATIONS[name]
        spec = reference_spec(mutation.reference_model)
        report = explore_model(spec, mutation.catch_depth,
                               blocks=mutation.blocks,
                               symbols=mutation.symbols or None,
                               mutation=name)
        assert not report.ok, f"{name} not caught at its catch_depth"
        assert len(report.counterexample.sequence) <= mutation.catch_depth

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_applies_to_its_reference_model(self, name):
        mutation = MUTATIONS[name]
        assert mutation.applies_to(reference_spec(
            mutation.reference_model))

    def test_armed_flags_survive_snapshots(self):
        spec = spec_of()
        system = spec.build()
        arm_mutation(system, "skip-corrupt-restore")
        clone = pickle.loads(pickle.dumps(system))
        assert "skip-corrupt-restore" in clone.mutations

    def test_unknown_mutation_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown mutation"):
            arm_mutation(spec_of().build(), "no-such-bug")
        with pytest.raises(ConfigError, match="does not apply"):
            mutant_spec(spec_of(), "skip-denf-nack")

    def test_fuzz_baseline_misses_denf_nack(self):
        # The pinned gap: the pinned-seed, pinned-budget, short-trace
        # fuzz campaign stays green on the skip-denf-nack mutant that
        # modelcheck refutes at depth 7.  This is the reason the
        # frontier exists; if fuzz starts catching it, the gate (and
        # this pin) should move to a harder bug, not be deleted.
        spec = reference_spec("zerodev-2socket-sol1")
        mutant = mutant_spec(spec, "skip-denf-nack")
        report = run_campaign(seed=7, budget=4, steps_per_trace=12,
                              models=[model_matrix()[0], mutant],
                              shrink=False)
        assert report.ok

    def test_gate_runs_end_to_end_without_fuzz(self):
        verdicts = mutation_gate(names=["skip-corrupt-restore"],
                                 run_fuzz=False)
        assert len(verdicts) == 1
        assert verdicts[0].caught_by_modelcheck
        assert "caught at depth" in verdicts[0].summary()


class TestParallelDeterminism:
    """jobs in {1, 2, 4} must produce byte-identical reports: counters,
    the per-level ledger, and the (BFS-first) counterexample path."""

    def identity_set(self, **kwargs):
        return {explore_model(jobs=jobs, **kwargs).identity_bytes()
                for jobs in (1, 2, 4)}

    def test_clean_model_reports_identical(self):
        assert len(self.identity_set(spec=spec_of(), depth=3)) == 1

    def test_denf_nack_counterexample_identical(self):
        mutation = MUTATIONS["skip-denf-nack"]
        spec = reference_spec(mutation.reference_model)
        assert len(self.identity_set(
            spec=spec, depth=mutation.catch_depth,
            blocks=mutation.blocks, symbols=mutation.symbols or None,
            mutation=mutation.name)) == 1

    def test_capped_run_reports_identical(self):
        # The hard case: the max_states cap must fire at the same
        # transition regardless of how the frontier was partitioned.
        assert len(self.identity_set(spec=spec_of(), depth=4,
                                     max_states=50)) == 1

    def test_identity_bytes_excludes_wallclock(self):
        report = explore_model(spec_of(), 2)
        before = report.identity_bytes()
        report.elapsed_s += 123.0
        report.jobs = 8
        assert report.identity_bytes() == before


class TestStatsComparison:
    def test_replay_fault_is_reported_not_raised(self):
        # Regression: a faulting model used to escape the stats gate as
        # an unhandled exception; it must surface as a verdict.
        mutation = MUTATIONS["skip-corrupt-restore"]
        spec = reference_spec(mutation.reference_model)
        comparison = frontier_vs_replay(
            mutant_spec(spec, mutation.name), 3,
            blocks=mutation.blocks)
        assert not comparison.frontier.ok
        assert comparison.replay_error
        assert "replay check failure" in comparison.summary()

    def test_frontier_beats_replay_at_equal_wallclock(self):
        # The full >=10x claim needs depth 8 (~3 minutes) and lives in
        # ``repro modelcheck --stats``; this is the cheap monotone
        # version of the same measurement.
        comparison = frontier_vs_replay(spec_of(), 4)
        assert comparison.frontier.ok
        assert comparison.replay_unique >= 1
        assert comparison.ratio >= 1.0
        assert "unique canonical states" in comparison.summary()


class TestVerifyLayerRegressions:
    def test_readback_failure_names_block_and_index(self, monkeypatch):
        # Regression: a readback-phase failure used to report the wrong
        # failing step; it must pin failing_step at len(trace) and name
        # the diverging block through the readback_* fields.
        import repro.verify.oracle as oracle
        spec = spec_of()
        trace = FuzzTrace("readback-regression", 2,
                          ((0, Op.WRITE.value, 0), (1, Op.READ.value, 8)))
        real_check = oracle.check_step
        state = {"armed": False}

        def failing_check(spec_, system):
            real_check(spec_, system)
            if state["armed"]:
                raise DivergenceError("synthetic readback divergence")

        monkeypatch.setattr(oracle, "check_step", failing_check)
        clean = oracle.run_trace(spec, trace)
        assert clean.ok
        state["armed"] = True
        outcome = oracle.run_trace(spec, trace)
        assert not outcome.ok
        # The first armed check fires at trace step 0, not readback --
        # so exercise the readback path with a check that only fails
        # once the trace and final phases are over.
        state["armed"] = False
        calls = {"n": 0}

        def readback_only(spec_, system):
            real_check(spec_, system)
            calls["n"] += 1
            if calls["n"] > len(trace) + 1:
                raise DivergenceError("synthetic readback divergence")

        monkeypatch.setattr(oracle, "check_step", readback_only)
        outcome = oracle.run_trace(spec, trace)
        assert not outcome.ok
        assert outcome.phase == "readback"
        assert outcome.failing_step == len(trace)
        assert outcome.readback_index == 0
        assert outcome.readback_block == 0
        assert "readback 0" in str(outcome)

    def test_two_socket_shadow_is_shared(self):
        # Regression for the socket-0-only digest: the multi-socket
        # memory digest is only honest because every socket aliases ONE
        # shadow; shadow_of pins that as an invariant.
        spec = spec_of("zerodev-2socket-sol1")
        system = spec.build()
        assert shadow_of(spec, system) is system.shadow
        for socket in system.sockets:
            assert socket.shadow is system.shadow

    def test_private_shadow_is_loud(self):
        from repro.coherence.shadow import ShadowMemory
        spec = spec_of("zerodev-2socket-sol1")
        system = spec.build()
        system.sockets[1].shadow = ShadowMemory()
        with pytest.raises(DivergenceError, match="private shadow"):
            shadow_of(spec, system)

    def test_two_socket_solutions_agree_on_digest(self):
        # Digest equivalence across the two paper solutions on one
        # conflict-heavy sequence -- the cross-model property the
        # shared shadow makes trustworthy.
        seq = [(0, Op.WRITE, 0), (1, Op.WRITE, 8), (0, Op.READ, 8),
               (1, Op.READ, 0), (0, Op.WRITE, 16), (1, Op.READ, 16)]
        steps = tuple((core, op.value, block) for core, op, block in seq)
        trace = FuzzTrace("digest-equivalence", 2, steps)
        digests = {}
        for name in ("baseline-2socket", "zerodev-2socket-sol1",
                     "zerodev-2socket-sol2"):
            outcome = run_trace(model_by_name(name), trace)
            assert outcome.ok, f"{name}: {outcome}"
            digests[name] = outcome.memory_digest
        assert len(set(digests.values())) == 1, digests
