"""Harness throughput benchmark: serial vs parallel vs cached.

Runs a fixed fig17-style batch (baseline + three ZeroDEV policies over
two workloads) three ways -- serially, through the multiprocessing pool,
and again from the warm result cache -- asserting the stats are
bit-identical, and appends the timings to ``results/BENCH_harness.json``.
That file is a *trajectory*: one entry per recorded run, so harness
performance over the repo's history stays inspectable. Parallel is not
asserted to be faster (CI may have a single CPU); the cached pass is
asserted to be near-instant since it performs no simulation.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from time import perf_counter

from repro.common.config import (CacheGeometry, DirCachingPolicy,
                                 DirectoryConfig, LLCReplacement,
                                 Protocol, SystemConfig)
from repro.common.ioutil import atomic_write_text
from repro.harness.parallel import run_many
from repro.harness.result_cache import ResultCache
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile

BENCH_PATH = Path(__file__).resolve().parent.parent / "results" / \
    "BENCH_harness.json"
MAX_HISTORY = 50


def _bench_config(**overrides) -> SystemConfig:
    base = dict(
        n_cores=8,
        l1i=CacheGeometry(2048, 2), l1d=CacheGeometry(2048, 2),
        l2=CacheGeometry(8192, 4), llc=CacheGeometry(65536, 8),
        llc_banks=4,
    )
    base.update(overrides)
    return SystemConfig(**base)


def _zerodev(policy: DirCachingPolicy) -> SystemConfig:
    return _bench_config(
        protocol=Protocol.ZERODEV, directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU, dir_caching=policy)


def _specs(accesses: int):
    base = _bench_config()
    configs = [base] + [_zerodev(policy) for policy in
                        (DirCachingPolicy.SPILL_ALL, DirCachingPolicy.FPSS,
                         DirCachingPolicy.FUSE_ALL)]
    workloads = [make_multithreaded(find_profile(name), base, accesses,
                                    seed=7)
                 for name in ("blackscholes", "canneal")]
    return [(config, workload) for config in configs
            for workload in workloads]


def _stats(results):
    return [result.stats.as_dict() for result in results]


def measure(accesses: int = 4000, jobs: int = 4, path=None) -> dict:
    """Time the three execution paths over one batch; returns the entry
    appended to ``path`` (None: don't write)."""
    specs = _specs(accesses)
    total_accesses = sum(w.total_accesses for _, w in specs)

    started = perf_counter()
    serial = run_many(specs, jobs=1, cache=None)
    serial_seconds = perf_counter() - started

    started = perf_counter()
    parallel = run_many(specs, jobs=jobs, cache=None)
    parallel_seconds = perf_counter() - started

    cache = ResultCache()
    run_many(specs, jobs=1, cache=cache)
    started = perf_counter()
    cached = run_many(specs, jobs=1, cache=cache)
    cached_seconds = perf_counter() - started

    assert _stats(parallel) == _stats(serial), \
        "parallel run diverged from serial"
    assert _stats(cached) == _stats(serial), \
        "cached run diverged from fresh"
    assert all(result.cached for result in cached)
    assert cached_seconds < serial_seconds

    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "runs": len(specs),
        "accesses_total": total_accesses,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "serial_accesses_per_second": int(total_accesses
                                          / serial_seconds),
    }
    if path is not None:
        path = Path(path)
        history = []
        if path.is_file():
            try:
                history = json.loads(path.read_text())
            except json.JSONDecodeError:
                history = []
        history.append(entry)
        path.parent.mkdir(exist_ok=True)
        atomic_write_text(path, json.dumps(history[-MAX_HISTORY:],
                                           indent=1) + "\n")
    return entry


def test_harness_throughput():
    entry = measure(path=BENCH_PATH)
    print(f"\nharness: {entry['runs']} runs, "
          f"{entry['accesses_total']:,} accesses | "
          f"serial {entry['serial_seconds']:.2f}s "
          f"({entry['serial_accesses_per_second']:,}/s), "
          f"parallel(j{entry['jobs']}) {entry['parallel_seconds']:.2f}s, "
          f"cached {entry['cached_seconds']:.3f}s")
