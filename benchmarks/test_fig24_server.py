"""Figure 24: throughput server workloads on a large socket.

The paper uses a 128-core socket with a 32 MB LLC; we default to a
32-core socket with proportional capacities for Python runtime
(``REPRO_FULL=1`` runs the full 128 cores)."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig24_server(benchmark):
    table, results = run_experiment(benchmark, experiments.fig24_server,
                                    "fig24")
    for label, per_app in results.items():
        values = list(per_app.values())
        # Paper: within 1% average; maximum slowdown 1.4% (SPECWeb-S).
        assert geomean(values) > 0.96, label
        assert min(values) > 0.94, label
