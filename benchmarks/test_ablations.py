"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they quantify the claims the paper
makes in prose -- the replacement-disabled sparse directory is the better
ZeroDEV variant (Section III-C4), the E-state eviction-notice bits are a
negligible traffic overhead (Section III-C2), and the two socket-level
directory backing solutions (Section III-D5) trade DRAM overhead for
lookup cost without changing coherence behaviour.
"""

from repro.common.config import DirectoryConfig
from repro.harness import experiments
from repro.harness.reporting import Table, geomean
from repro.harness.runner import run_multisocket_workload, run_workload
from repro.harness.system_builder import build_system
from repro.common.messages import MessageType, message_bytes
from repro.multisocket import MultiSocketSystem
from repro.workloads.synthetic import generate
from repro.workloads.trace import Workload

from benchmarks.conftest import run_experiment


def ablation_replacement_disabled():
    """Section III-C4: replacement-disabled vs replacement-enabled
    sparse directory under ZeroDEV at 1/8x size."""
    base_config = experiments.default_config()
    disabled = experiments.zerodev_config(base_config, ratio=0.125)
    enabled = disabled.with_(directory=DirectoryConfig(
        ratio=0.125, zerodev_replacement_enabled=True))
    table = Table("Ablation: replacement-disabled vs enabled sparse "
                  "directory (ZeroDEV 1/8x)")
    speedups, disturbances = [], {"disabled": 0, "enabled": 0}
    for suite in ("PARSEC", "SPLASH2X"):
        for profile in experiments.apps_of(suite):
            workload = experiments.workload_for(profile, suite,
                                                base_config)
            run_disabled = experiments.run_config(disabled, workload)
            run_enabled = experiments.run_config(enabled, workload)
            speedups.append(run_enabled.cycles / run_disabled.cycles)
            disturbances["disabled"] += run_disabled.stats.dir_evictions
            disturbances["enabled"] += run_enabled.stats.dir_evictions
    table.add("disabled speedup over enabled", geomean(speedups),
              note="paper: disabling is strictly better (and simpler)")
    table.add("directory evictions (disabled)",
              disturbances["disabled"], paper=0.0)
    table.add("directory evictions (enabled)", disturbances["enabled"])
    return table, {"speedups": speedups, "disturbances": disturbances}


def ablation_notice_bits_overhead():
    """Section III-C2: the 3+log2(N) extra bits on E-state eviction
    notices introduce negligible interconnect traffic."""
    base_config = experiments.default_config()
    zdev = experiments.zerodev_config(base_config, ratio=None)
    table = Table("Ablation: E-state notice reconstruction-bit overhead")
    fractions = []
    for suite in ("PARSEC", "CPU2017"):
        for profile in experiments.apps_of(suite):
            workload = experiments.workload_for(profile, suite,
                                                base_config)
            run = experiments.run_config(zdev, workload)
            notices = run.stats.messages.get(
                MessageType.EVICT_CLEAN_BITS, 0)
            extra_bytes = notices * (
                message_bytes(MessageType.EVICT_CLEAN_BITS)
                - message_bytes(MessageType.EVICT_CLEAN))
            fractions.append(extra_bytes
                             / max(run.stats.traffic_bytes, 1))
    table.add("extra traffic fraction", max(fractions), paper=0.0,
              note="paper: negligible")
    return table, {"fractions": fractions}


def ablation_socket_directory_solutions():
    """Section III-D5: solution 1 (memory-backed directory) vs solution 2
    (DirEvict bit + in-block partition) on a 2-socket system."""
    base_config = experiments.default_config()
    profile = experiments.apps_of("SPLASH2X")[0]
    n = max(experiments.accesses_per_core() // 2, 1000)
    traces = generate(profile, base_config, n, seed=31,
                      cores=list(range(2 * base_config.n_cores)))
    workload = Workload(profile.name, traces)
    table = Table("Ablation: socket-level directory backing solutions")
    cycles = {}
    for solution in (1, 2):
        system = MultiSocketSystem(base_config, n_sockets=2,
                                   dir_cache_blocks=256,
                                   dir_solution=solution)
        run_multisocket_workload(system, workload)
        cycles[solution] = system.total_cycles()
        table.add(f"solution {solution} cycles", cycles[solution])
    table.add("solution 2 / solution 1", cycles[2] / cycles[1],
              note="paper: sol. 2 trades constant DRAM overhead for "
                   "bit-cache lookups; both DEV-free")
    return table, {"cycles": cycles}


def test_ablation_replacement_disabled(benchmark):
    table, results = run_experiment(benchmark,
                                    ablation_replacement_disabled,
                                    "ablation_replacement")
    assert results["disturbances"]["disabled"] == 0
    # Disabled performs at least as well as enabled (within noise).
    assert geomean(results["speedups"]) < 1.03


def test_ablation_notice_bits(benchmark):
    table, results = run_experiment(benchmark,
                                    ablation_notice_bits_overhead,
                                    "ablation_notice_bits")
    assert max(results["fractions"]) < 0.01     # truly negligible


def test_ablation_socket_dir_solutions(benchmark):
    table, results = run_experiment(
        benchmark, ablation_socket_directory_solutions,
        "ablation_socket_dir")
    ratio = results["cycles"][2] / results["cycles"][1]
    # Solution 2 is never slower: its 8 KB bit cache covers far more
    # blocks than a small entry cache, so most misses avoid the memory
    # read that solution 1 always pays.
    assert 0.7 < ratio < 1.05
