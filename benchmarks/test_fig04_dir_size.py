"""Figure 4: baseline performance declines gradually as the sparse
directory shrinks -- the performance-criticality of DEVs."""

from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig04_directory_sizes(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig4_directory_sizes,
                                    "fig04")
    for suite, (half, eighth, thirty_second) in results.items():
        # Shape: monotonic (within noise) decline with directory size,
        # and a clearly visible hit at 1/32x.
        assert half <= 1.03
        assert thirty_second <= eighth + 0.02, suite
        assert eighth <= half + 0.02, suite
        assert thirty_second < 0.97, (
            f"{suite}: a 1/32x directory must hurt, got "
            f"{thirty_second}")
