"""Figure 12: the design space of directory-entry caching, quantified.

The paper's Figure 12 is qualitative: SpillAll has the maximum LLC space
overhead and pays an extra data-array latency on shared reads; FPSS has
some space overhead and no critical-path cost; FuseAll has minimal space
overhead but lengthens shared reads by one hop. This bench measures all
three axes directly.
"""

from repro.common.config import DirCachingPolicy
from repro.harness import experiments
from repro.harness.reporting import Table

from benchmarks.conftest import run_experiment


def fig12_design_space():
    base_config = experiments.default_config()
    policies = {
        "SpillAll": DirCachingPolicy.SPILL_ALL,
        "FPSS": DirCachingPolicy.FPSS,
        "FuseAll": DirCachingPolicy.FUSE_ALL,
    }
    table = Table("Figure 12: LLC space overhead vs read critical path")
    measured = {}
    for label, policy in policies.items():
        config = experiments.zerodev_config(base_config, policy=policy)
        spilled = fused = penalties = forwards = runs = 0
        for suite in ("PARSEC", "SPLASH2X"):
            for profile in experiments.apps_of(suite):
                workload = experiments.workload_for(profile, suite,
                                                    base_config)
                run = experiments.run_config(config, workload)
                spilled += run.stats.entries_spilled
                fused += run.stats.entries_fused
                penalties += run.stats.extra_data_array_reads
                forwards += run.stats.fused_read_forwards
                runs += 1
        measured[label] = {
            "spill_frames": spilled / runs,
            "fused": fused / runs,
            "extra_array_reads": penalties / runs,
            "extra_hop_reads": forwards / runs,
        }
        table.add(f"{label} spill frames/run", spilled / runs,
                  note="LLC space overhead axis")
        table.add(f"{label} extra array reads/run", penalties / runs,
                  note="SpillAll critical-path axis")
        table.add(f"{label} 3-hop shared reads/run", forwards / runs,
                  note="FuseAll critical-path axis")
    return table, measured


def test_fig12_design_space(benchmark):
    table, measured = run_experiment(benchmark, fig12_design_space,
                                     "fig12")
    # Space overhead: SpillAll > FPSS > FuseAll (Figure 12's x-axis).
    assert measured["SpillAll"]["spill_frames"] \
        >= measured["FPSS"]["spill_frames"] \
        >= measured["FuseAll"]["spill_frames"]
    # Critical-path: only SpillAll pays data-array reads; only FuseAll
    # pays extra hops on shared reads.
    assert measured["SpillAll"]["extra_array_reads"] > 0
    assert measured["FPSS"]["extra_array_reads"] == 0
    assert measured["FPSS"]["extra_hop_reads"] == 0
    assert measured["FuseAll"]["extra_hop_reads"] > 0
