"""Contender study: DLS and hybrid update/invalidate versus ZeroDEV.

Shape: each contender fixes the symptom it targets -- DLS has zero DEVs
(no directory to evict from) and the hybrid never upgrade-invalidates a
shared write -- so each beats the starved 1/32x sparse baseline
somewhere.  Neither matches ZeroDEV: DLS pays inclusion victims on every
LLC conflict eviction, and the hybrid pays a data fan-out per shared
write while its directory still takes DEVs when undersized."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig_contenders(benchmark):
    table, results = run_experiment(
        benchmark, experiments.fig_contenders, "fig_contenders")

    def per_app(label):
        return {f"{suite}/{app}": v
                for suite, apps in results[label].items()
                for app, v in apps.items()}

    def overall(label):
        return geomean(list(per_app(label).values()))

    agg = results["_aggregates"]
    # DLS removes the directory entirely: zero DEVs by construction,
    # and its loss mechanism (inclusion victims) actually engages --
    # mildly at the default LLC, heavily under LLC pressure.
    assert agg["DLS"]["dev_invalidations"] == 0
    assert agg["DLS"]["inclusion_invalidations"] > 0
    assert agg["DLS-1/4LLC"]["inclusion_invalidations"] > \
        agg["DLS"]["inclusion_invalidations"]
    # The hybrid converts S-state write hits into update pushes.
    assert agg["Hybrid-1x"]["update_pushes"] > 0
    assert agg["Hybrid-1x"]["updates_sent"] >= \
        agg["Hybrid-1x"]["update_pushes"]

    # Each contender wins somewhere against the starved sparse baseline:
    # that is the claim their papers make, and it must survive here.
    base = per_app("Base-1/32x")
    for label in ("DLS", "Hybrid-1x"):
        contender = per_app(label)
        wins = [app for app, v in contender.items() if v > base[app]]
        assert wins, f"{label} never beats Base-1/32x"

    # ...and each loses to ZeroDEV where its own cost mechanism is
    # exposed.  DLS trades the directory for inclusion: under LLC
    # pressure its forced invalidations make it fall behind ZeroDEV at
    # the same capacity.  The hybrid still *owns* a directory: starve
    # it and the DEV storms return, while ZeroDEV needs no directory
    # at all.
    assert overall("DLS-1/4LLC") < overall("ZDev-1/4LLC")
    zdev = overall("ZDev-NoDir")
    assert overall("Hybrid-1/32x") < zdev
    assert zdev > 0.95
