"""Figures 5 and 6: how much LLC space would spilled directory entries
need, and what does taking LLC ways away cost?"""

from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig05_llc_occupancy(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig5_llc_occupancy,
                                    "fig05")
    # Paper: maximum occupancy ~12% of LLC blocks, average at most 10%.
    for suite, maxima in results.items():
        assert max(maxima) < 30.0, f"{suite} occupancy blew up"
    overall_max = max(max(m) for m in results.values())
    assert overall_max <= 26.0   # 25% is the 1x-directory-in-LLC bound


def test_fig06_llc_ways(benchmark):
    table, results = run_experiment(benchmark, experiments.fig6_llc_ways,
                                    "fig06")
    for suite, per_ways in results.items():
        avg15 = per_ways[15][0]
        avg12 = per_ways[12][0]
        # Shape: losing ways costs performance, monotonically.
        assert avg12 <= avg15 + 0.02, suite
        assert avg12 < 1.02
