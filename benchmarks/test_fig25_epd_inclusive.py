"""Figure 25: ZeroDEV on exclusive-private-data (EPD) and inclusive
LLC designs."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig25_epd_inclusive(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig25_epd_inclusive,
                                    "fig25")

    def overall(label):
        return geomean([v for suite, apps in results[label].items()
                        for v in apps.values()])

    # ZeroDEV with EPD + 1x directory tracks the EPD baseline (1-2%).
    assert overall("ZDevEPD-1x") > overall("BaseEPD-1x") - 0.05
    # ZeroDEV-NoDir on EPD beats the 1/8x-directory EPD baseline for
    # several groups (it can cache entries in the LLC).
    assert overall("ZDevEPD-NoDir") > overall("BaseEPD-1/8x") - 0.05
    # Inclusive: ZeroDEV without a directory within 1-2% of inclusive
    # baseline.
    assert overall("ZDevIncl-NoDir") > overall("BaseIncl-1x") - 0.05
    # Paper: 95% of forced invalidations eliminated in the inclusive
    # design; the remainder comes from inclusion itself.
    assert results["forced_eliminated"] > 0.5
