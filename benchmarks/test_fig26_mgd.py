"""Figure 26: comparison with the Multi-grain Directory.

Paper: MgD at 1/8x tracks the baseline 1x, then degrades gradually at
1/16x and 1/32x (yet remains far better than the baseline at identical
sizes); ZeroDEV stays flat, so the gap widens as the directory shrinks."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig26_mgd(benchmark):
    table, results = run_experiment(benchmark, experiments.fig26_mgd,
                                    "fig26")

    def overall(label):
        return geomean([v for apps in results[label].values()
                        for v in apps.values()])

    mgd8, mgd16, mgd32 = (overall("MgD-1/8x"), overall("MgD-1/16x"),
                          overall("MgD-1/32x"))
    # Shape: monotonic decline with shrinking directory.
    assert mgd32 <= mgd16 + 0.01
    assert mgd16 <= mgd8 + 0.01
    # MgD at 1/32x is still much better than the baseline at 1/32x.
    assert mgd32 >= overall("Base-1/32x") - 0.01
    # ZeroDEV stays flat: the gap to MgD widens with shrinking size.
    zdev = overall("ZDev-NoDir")
    assert zdev - mgd32 >= zdev - mgd8 - 0.01
    assert zdev > 0.95
