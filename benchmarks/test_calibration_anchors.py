"""Calibration anchors: the Section III-C2 shared-entry fractions.

The paper reports the fraction of directory entries that track shared
(S-state) blocks per suite -- the quantity that determines FPSS's LLC
pressure. This bench measures the same fractions on the synthetic
workloads and asserts the suite *ordering* the paper's data implies
(SPLASH2X most shared; PARSEC and CPU2017-rate moderate; SPEC OMP and
FFTW nearly none). Absolute fractions land within a small factor of the
paper's (see EXPERIMENTS.md).
"""

from repro.harness import experiments
from repro.harness.calibration import (PAPER_SHARED_ENTRY_FRACTION,
                                       suite_shared_fractions)
from repro.harness.reporting import Table
from repro.workloads.suites import make_multithreaded, make_rate_workload

from benchmarks.conftest import run_experiment


def shared_fraction_anchors():
    config = experiments.default_config()
    n = max(experiments.accesses_per_core() // 2, 1500)
    workloads = {}
    for suite in ("PARSEC", "SPLASH2X", "SPECOMP", "FFTW"):
        workloads[suite] = [
            make_multithreaded(p, config, n, seed=11)
            for p in experiments.apps_of(suite)]
    workloads["CPU2017"] = [
        make_rate_workload(p, config, n, seed=11)
        for p in experiments.apps_of("CPU2017")[:4]]
    results = suite_shared_fractions(config, workloads)
    table = Table("Section III-C2 anchors: fraction of directory "
                  "entries tracking shared blocks")
    for suite, (measured, paper) in results.items():
        table.add(suite, measured, paper=paper)
    return table, results


def test_shared_fraction_anchors(benchmark):
    table, results = run_experiment(benchmark, shared_fraction_anchors,
                                    "calibration_anchors")
    measured = {suite: value for suite, (value, _) in results.items()}
    # Suite ordering per the paper's data.
    assert measured["SPLASH2X"] >= measured["PARSEC"] - 0.02
    assert measured["PARSEC"] > measured["SPECOMP"]
    assert measured["CPU2017"] > measured["SPECOMP"] - 0.01
    assert measured["SPECOMP"] < 0.05
    assert measured["FFTW"] < 0.05
    # Magnitudes within a small factor of the paper's.
    for suite, (value, paper) in results.items():
        if paper >= 0.05:
            assert paper / 3 < value < paper * 3, suite
