"""Figures 19-21: the headline result. ZeroDEV performs within 1-2% of
the 1x baseline for 1x, 1/8x, and *no* sparse directory, with zero DEVs
by construction, on every suite."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment

TOLERANCE = 0.05      # the paper's 1-2% plus simulator noise


def check_invariance(results, suites):
    for label in ("1x", "1/8x", "NoDir"):
        for suite in suites:
            avg = geomean(list(results[label][suite].values()))
            assert avg > 1.0 - TOLERANCE, (
                f"{suite} {label}: ZeroDEV lost {1 - avg:.1%}")


def test_fig19_parsec(benchmark):
    table, results = run_experiment(benchmark, experiments.fig19_parsec,
                                    "fig19")
    check_invariance(results, ["PARSEC"])


def test_fig20_splash_omp_fftw(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig20_splash_omp_fftw,
                                    "fig20")
    check_invariance(results, ["SPLASH2X", "SPECOMP", "FFTW"])


def test_fig21_cpu2017_rate(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig21_cpu2017_rate,
                                    "fig21")
    check_invariance(results, ["CPU2017"])
