"""Section V extras: the energy estimate and the 4-socket evaluation."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_energy_saving(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.energy_comparison,
                                    "energy")
    # Paper: removing the directory saves ~9% of directory+LLC energy.
    assert 0.0 < results["saving"] < 0.30


def test_multisocket_four_sockets(benchmark):
    table, results = run_experiment(
        benchmark, lambda: experiments.multisocket_comparison(4),
        "multisocket")
    # Paper: ZeroDEV with no intra-socket directory within 1.6% of the
    # baseline on four sockets (and necessarily DEV-free, asserted
    # inside the experiment).
    assert geomean(results["speedups"]) > 0.95
