"""Benchmark harness glue.

Each benchmark executes one figure's experiment exactly once under
pytest-benchmark (``pedantic`` with a single round: the experiment *is*
the workload), prints the paper-versus-measured table, and saves it under
``results/`` so EXPERIMENTS.md can be regenerated from the same rows.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.common.ioutil import atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def run_experiment(benchmark, experiment, name: str):
    """Run ``experiment`` once under the benchmark fixture; returns the
    (table, results) pair and archives the table as text and JSON.

    Archives are published atomically (write-temp-then-rename) so an
    interrupted benchmark never leaves a half-written table behind."""
    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table, results = outcome
    table.show()
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / f"{name}.txt", table.render() + "\n")
    atomic_write_text(RESULTS_DIR / f"{name}.json",
                      json.dumps(table.to_dict(), indent=1) + "\n")
    return table, results
