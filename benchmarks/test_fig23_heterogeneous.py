"""Figure 23: heterogeneous multi-programmed mixes (W1..Wn)."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig23_heterogeneous(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig23_heterogeneous,
                                    "fig23")
    for label, values in results.items():
        # Paper: at most 2% individual slowdown, within 1% on average.
        assert geomean(values) > 0.96, label
        assert min(values) > 0.93, label
