"""Figure 27: comparison with SecDir (iso-storage).

Paper: SecDir loses performance as the directory shrinks (internal
fragmentation of the private partitions drives large worst-case
slowdowns at 1/8x), while ZeroDEV is insensitive to directory size."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig27_secdir(benchmark):
    table, results = run_experiment(benchmark, experiments.fig27_secdir,
                                    "fig27")

    def overall(label, reducer=geomean):
        return reducer([v for apps in results[label].values()
                        for v in apps.values()])

    # SecDir at 1x is competitive with the baseline.
    assert overall("SecDir-1x") > 0.93
    # SecDir at 1/8x degrades (like the baseline does).
    assert overall("SecDir-1/8x") <= overall("SecDir-1x") + 0.01
    # ZeroDEV is unaffected by the directory size.
    assert abs(overall("ZDev-NoDir") - overall("ZDev-1x")) < 0.03
    assert overall("ZDev-NoDir") > 0.95
    # Worst case: SecDir's minimum speedup at 1/8x is clearly below
    # ZeroDEV's.
    assert overall("SecDir-1/8x", min) <= overall("ZDev-NoDir", min) \
        + 0.02
