"""Figures 2 and 3: a 1x sparse directory performs close to an
unbounded directory -- the paper's baseline-justification experiment."""

from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig02_unbounded_rate(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig2_unbounded_rate,
                                    "fig02")
    speedups = results["speedups"]
    avg = sum(speedups) / len(speedups)
    # Paper: average speedup under 1%; unbounded saves traffic/misses.
    assert 0.97 < avg < 1.10
    assert sum(results["misses"]) / len(results["misses"]) <= 1.0
    assert sum(results["traffic"]) / len(results["traffic"]) <= 1.01


def test_fig03_unbounded_multithreaded(benchmark):
    table, results = run_experiment(
        benchmark, experiments.fig3_unbounded_multithreaded, "fig03")
    # Paper: 1x is adequate -- every suite average within a few percent.
    for suite, speedups in results.items():
        avg = sum(speedups) / len(speedups)
        assert 0.95 < avg < 1.10, f"{suite} average {avg}"
