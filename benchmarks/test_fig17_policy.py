"""Figure 17: selection of the directory-entry caching policy.

Paper: SpillAll is the worst; FPSS and FuseAll have similar averages but
FPSS has clearly better minimum speedups (FuseAll lengthens the read
critical path to shared blocks)."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig17_policy_selection(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig17_policy_selection,
                                    "fig17")

    def overall(label, reducer):
        values = [v for suite in results[label].values()
                  for v in suite.values()]
        return reducer(values)

    spill_avg = overall("SpillAll", geomean)
    fpss_avg = overall("FPSS", geomean)
    fuse_min = overall("FuseAll", min)
    fpss_min = overall("FPSS", min)
    # SpillAll is the worst policy on average.
    assert spill_avg <= fpss_avg + 0.005
    # FPSS beats FuseAll on worst-case (minimum) speedup.
    assert fpss_min >= fuse_min - 0.01
