"""Access-kernel benchmark: scalar vs batched vs vectorized.

Two measurements, both appended to ``results/BENCH_kernel.json`` (a
trajectory file, one entry per recorded run):

* **End-to-end**: each (config, workload) pair from the figure-19/20/21
  regime -- baseline 1x and ZeroDEV-NoDir over PARSEC / FFTW /
  CPU2017-rate representatives -- is run under all three kernels,
  interleaved and best-of-N (the container's wall clock is noisy), with
  the final stats asserted bit-identical and the ZeroDEV zero-DEV
  verdict asserted unchanged. Miss- and share-heavy applications sit
  near 1.0x by design: the adaptive driver degrades to the scalar
  schedule when bulk runs are too short to pay for themselves (see
  repro/kernel/batched.py); the no-regression floor (>= 0.95x on every
  workload, for both non-scalar kernels) is asserted here.

* **Hot path**: the retirement path itself -- classification scan plus
  ``retire_run`` -- against the scalar ``CMPSystem.access`` walk, over
  the same known-safe access stream on identically warmed systems,
  with identical resulting stats. This is the speedup each kernel
  delivers per safe hit, the regime the adaptive driver selects bulk
  mode for; the acceptance floors (batched >= 2.5x, vectorized
  >= 10x) are asserted on these numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.caches.block import MESI
from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import (CacheGeometry, DirectoryConfig,
                                 LLCReplacement, Protocol, SystemConfig)
from repro.common.ioutil import atomic_write_text
from repro.harness.runner import run_workload
from repro.harness.system_builder import build_system
from repro.kernel import ColumnarSlotKernel, SlotKernel
from repro.workloads import make_multithreaded
from repro.workloads.suites import find_profile, make_rate_workload
from repro.workloads.trace import Op

BENCH_PATH = Path(__file__).resolve().parent.parent / "results" / \
    "BENCH_kernel.json"
MAX_HISTORY = 50
HOT_PATH_FLOOR = 2.5
VEC_HOT_PATH_FLOOR = 10.0
#: No workload may run slower than this fraction of scalar under any
#: non-scalar kernel (the adaptive driver's job is to never lose).
E2E_FLOOR = 0.95
KERNELS = ("scalar", "batched", "vectorized")

#: (label, profile, builder) -- one representative per fig19-21 regime.
WORKLOADS = (
    ("parsec/blackscholes", "blackscholes", make_multithreaded),
    ("fftw/fftw", "fftw", make_multithreaded),
    ("cpu2017/xalancbmk", "xalancbmk", make_rate_workload),
)


def _bench_config(**overrides) -> SystemConfig:
    base = dict(
        n_cores=8,
        l1i=CacheGeometry(2048, 2), l1d=CacheGeometry(2048, 2),
        l2=CacheGeometry(8192, 4), llc=CacheGeometry(65536, 8),
        llc_banks=4,
    )
    base.update(overrides)
    return SystemConfig(**base)


def _zerodev_config() -> SystemConfig:
    return _bench_config(
        protocol=Protocol.ZERODEV, directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU)


def _snapshot(system):
    import copy
    return (copy.deepcopy(vars(system.stats)),
            dict(system.shadow._latest))        # noqa: SLF001


def _end_to_end(accesses: int, rounds: int) -> list:
    """Interleaved best-of-N over the workload set, all three kernels."""
    rows = []
    for config_label, config in (("baseline-1x", _bench_config()),
                                 ("zerodev-nodir", _zerodev_config())):
        for label, app, builder in WORKLOADS:
            workload = builder(find_profile(app), config, accesses,
                               seed=7)
            best = {}
            ratios = {kernel: [] for kernel in KERNELS[1:]}
            finals = {}
            for _ in range(rounds):
                elapsed = {}
                for kernel in KERNELS:
                    system = build_system(config.with_(kernel=kernel))
                    started = perf_counter()
                    run_workload(system, workload)
                    elapsed[kernel] = perf_counter() - started
                    best[kernel] = min(best.get(kernel,
                                                elapsed[kernel]),
                                       elapsed[kernel])
                    finals[kernel] = _snapshot(system)
                for kernel in KERNELS[1:]:
                    ratios[kernel].append(elapsed["scalar"]
                                          / elapsed[kernel])
            stats_s, shadow_s = finals["scalar"]
            for kernel in KERNELS[1:]:
                stats_k, shadow_k = finals[kernel]
                assert stats_s == stats_k, (
                    f"{config_label}/{label}: {kernel} diverged on "
                    f"{[k for k in stats_s if stats_s[k] != stats_k[k]]}")
                assert shadow_s == shadow_k, (
                    f"{config_label}/{label}: {kernel} shadow diverged")
            if config.protocol is Protocol.ZERODEV:
                assert stats_s["dev_invalidations"] == 0, (
                    f"{config_label}/{label}: zero-DEV verdict changed")
            rows.append({
                "config": config_label,
                "workload": label,
                "accesses": workload.total_accesses,
                "scalar_seconds": round(best["scalar"], 4),
                "batched_seconds": round(best["batched"], 4),
                "vectorized_seconds": round(best["vectorized"], 4),
                "speedup": round(best["scalar"] / best["batched"], 3),
                "vectorized_speedup": round(
                    best["scalar"] / best["vectorized"], 3),
                # The floor is checked against the best same-round
                # ratio: the container's clock drifts on a timescale
                # comparable to one run, so cross-round ratios mix
                # throttle phases, while a genuine regression shows in
                # every round.
                "speedup_best_round": round(max(ratios["batched"]), 3),
                "vectorized_speedup_best_round": round(
                    max(ratios["vectorized"]), 3),
            })
    return rows


def _safe_streams(system, length: int):
    """Per-core (ops, addresses) streams of guaranteed safe hits.

    Reads of any L2-resident block and writes to M/E-resident blocks
    stay safe indefinitely: reads never evict from the L2 (they only
    touch recency and fill L1s) and safe writes only perform the silent
    E->M transition.
    """
    streams = []
    for hier in system.cores:
        readable, writable = [], []
        for block in hier.cached_blocks():
            readable.append(block)
            if hier.probe(block) in (MESI.M, MESI.E):
                writable.append(block)
        assert readable, "warm-up left a core with an empty L2"
        ops, addresses = [], []
        for i in range(length):
            if writable and i % 4 == 3:
                ops.append(Op.WRITE.value)
                addresses.append(writable[i % len(writable)]
                                 << BLOCK_SHIFT)
            else:
                ops.append(Op.READ.value)
                addresses.append(readable[i % len(readable)]
                                 << BLOCK_SHIFT)
        streams.append((np.array(ops, dtype=np.int8),
                        np.array(addresses, dtype=np.int64)))
    return streams


def _warmed_system(config, accesses: int):
    system = build_system(config)
    workload = make_multithreaded(find_profile("blackscholes"), config,
                                  accesses, seed=7)
    run_workload(system, workload)
    return system


def _hot_path(accesses: int, stream_length: int, rounds: int) -> dict:
    """Time the same safe-hit stream through both paths.

    Each round builds two identically warmed systems (the paths mutate
    recency/state, so they cannot share one) and drives every core's
    stream through the scalar ``system.access`` walk on one and the
    kernel scan + ``retire_run`` loop on the other, asserting the
    resulting per-core stats match exactly.
    """
    config = _bench_config()
    slot_classes = {"batched": SlotKernel,
                    "vectorized": ColumnarSlotKernel}
    best = {}
    for _ in range(rounds):
        systems = {k: _warmed_system(config, accesses) for k in KERNELS}
        streams = _safe_streams(systems["scalar"], stream_length)
        deltas = {}

        system = systems["scalar"]
        access = system.access
        before = _snapshot(system)[0]
        started = perf_counter()
        for core, (ops, addresses) in enumerate(streams):
            for op, address in zip(
                    [Op.READ if o == 0 else Op.WRITE
                     for o in ops.tolist()], addresses.tolist()):
                access(core, op, address)
        elapsed = perf_counter() - started
        best["scalar"] = min(best.get("scalar", elapsed), elapsed)
        after = _snapshot(system)[0]
        deltas["scalar"] = _stat_delta(before, after)

        for kernel, slot_cls in slot_classes.items():
            system = systems[kernel]
            slots = [slot_cls(core, system.cores[core], system.stats,
                              system.shadow, system.config.latency,
                              ops, addresses)
                     for core, (ops, addresses) in enumerate(streams)]
            before = _snapshot(system)[0]
            no_limit = 1 << 62
            started = perf_counter()
            for core, slot in enumerate(slots):
                pos = 0
                clock = system.stats.cycles[core]
                while pos < slot.length:
                    end = slot.safe_end(pos)
                    assert end > pos, "stream misclassified as unsafe"
                    pos, clock = slot.retire_run(pos, end, clock,
                                                 no_limit)
            elapsed = perf_counter() - started
            best[kernel] = min(best.get(kernel, elapsed), elapsed)
            after = _snapshot(system)[0]
            deltas[kernel] = _stat_delta(before, after)

            assert deltas["scalar"] == deltas[kernel], (
                f"hot-path stats diverged under {kernel}: "
                f"{ {k: (deltas['scalar'][k], deltas[kernel][k]) for k in deltas['scalar'] if deltas['scalar'][k] != deltas[kernel][k]} }")
    total = stream_length * config.n_cores
    return {
        "accesses": total,
        "scalar_seconds": round(best["scalar"], 4),
        "batched_seconds": round(best["batched"], 4),
        "vectorized_seconds": round(best["vectorized"], 4),
        "speedup": round(best["scalar"] / best["batched"], 3),
        "vectorized_speedup": round(
            best["scalar"] / best["vectorized"], 3),
    }


def _stat_delta(before: dict, after: dict) -> dict:
    delta = {}
    for key, value in after.items():
        prev = before[key]
        if isinstance(value, list):
            delta[key] = [a - b for a, b in zip(value, prev)]
        elif isinstance(value, (int, float)):
            delta[key] = value - prev
        else:
            delta[key] = (prev, value)
    return delta


def measure(accesses: int = 4000, stream_length: int = 24000,
            rounds: int = 3, path=None) -> dict:
    # Three best-of rounds: the single-CPU container's wall clock is
    # noisy enough that best-of-2 intermittently crosses E2E_FLOOR on
    # workloads that are truly at parity.
    e2e = _end_to_end(accesses, rounds)
    hot = _hot_path(accesses, stream_length, rounds)
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
        "cpu_count": os.cpu_count(),
        "end_to_end": e2e,
        "hot_path": hot,
        "hot_path_speedup": hot["speedup"],
        "hot_path_vectorized_speedup": hot["vectorized_speedup"],
    }
    if path is not None:
        path = Path(path)
        history = []
        if path.is_file():
            try:
                history = json.loads(path.read_text())
            except json.JSONDecodeError:
                history = []
        history.append(entry)
        path.parent.mkdir(exist_ok=True)
        atomic_write_text(path, json.dumps(history[-MAX_HISTORY:],
                                           indent=1) + "\n")
    return entry


def test_kernel_speedup():
    entry = measure(path=BENCH_PATH)
    print(f"\nhot path: {entry['hot_path']['accesses']:,} safe hits | "
          f"scalar {entry['hot_path']['scalar_seconds']:.3f}s, "
          f"batched {entry['hot_path']['batched_seconds']:.3f}s "
          f"-> {entry['hot_path_speedup']:.2f}x, "
          f"vectorized {entry['hot_path']['vectorized_seconds']:.3f}s "
          f"-> {entry['hot_path_vectorized_speedup']:.2f}x")
    for row in entry["end_to_end"]:
        print(f"  {row['config']:>13s} {row['workload']:<20s} "
              f"batched {row['speedup']:.2f}x  "
              f"vectorized {row['vectorized_speedup']:.2f}x")
    assert entry["hot_path_speedup"] >= HOT_PATH_FLOOR, (
        f"hot-path speedup {entry['hot_path_speedup']:.2f}x below the "
        f"{HOT_PATH_FLOOR}x floor")
    assert entry["hot_path_vectorized_speedup"] >= VEC_HOT_PATH_FLOOR, (
        f"vectorized hot-path speedup "
        f"{entry['hot_path_vectorized_speedup']:.2f}x below the "
        f"{VEC_HOT_PATH_FLOOR}x floor")
    # The adaptive driver must never lose to scalar on any workload.
    for row in entry["end_to_end"]:
        for key in ("speedup_best_round",
                    "vectorized_speedup_best_round"):
            assert row[key] >= E2E_FLOOR, (
                f"{row['config']}/{row['workload']}: {key} "
                f"{row[key]:.3f}x below the {E2E_FLOOR}x floor")
