"""Figure 22: ZeroDEV sensitivity to LLC capacity (half and double)."""

from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig22_llc_capacity(benchmark):
    table, results = run_experiment(benchmark,
                                    experiments.fig22_llc_capacity,
                                    "fig22")
    for (label, suite), (base, nodir, quarter) in results.items():
        if label == "double":
            # Paper: at 16 MB, ZeroDEV-NoDir within 1% of the 16 MB
            # baseline.
            assert nodir > base - 0.04, (label, suite)
        else:
            # Paper: at 4 MB some applications need a 1/4x directory to
            # stay within 1% -- with it, ZeroDEV tracks the baseline.
            assert quarter > base - 0.05, (label, suite)
