"""Figure 18: spLRU versus dataLRU. Paper: dataLRU is higher performing
across the board because spLRU leaves fused entries unprotected."""

from repro.harness.reporting import geomean
from repro.harness import experiments

from benchmarks.conftest import run_experiment


def test_fig18_replacement_selection(benchmark):
    table, results = run_experiment(
        benchmark, experiments.fig18_replacement_selection, "fig18")

    def overall(label):
        return geomean([v for suite in results[label].values()
                        for v in suite.values()])

    # dataLRU >= spLRU at both capacities (within noise).
    assert overall("data-full") >= overall("sp-full") - 0.01
    assert overall("data-half") >= overall("sp-half") - 0.01
    # The capacity-constrained LLC magnifies any inefficiency.
    assert overall("data-half") <= overall("data-full") + 0.02
