"""Typed event taxonomy for the observability layer.

Every event is one flat record: a monotonically increasing ``step`` (the
global access index maintained by the runner), an :class:`EventKind`, and
three optional coordinates -- ``block``, ``core``, and a free-form
``cause`` tag.  The taxonomy mirrors the transitions the paper reasons
about: protocol messages, directory-entry lifecycle (allocate / evict /
spill / fuse / extract), LLC entry eviction into memory (the
corrupted-memory transition), the ``GET_DE`` / ``DENF_NACK`` flows, and
private-cache invalidations tagged by what caused them.

The load-bearing tag is ``PRIV_INV`` with ``cause="dev"``: a ZeroDEV run
must never contain one (the paper's headline property), while a sparse
baseline produces them in volume -- asserted by ``tests/test_obs.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """Every event type the instrumented simulator can emit."""

    # Interconnect.
    MSG = "msg"                    # one protocol message (cause = type)

    # Private-cache hierarchy.
    PRIV_INV = "priv_inv"          # private copy invalidated (cause-tagged)
    L2_EVICT = "l2_evict"          # capacity eviction -> notice to home

    # Sparse-directory lifecycle.
    DIR_INSERT = "dir_insert"      # entry installed in the sparse array
    DIR_REMOVE = "dir_remove"      # entry left the sparse array
    DIR_EVICT = "dir_evict"        # forced NRU eviction (the DEV source)

    # ZeroDEV entry caching in the LLC.
    ENTRY_SPILL = "entry_spill"    # entry allocated a spilled LLC frame
    ENTRY_FUSE = "entry_fuse"      # entry fused into its block's frame
    ENTRY_UNFUSE = "entry_unfuse"  # fused frame reconstructed to a block

    # ZeroDEV memory housing (Section III-D).
    ENTRY_WB_DE = "entry_wb_de"    # live entry evicted to memory (corrupts)
    ENTRY_EXTRACT = "entry_extract"  # housed entry promoted back on chip
    GET_DE = "get_de"              # read-update-writeback of a housed entry
    DENF_NACK = "denf_nack"        # "directory entry not found" NACK
    MEM_RESTORE = "mem_restore"    # corrupted block restored from a cache
    MEM_HEAL = "mem_heal"          # real-data writeback healed the image

    # Hybrid update/invalidate contender (repro.baselines.hybrid): a
    # write to a shared block pushes data to its sharers instead of
    # invalidating them, so these never coincide with a PRIV_INV --
    # update pushes must not be mistaken for eviction victims in the
    # DEV accounting (``core`` = the sharer receiving the update).
    UPDATE_PUSH = "update_push"

    # LLC.
    LLC_EVICT = "llc_evict"        # replacement victim (cause = frame kind)

    # Campaign harness (repro.harness.campaign): these are emitted by
    # the fault-tolerant execution layer, not the simulator, with
    # ``step`` carrying the run index within the campaign. ``repro
    # report`` renders them as the campaign-health section.
    RUN_RETRY = "run_retry"        # transient failure re-queued (cause)
    RUN_TIMEOUT = "run_timeout"    # per-run deadline fired
    WORKER_DEATH = "worker_death"  # worker died before delivering
    RESUME_SKIP = "resume_skip"    # journaled run replayed, not re-run

    # Modelcheck frontier (repro.verify.modelcheck): emitted by the
    # bounded-exhaustive explorer, with ``step`` carrying the BFS depth
    # just completed. ``MC_FRONTIER``'s cause packs the level counters
    # (``new/transitions/dedup``, with a fourth ``capped`` part when
    # max_states or the time budget stopped the level early) so a
    # progress sink can render the state-collapse rate live;
    # ``MC_MERGE`` reports each level's parallel partition/merge shape
    # (``core`` = worker partitions, cause packs
    # ``partitions/frontier/transitions-merged``); ``MC_CEX`` marks a
    # counterexample.
    MC_FRONTIER = "mc_frontier"    # one completed frontier level
    MC_MERGE = "mc_merge"          # per-level partition/merge stats
    MC_CEX = "mc_cex"              # counterexample found (cause=error type)

    # Job service (repro.service): fleet-level health events, written to
    # a job's operational events log with ``step`` carrying the item
    # index. Reclaims are the service's worker-death signal: a lease
    # only expires when its owner stopped heartbeating.
    LEASE_RECLAIM = "lease_reclaim"  # expired lease re-queued (cause=owner)
    JOB_STATE = "job_state"          # job state transition (cause=state)
    STORE_HIT = "store_hit"          # run served from the result store


#: ``cause`` tags carried by PRIV_INV events.  ``DEV`` marks the paper's
#: directory-eviction victims; the rest are the legitimate coherence and
#: capacity causes every protocol shares.
class InvCause:
    DEV = "dev"                    # directory-entry eviction victim
    GETX = "getx"                  # write miss / upgrade killed a sharer
    FWD_GETX = "fwd_getx"          # ownership transferred to another core
    INCLUSION = "inclusion"        # inclusive-LLC back-invalidation
    SOCKET = "socket"              # remote-socket exclusive acquisition


@dataclass(frozen=True)
class Event:
    """One structured trace record (flat, JSON-friendly)."""

    __slots__ = ("step", "kind", "block", "core", "cause")

    step: int
    kind: EventKind
    block: int
    core: int
    cause: str

    def to_record(self) -> dict:
        """Plain-dict form used by the JSONL sink and the reports."""
        record = {"step": self.step, "kind": self.kind.value}
        if self.block >= 0:
            record["block"] = self.block
        if self.core >= 0:
            record["core"] = self.core
        if self.cause:
            record["cause"] = self.cause
        return record

    def key(self) -> str:
        """Aggregation key: ``kind`` or ``kind:cause``."""
        if self.cause:
            return f"{self.kind.value}:{self.cause}"
        return self.kind.value
