"""``repro.obs`` -- structured event tracing, metrics, and run reports.

The observability layer for the simulator: a typed event bus threaded
through the protocol core, both cache layers, the interconnect, and the
multi-socket composition; pluggable sinks (JSONL, ring buffer, streaming
per-epoch aggregator); and report rendering for the CLI.  Tracing is off
by default and each emission site is guarded by one ``is None`` test, so
untraced runs stay within noise of the uninstrumented simulator (see
DESIGN.md, "Observability").
"""

from repro.obs.bus import EventBus
from repro.obs.events import Event, EventKind, InvCause
from repro.obs.profiler import PhaseProfiler
from repro.obs.report import load_trace, render_report, summarize
from repro.obs.sinks import (JsonlSink, RingBufferSink,
                             TimeSeriesAggregator, write_timeseries)
from repro.obs.trace import (TraceSession, attach, attach_multisocket,
                             detach, detach_multisocket,
                             timeseries_path_for)

__all__ = [
    "Event", "EventBus", "EventKind", "InvCause", "JsonlSink",
    "PhaseProfiler", "RingBufferSink", "TimeSeriesAggregator",
    "TraceSession", "attach", "attach_multisocket", "detach",
    "detach_multisocket", "load_trace", "render_report", "summarize",
    "timeseries_path_for", "write_timeseries",
]
