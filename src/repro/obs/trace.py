"""Trace sessions: wire an event bus through a system, run, archive.

:func:`attach` threads one :class:`~repro.obs.bus.EventBus` through every
instrumented component of a socket (protocol core, mesh, sparse
directory, LLC banks, private hierarchies); :func:`detach` restores the
zero-cost disabled state.  :class:`TraceSession` is the high-level
convenience used by the CLI and by ``run_many(trace_dir=...)``: it owns
the bus and the standard sink set (JSONL file, ring buffer, time-series
aggregator), runs a workload with epoch-boundary gauge sampling, and
archives the aggregated time series next to the JSONL trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.obs.bus import EventBus
from repro.obs.profiler import PhaseProfiler
from repro.obs.sinks import (JsonlSink, RingBufferSink,
                             TimeSeriesAggregator, write_timeseries)


def attach(system, bus: EventBus) -> EventBus:
    """Enable event emission on every layer of a single-socket system."""
    system.obs = bus
    system.mesh.obs = bus
    if system.directory is not None:
        system.directory.obs = bus
    for bank in system.banks:
        bank.obs = bus
    for hierarchy in system.cores:
        hierarchy.obs = bus
    return bus


def detach(system) -> None:
    """Restore the zero-cost disabled state."""
    system.obs = None
    system.mesh.obs = None
    if system.directory is not None:
        system.directory.obs = None
    for bank in system.banks:
        bank.obs = None
    for hierarchy in system.cores:
        hierarchy.obs = None


def attach_multisocket(system, bus: EventBus) -> EventBus:
    """Enable event emission on a multi-socket system and its sockets."""
    system.obs = bus
    for socket in system.sockets:
        attach(socket, bus)
    return bus


def detach_multisocket(system) -> None:
    system.obs = None
    for socket in system.sockets:
        detach(socket)


def timeseries_path_for(jsonl_path) -> Path:
    """Archive path of the time series belonging to a JSONL trace."""
    jsonl_path = Path(jsonl_path)
    return jsonl_path.with_name(jsonl_path.stem + ".timeseries.json")


class TraceSession:
    """Owns the bus and sinks for one traced single-socket run.

    Usage::

        session = TraceSession(system, jsonl=path, epoch=1000)
        result = session.run(workload)
        session.close()      # detaches, flushes, archives the series

    ``close`` is idempotent and also runs on ``__exit__``.
    """

    def __init__(self, system, jsonl=None, ring_capacity: int = 0,
                 epoch: int = 1000, timeseries=None) -> None:
        self.system = system
        self.bus = EventBus()
        self.aggregator = TimeSeriesAggregator(epoch)
        self.bus.subscribe(self.aggregator)
        self.profiler = PhaseProfiler()
        self.jsonl: Optional[JsonlSink] = None
        self.ring: Optional[RingBufferSink] = None
        if jsonl is not None:
            self.jsonl = JsonlSink(jsonl)
            self.bus.subscribe(self.jsonl)
        if ring_capacity:
            self.ring = RingBufferSink(ring_capacity)
            self.bus.subscribe(self.ring)
        self.timeseries_path = (
            Path(timeseries) if timeseries is not None
            else (timeseries_path_for(jsonl) if jsonl is not None
                  else None))
        self._closed = False
        attach(system, self.bus)

    # ------------------------------------------------------------------
    def run(self, workload, **run_kwargs):
        """Run ``workload`` on the attached system with gauge sampling."""
        from repro.harness.runner import run_workload
        from repro.common.config import resolve_kernel
        if self.jsonl is not None:
            self.jsonl.write_meta(
                workload=workload.name,
                protocol=self.system.config.protocol.value,
                n_cores=self.system.config.n_cores,
                kernel=resolve_kernel(self.system.config),
                epoch_accesses=self.aggregator.epoch)
        run_kwargs.setdefault("sample_every", self.aggregator.epoch)
        run_kwargs.setdefault("sample_fn", self.aggregator.sample)
        run_kwargs.setdefault("profiler", self.profiler)
        result = run_workload(self.system, workload, **run_kwargs)
        if self.jsonl is not None:
            result.trace_path = str(self.jsonl.path)
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach, flush sinks, and archive the time series."""
        if self._closed:
            return
        self._closed = True
        detach(self.system)
        if self.timeseries_path is not None:
            from repro.common.config import resolve_kernel
            meta = {"runner_phases": self.profiler.to_dict(),
                    "kernel": resolve_kernel(self.system.config)}
            if self.jsonl is not None:
                meta["trace"] = str(self.jsonl.path)
            write_timeseries(self.timeseries_path, self.aggregator,
                             **meta)
        self.bus.close()

    def __enter__(self) -> "TraceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
