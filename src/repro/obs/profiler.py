"""Wall-clock phase profiling for the runner.

:class:`PhaseProfiler` accumulates wall seconds per named phase; the
runner brackets its phases (trace decode, drive loop, final invariant
sweep) with :meth:`phase` when a profiler is passed in.  The disabled
path costs nothing: ``run_workload`` only enters the context managers
when a profiler is supplied.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict


class PhaseProfiler:
    """Accumulates wall-clock seconds per named runner phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        started = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - started
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def to_dict(self) -> Dict[str, float]:
        return {name: round(value, 6)
                for name, value in sorted(self.seconds.items())}

    def render(self) -> str:
        if not self.seconds:
            return "(no phases recorded)"
        total = sum(self.seconds.values()) or 1.0
        width = max(len(name) for name in self.seconds)
        lines = [f"  {'phase':<{width}} {'seconds':>10} {'share':>7}"]
        for name, value in sorted(self.seconds.items(),
                                  key=lambda item: -item[1]):
            lines.append(f"  {name:<{width}} {value:>10.4f} "
                         f"{value / total:>6.1%}")
        return "\n".join(lines)
