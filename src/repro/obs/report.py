"""Run reports rendered from archived JSONL traces.

``repro report <trace.jsonl>`` renders the terminal summary produced
here: headline verdict (did any DEV-caused private-cache invalidation
occur?), event totals by kind, the invalidation-cause breakdown, the
message mix, and -- when the sibling ``*.timeseries.json`` archive exists
-- per-epoch occupancy/MPKI series as ASCII charts.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Optional, Tuple

from repro.obs.events import EventKind, InvCause
from repro.obs.trace import timeseries_path_for


def load_trace(path) -> Tuple[dict, List[dict]]:
    """Parse a JSONL trace into (meta, event records).

    Damaged trailing lines (an interrupted run) are tolerated: parsing
    stops at the first undecodable line rather than raising.
    """
    meta: dict = {}
    events: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if record.get("kind") == "meta":
                meta.update(record)
            else:
                events.append(record)
    return meta, events


def summarize(path) -> dict:
    """Structured summary of one JSONL trace."""
    meta, events = load_trace(path)
    kinds: Counter = Counter()
    inv_causes: Counter = Counter()
    messages: Counter = Counter()
    last_step = 0
    for record in events:
        kind = record.get("kind", "?")
        kinds[kind] += 1
        last_step = max(last_step, record.get("step", 0))
        if kind == EventKind.PRIV_INV.value:
            inv_causes[record.get("cause", "?")] += 1
        elif kind == EventKind.MSG.value:
            messages[record.get("cause", "?")] += 1
    return {
        "meta": meta,
        "total_events": len(events),
        "last_step": last_step,
        "kinds": dict(kinds),
        "inv_causes": dict(inv_causes),
        "messages": dict(messages),
        "dev_invalidations": inv_causes.get(InvCause.DEV, 0),
        "campaign": campaign_health(kinds),
    }


#: Journal/event kinds the fault-tolerant campaign layer emits
#: (``repro.harness.campaign``); ``run_ok`` / ``run_failure`` are
#: journal-only records, the rest are :class:`EventKind` members.
_CAMPAIGN_KINDS = (
    ("run_ok", "committed runs"),
    ("run_failure", "failed runs"),
    (EventKind.RUN_RETRY.value, "retries"),
    (EventKind.RUN_TIMEOUT.value, "timeouts"),
    (EventKind.WORKER_DEATH.value, "worker deaths"),
    (EventKind.RESUME_SKIP.value, "resume skips"),
    (EventKind.LEASE_RECLAIM.value, "lease reclaims"),
    (EventKind.STORE_HIT.value, "store hits"),
)


def campaign_health(kinds) -> Optional[dict]:
    """Campaign-layer counters, or ``None`` for a pure simulator trace."""
    if not any(kind in kinds for kind, _label in _CAMPAIGN_KINDS):
        return None
    return {kind: kinds.get(kind, 0) for kind, _label in _CAMPAIGN_KINDS}


def _bars(counter_items, width: int = 40) -> List[str]:
    items = sorted(counter_items, key=lambda item: -item[1])
    if not items:
        return ["  (none)"]
    top = items[0][1] or 1
    label_width = max(len(str(label)) for label, _ in items)
    lines = []
    for label, count in items:
        bar = "#" * max(1, int(round(count / top * width)))
        lines.append(f"  {str(label):<{label_width}} {count:>10,} {bar}")
    return lines


def _sparkline(values: List[float], width: int = 60) -> str:
    marks = " .:-=+*#%@"
    if not values:
        return "(no samples)"
    if len(values) > width:
        # Downsample by max within each chunk so spikes stay visible.
        chunk = len(values) / width
        values = [max(values[int(i * chunk):
                             max(int(i * chunk) + 1,
                                 int((i + 1) * chunk))])
                  for i in range(width)]
    top = max(values) or 1
    return "".join(marks[min(len(marks) - 1,
                             int(value / top * (len(marks) - 1)))]
                   for value in values)


def render_report(path, timeseries: Optional[Path] = None) -> str:
    """Terminal report for a JSONL trace (plus its time series if any)."""
    summary = summarize(path)
    meta = summary["meta"]
    lines = [f"trace report: {path}"]
    if meta:
        described = ", ".join(f"{key}={meta[key]}" for key in
                              ("workload", "protocol", "n_cores",
                               "epoch_accesses") if key in meta)
        lines.append(f"  {described}")
    lines.append(f"  {summary['total_events']:,} events over "
                 f"{summary['last_step']:,} accesses")
    campaign = summary["campaign"]
    if campaign is None:
        devs = summary["dev_invalidations"]
        verdict = ("ZERO directory-eviction victims" if devs == 0 else
                   f"{devs:,} DEV-caused private-cache invalidations")
        lines.append(f"  verdict: {verdict}")
    else:
        failed = campaign["run_failure"]
        verdict = ("campaign healthy (all runs committed)" if not failed
                   else f"{failed} unresolved run failure(s)")
        lines.append(f"  verdict: {verdict}")
        lines.append("")
        lines.append("campaign health:")
        for kind, label in _CAMPAIGN_KINDS:
            lines.append(f"  {label:<14} {campaign[kind]:>8,}")
    lines.append("")
    lines.append("event totals:")
    lines.extend(_bars(summary["kinds"].items()))
    if summary["inv_causes"]:
        lines.append("")
        lines.append("private-cache invalidations by cause:")
        lines.extend(_bars(summary["inv_causes"].items()))
    if summary["messages"]:
        lines.append("")
        lines.append("message mix (top 8):")
        lines.extend(_bars(Counter(summary["messages"])
                           .most_common(8)))
    series_path = (Path(timeseries) if timeseries is not None
                   else timeseries_path_for(path))
    if series_path.is_file():
        try:
            series = json.loads(series_path.read_text())
        except json.JSONDecodeError:
            series = None
        if series:
            lines.append("")
            lines.append(f"time series ({series_path.name}, epoch = "
                         f"{series.get('epoch_accesses', '?')} accesses):")
            gauges = series.get("gauges", [])
            for gauge in ("spilled_entries", "fused_entries",
                          "corrupted_blocks", "dir_occupancy", "mpki"):
                values = [float(sample.get(gauge, 0))
                          for sample in gauges]
                if any(values):
                    peak = max(values)
                    lines.append(f"  {gauge:<17} peak {peak:>10.1f} "
                                 f"|{_sparkline(values)}|")
            phases = series.get("runner_phases", {})
            if phases:
                lines.append("  runner phases: " + ", ".join(
                    f"{name} {value:.3f}s"
                    for name, value in phases.items()))
    return "\n".join(lines)
