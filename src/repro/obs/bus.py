"""The event bus: one emit point, pluggable sinks, zero cost when off.

Instrumented components (socket, mesh, directory, LLC banks, private
hierarchies) each hold an ``obs`` attribute that is ``None`` by default;
every emission site is guarded by ``if self.obs is not None``, so a run
without tracing pays a single attribute test per site and allocates
nothing.  :func:`repro.obs.trace.attach` swaps the attribute to a live
:class:`EventBus` for the duration of a trace session.

``bus.step`` is the global access index: the runner advances it once per
issued reference, giving every event a position on the simulated-time
axis that the aggregator folds into epochs.
"""

from __future__ import annotations

from typing import List

from repro.obs.events import Event, EventKind


class EventBus:
    """Fans emitted events out to the subscribed sinks."""

    def __init__(self) -> None:
        self.step = 0
        self._sinks: List = []

    def subscribe(self, sink) -> None:
        """Add a sink (an object with ``handle(event)``)."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def unsubscribe(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> List:
        return list(self._sinks)

    def emit(self, kind: EventKind, block: int = -1, core: int = -1,
             cause: str = "") -> None:
        """Deliver one event to every sink."""
        event = Event(self.step, kind, block, core, cause)
        for sink in self._sinks:
            sink.handle(event)

    def close(self) -> None:
        """Close every sink that supports it (flush files)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
