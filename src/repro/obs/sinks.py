"""Event sinks: JSONL file, bounded ring buffer, time-series aggregator.

A sink is any object with ``handle(event)``; ``close()`` is optional.
The three shipped sinks cover the three consumption patterns:

* :class:`JsonlSink` -- durable, replayable traces (``repro report``).
* :class:`RingBufferSink` -- the last N events, for in-process debugging
  and tests, with no unbounded growth.
* :class:`TimeSeriesAggregator` -- streaming per-epoch reduction: event
  counts per kind (including the message mix) folded by the global access
  step, plus *gauge* snapshots (directory/spill/fuse occupancy, corrupted
  blocks, MPKI) sampled at epoch boundaries by the trace session.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.events import Event


class JsonlSink:
    """Appends one JSON object per event to ``path``."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self.events_written = 0

    def write_meta(self, **meta) -> None:
        """Write a leading metadata record (workload, protocol, epoch)."""
        record = {"kind": "meta"}
        record.update(meta)
        self._handle.write(json.dumps(record) + "\n")

    def handle(self, event: Event) -> None:
        self._handle.write(json.dumps(event.to_record()) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class AppendJsonlSink:
    """Append-mode JSONL sink shared by concurrent writers.

    Unlike :class:`JsonlSink` (one writer, truncate-on-open), this sink
    opens in append mode and emits each record as a single short
    ``write`` + ``flush``, so many processes -- a service worker fleet
    sharing one job's events log -- can interleave whole lines without a
    lock. Records are plain dicts (:meth:`write_record`) or
    :class:`Event` objects (:meth:`handle`); readers tolerate unknown
    kinds, so free-form service records ride alongside typed events.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.events_written = 0

    def write_record(self, record: dict) -> None:
        line = json.dumps(record) + "\n"
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
        self.events_written += 1

    def handle(self, event: Event) -> None:
        self.write_record(event.to_record())

    def close(self) -> None:           # open-per-write: nothing held
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive: {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.total_seen = 0

    def handle(self, event: Event) -> None:
        self._events.append(event)
        self.total_seen += 1

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def counts(self) -> Counter:
        """Aggregation-key counts over the retained window."""
        return Counter(event.key() for event in self._events)

    def __len__(self) -> int:
        return len(self._events)


class TimeSeriesAggregator:
    """Streams events into per-epoch counters and gauge snapshots.

    An *epoch* is ``epoch`` global accesses.  ``handle`` folds each event
    into its epoch's counter; :meth:`sample` (called by the trace session
    every epoch boundary) snapshots instantaneous occupancy gauges and
    per-epoch rates from the live system.
    """

    def __init__(self, epoch: int = 1000) -> None:
        if epoch <= 0:
            raise ValueError(f"epoch length must be positive: {epoch}")
        self.epoch = epoch
        self._event_epochs: Dict[int, Counter] = {}
        self.gauges: List[dict] = []
        self._last_misses = 0
        self._last_accesses = 0

    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        bucket = self._event_epochs.get(event.step // self.epoch)
        if bucket is None:
            bucket = self._event_epochs.setdefault(
                event.step // self.epoch, Counter())
        bucket[event.key()] += 1

    # ------------------------------------------------------------------
    def sample(self, system) -> None:
        """Snapshot occupancy gauges from a live (single-socket) system."""
        stats = system.stats
        accesses = stats.total_accesses
        misses = stats.core_cache_misses
        delta_accesses = accesses - self._last_accesses
        delta_misses = misses - self._last_misses
        self._last_accesses, self._last_misses = accesses, misses
        housing = getattr(system, "_housing", None)
        self.gauges.append({
            "step": accesses,
            "dir_occupancy": (system.directory.occupancy()
                              if system.directory is not None else 0),
            "spilled_entries": sum(bank.spilled_count()
                                   for bank in system.banks),
            "fused_entries": sum(bank.fused_count()
                                 for bank in system.banks),
            "corrupted_blocks": (housing.garbage_count
                                 if housing is not None else 0),
            "mpki": (1000.0 * delta_misses / delta_accesses
                     if delta_accesses else 0.0),
            "traffic_bytes": stats.traffic_bytes,
        })

    # ------------------------------------------------------------------
    def event_series(self) -> List[dict]:
        """Per-epoch event counts, ordered by epoch index."""
        return [{"epoch": index, "step": index * self.epoch,
                 "counts": dict(counts)}
                for index, counts in sorted(self._event_epochs.items())]

    def totals(self) -> Counter:
        total: Counter = Counter()
        for counts in self._event_epochs.values():
            total.update(counts)
        return total

    def to_dict(self) -> dict:
        return {
            "epoch_accesses": self.epoch,
            "events": self.event_series(),
            "gauges": list(self.gauges),
            "totals": dict(self.totals()),
        }

    def series_of(self, key: str) -> List[int]:
        """One event-count series across epochs (missing epochs -> 0)."""
        if not self._event_epochs:
            return []
        last = max(self._event_epochs)
        return [self._event_epochs.get(index, Counter()).get(key, 0)
                for index in range(last + 1)]


def write_timeseries(path, aggregator: TimeSeriesAggregator,
                     **meta) -> Path:
    """Archive an aggregator's series as JSON (atomic publish)."""
    from repro.common.ioutil import atomic_write_text
    payload = dict(meta)
    payload.update(aggregator.to_dict())
    path = Path(path)
    atomic_write_text(path, json.dumps(payload, indent=1) + "\n")
    return path
