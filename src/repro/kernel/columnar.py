"""Columnar (structure-of-arrays) vectorized kernel.

The batched kernel (:mod:`repro.kernel.batched`) proved that safe runs
-- L2-resident, non-S-write accesses -- commute and can retire in bulk
with bit-identical observables, but each retirement is still a scalar
Python iteration.  This module retires a whole safe run with *column*
operations over contiguous NumPy arrays instead, exploiting two facts:

1. **LRU is a stack algorithm.**  An access hits a W-way LRU array
   exactly when fewer than W distinct same-set blocks were touched
   since its previous occurrence, and the array's final content is the
   W most recently used distinct blocks, in recency order.  Per-access
   hit flags therefore follow from the access *sequence* plus the
   initial per-set contents (encoded as a virtual prefix), and the
   final L1/L2 recency state can be reconstructed in O(distinct
   blocks) instead of O(run length).

2. **Safe-run observables are prefix sums.**  Per-access latencies are
   one of three class constants, so clocks are a cumulative sum, the
   ``clock < limit`` retirement cutoff is a ``searchsorted``, counters
   are population counts, and shadow/L2 version finalization needs
   only per-block store counts (the scalar path bumps the version once
   per store, so the final version is the old value plus the count).

Exactness of the per-access hit flags (needed because the scalar path
counts L1 vs L2 hits and steps the clock differently for each) is kept
with a tiered classifier over the set-grouped access sequence:

* ``W == 1``: hit iff the previous same-set access is the same block.
* ``W == 2``: hit iff the previous occurrence of the block is at or
  after the position *before* the maximal run of equal same-set values
  ending at the predecessor (the cache holds the last two distinct
  same-set values; the second-most-recent is exactly the value before
  that run).
* distinct same-set blocks <= W: nothing is ever evicted, so every
  re-occurrence is a hit.
* otherwise: an exact per-set Python LRU replay of just that set's
  subsequence (rare -- only W >= 3 sets with more distinct blocks than
  ways, where no closed form exists).

**Sync points.**  The columns are mirrors, not the source of truth.
The object model (``PrivateHierarchy``/``SetAssocCache``) is read at
exactly two points: the classification scan snapshots the L2
membership/state columns (staleness is handled by the same epoch +
shrink-journal machinery as the batched kernel), and ``retire_run``
reads the live L1 set contents for the virtual prefix and writes the
reconstructed final state back before returning -- retirement is
atomic within a driver turn, so no scalar access can interleave.  The
:class:`HierarchyColumns`/:class:`LLCColumns` images make the mirror
relation testable: ``capture`` -> ``restore`` must round-trip the
object model losslessly (property-tested in ``tests/test_columnar.py``).

Everything coherence-visible still issues through the scalar protocol
in exact heap order via :func:`repro.kernel.batched.drive_batched`;
the driver's three-way policy is: degraded mode issues scalar, bulk
mode retires through this kernel, and within bulk mode runs shorter
than :data:`VEC_MIN_RUN` take the batched per-access loop (column
setup costs a fixed ~30 NumPy calls, which short runs cannot
amortize).  All three paths are exact, so the choice -- a
deterministic function of simulation state -- never affects
observables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.caches.block import L1Line, L2Line, LLCLine, LineKind, MESI
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.common.addressing import BLOCK_SHIFT
from repro.kernel.batched import SCAN_WINDOW, SlotKernel

#: Minimum run length retired through the column pipeline.  Shorter
#: runs fall back to the batched per-access loop: the pipeline's fixed
#: NumPy-call overhead (~30 calls) beats ~0.35us/access iteration only
#: past roughly this length.
VEC_MIN_RUN = 96

#: Accesses classified per vectorized scan.  Unlike the scalar scan --
#: which stops at the first unsafe access and pays per access walked --
#: the vectorized scan pays a fixed cost for the whole window, so it
#: wants a window long enough to feed several bulk runs.
VEC_SCAN_WINDOW = 4096

#: A vectorized scan that yields a prefix shorter than this did not
#: amortize its fixed cost; the next scan uses the scalar walk (which
#: is cheaper exactly when the prefix is short), returning to the
#: vectorized scan once a scalar scan fills its whole window again.
VEC_SCAN_MIN_PREFIX = 128

_MESI_CODES = {MESI.M: 0, MESI.E: 1, MESI.S: 2}
_MESI_BY_CODE = (MESI.M, MESI.E, MESI.S)
_KIND_CODES = {LineKind.DATA: 0, LineKind.SPILLED: 1, LineKind.FUSED: 2}
_KIND_BY_CODE = (LineKind.DATA, LineKind.SPILLED, LineKind.FUSED)
_DIR_CODES = {DirState.ME: 0, DirState.S: 1}
_DIR_BY_CODE = (DirState.ME, DirState.S)
_LOC_CODES = {location: code for code, location
              in enumerate(EntryLocation)}
_LOC_BY_CODE = tuple(EntryLocation)


# ----------------------------------------------------------------------
# Exact columnar LRU classification
# ----------------------------------------------------------------------
def _compact_ids(combined: np.ndarray, mirror) -> tuple:
    """Map block numbers to dense small-integer ids.

    ``mirror`` (the sorted L2 membership column captured by the last
    vectorized scan) is an *accelerator*, not a source of truth: every
    value found in it gets its mirror index as id, values it does not
    cover (e.g. L1 residents filled by a scalar access since the scan)
    get fresh ids past the end, so id equality always coincides with
    block equality.  Returns ``(ids, id_block)`` where ``id_block``
    maps each id back to its block number.  Small ids make the sorts
    below radix sorts (int64 block numbers would time-sort ~6x
    slower).
    """
    if mirror is not None and len(mirror):
        base = len(mirror)
        ids = np.searchsorted(mirror, combined)
        np.minimum(ids, base - 1, out=ids)
        known = mirror[ids] == combined
        if known.all():
            return ids, mirror
        unknown = ~known
        extra, inverse = np.unique(combined[unknown],
                                   return_inverse=True)
        ids[unknown] = base + inverse
        return ids, np.concatenate([mirror, extra])
    id_block, ids = np.unique(combined, return_inverse=True)
    return ids, id_block


def _column_stream(blocks: np.ndarray, set_mask: int, ways: int,
                   od_sets, mirror) -> tuple:
    """Classify one LRU array's access stream as column operations.

    ``blocks`` is the (sub)sequence of block numbers presented to the
    array, in order; ``od_sets`` is the array's live per-set ordered
    mapping list (LRU-to-MRU), read only for the initial contents of
    the sets the stream touches.  Returns ``(flags, touched, ids,
    id_block)``:

    * ``flags[i]`` -- True iff access ``i`` hits, under the scalar
      semantics that every access leaves its block at MRU (hits touch,
      misses fill and evict the LRU block of a full set);
    * ``touched`` -- the distinct stream blocks in ascending
      last-occurrence order (moving each to MRU in this order
      reproduces the final recency state of the whole stream);
    * ``ids`` / ``id_block`` -- per-access compact block ids and the
      id-to-block map (for derived per-block aggregations).
    """
    n = len(blocks)
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return np.zeros(0, dtype=bool), [], empty, empty
    # Initial residency enters as a *virtual prefix*: replaying a
    # set's contents in LRU-to-MRU order into an empty array recreates
    # the set exactly (<= W distinct fills, no evictions), after which
    # hit flags depend only on the combined sequence.
    sets_dtype = np.uint16 if set_mask < 65536 else np.int64
    sets_stream = (blocks & set_mask).astype(sets_dtype)
    virtual: List[int] = []
    for set_index in np.flatnonzero(
            np.bincount(sets_stream, minlength=set_mask + 1)).tolist():
        virtual.extend(od_sets[set_index].keys())
    if virtual:
        combined = np.concatenate([
            np.asarray(virtual, dtype=np.int64), blocks])
    else:
        combined = blocks
    m = len(combined)
    ids, id_block = _compact_ids(combined, mirror)
    keys = ids.astype(np.uint16) if len(id_block) < 65536 else ids
    # Chain equal blocks with a stable value sort: within a chain,
    # positions stay in stream order, so chain neighbours are previous
    # and next occurrences.
    value_order = np.argsort(keys, kind="stable")
    chained = keys[value_order]
    chain_start = np.empty(m, dtype=bool)
    chain_start[0] = True
    np.not_equal(chained[1:], chained[:-1], out=chain_start[1:])
    prev = np.full(m, -1, dtype=np.int64)
    linked = ~chain_start[1:]
    prev[value_order[1:][linked]] = value_order[:-1][linked]
    # Last occurrences (chain ends) at or past the virtual prefix are
    # the stream-touched blocks; sorted by position they give the
    # final recency order.
    chain_end = np.empty(m, dtype=bool)
    chain_end[-1] = True
    chain_end[:-1] = chain_start[1:]
    last_positions = value_order[chain_end]
    last_positions = last_positions[last_positions >= m - n]
    last_positions.sort()
    touched = combined[last_positions].tolist()
    # Group by set (stable, so within-set order is preserved); every
    # comparison below happens inside one group.  ``prev`` chains stay
    # within a group (same block implies same set), so chasing them
    # through ``group_rank`` yields group-local predecessors.
    sets_combined = (combined & set_mask).astype(sets_dtype)
    group_order = np.argsort(sets_combined, kind="stable")
    grouped_sets = sets_combined[group_order]
    group_start = np.empty(m, dtype=bool)
    group_start[0] = True
    np.not_equal(grouped_sets[1:], grouped_sets[:-1],
                 out=group_start[1:])
    grouped = keys[group_order]
    eq_prev = np.empty(m, dtype=bool)
    eq_prev[0] = False
    np.equal(grouped[1:], grouped[:-1], out=eq_prev[1:])
    prev_of_grouped = prev[group_order]
    has_prev = prev_of_grouped >= 0
    if ways == 1:
        # One way: hit iff the previous same-set access was this very
        # block, i.e. the grouped predecessor equals it (equal
        # adjacent values are necessarily in the same group).
        flags_grouped = eq_prev
    elif ways == 2:
        # Two ways: the set holds the last two distinct same-set
        # values.  The most recent is the grouped predecessor; the
        # second is the value just before the maximal equal run ending
        # at the predecessor.  A block hits iff its previous
        # occurrence is at or after that run-start-minus-one position.
        group_rank = np.empty(m, dtype=np.int64)
        group_rank[group_order] = np.arange(m)
        # prev_of_grouped == -1 wraps to a garbage rank; has_prev
        # masks those positions.
        prev_rank = group_rank[prev_of_grouped]
        run_change = group_start | ~eq_prev
        run_start = np.maximum.accumulate(
            np.where(run_change, np.arange(m), -1))
        pred_run_start = np.empty(m, dtype=np.int64)
        pred_run_start[0] = 0
        pred_run_start[1:] = run_start[:-1]
        flags_grouped = has_prev & (prev_rank >= pred_run_start - 1)
    else:
        # Wide arrays: a set whose distinct-block count fits the ways
        # never evicts (every re-occurrence hits); the rest get an
        # exact per-set LRU replay.
        flags_grouped = has_prev
        first_positions = value_order[chain_start]
        distinct_per_set = np.bincount(
            sets_combined[first_positions])
        starts = np.flatnonzero(group_start)
        ends = np.append(starts[1:], m)
        replay = distinct_per_set[grouped_sets[starts]] > ways
        for index in np.flatnonzero(replay).tolist():
            begin, end = int(starts[index]), int(ends[index])
            resident: dict = {}
            flags: List[bool] = []
            for block in grouped[begin:end].tolist():
                if block in resident:
                    del resident[block]
                    resident[block] = None
                    flags.append(True)
                else:
                    if len(resident) >= ways:
                        del resident[next(iter(resident))]
                    resident[block] = None
                    flags.append(False)
            flags_grouped[begin:end] = flags
    flags = np.empty(m, dtype=bool)
    flags[group_order] = flags_grouped
    return flags[m - n:], touched, ids[m - n:], id_block


def lru_hit_flags(blocks: np.ndarray, set_mask: int, ways: int,
                  od_sets) -> np.ndarray:
    """Exact per-access hit flags for one LRU array's access stream
    (see :func:`_column_stream`, of which this is the flags half)."""
    if len(blocks) == 0:
        return np.zeros(0, dtype=bool)
    return _column_stream(np.asarray(blocks, dtype=np.int64),
                          set_mask, ways, od_sets, None)[0]


def _last_occurrence_order(blocks: np.ndarray) -> List[int]:
    """Distinct blocks of ``blocks`` ordered by last occurrence
    (earliest-last first) -- the order in which moving each to MRU
    reproduces the final recency state of the whole sequence."""
    order = np.argsort(blocks, kind="stable")
    chained = blocks[order]
    chain_end = np.empty(len(blocks), dtype=bool)
    chain_end[-1] = True
    np.not_equal(chained[1:], chained[:-1], out=chain_end[:-1])
    positions = order[chain_end]
    positions.sort()
    return blocks[positions].tolist()


class ColumnarSlotKernel(SlotKernel):
    """A :class:`SlotKernel` whose scan and retirement are columnar.

    Drop-in for :func:`repro.kernel.batched.drive_batched`: the driver
    machinery (horizons, journal absorption, adaptive degraded mode)
    is inherited unchanged, so every exactness argument of the batched
    kernel applies; only *how* a classified safe run is processed
    differs, and only when the run is long enough to amortize the
    column setup (:data:`VEC_MIN_RUN`).
    """

    __slots__ = ("_np_ops", "_np_blocks", "_vec_scan", "_mirror")

    def __init__(self, core: int, hier, stats, shadow, latency,
                 ops: np.ndarray, addresses: np.ndarray) -> None:
        super().__init__(core, hier, stats, shadow, latency, ops,
                         addresses)
        self._np_ops = np.asarray(ops, dtype=np.int8)
        self._np_blocks = (np.asarray(addresses, dtype=np.int64)
                           >> BLOCK_SHIFT)
        self._vec_scan = True
        self._mirror = None

    # ------------------------------------------------------------------
    # Vectorized classification
    # ------------------------------------------------------------------
    def _scan(self, pos: int) -> None:
        """Classify the upcoming window against an L2 membership mirror.

        Sync point: the mirror (sorted resident blocks + a shared flag)
        is rebuilt from the live object model at every scan, so it can
        never be staler than the cached classification it produces --
        which the inherited epoch/journal machinery already guards.
        When the previous vectorized scan could not amortize its fixed
        cost (short prefix), the scan alternates back to the scalar
        walk, which is cheaper exactly then; both produce the same
        classification, so the choice never affects observables.
        """
        if not self._vec_scan:
            super()._scan(pos)
            if self._cls_safe_end - pos >= SCAN_WINDOW:
                self._vec_scan = True
            return
        end = min(pos + VEC_SCAN_WINDOW, self.length)
        blocks = self._np_blocks[pos:end]
        ops = self._np_ops[pos:end]
        l2_index = self._l2_index
        resident_count = len(l2_index)
        if resident_count == 0:
            prefix = 0
            self._mirror = None
        else:
            mirror = np.fromiter(l2_index.keys(), dtype=np.int64,
                                 count=resident_count)
            shared = np.fromiter(
                (line.state is MESI.S for line in l2_index.values()),
                dtype=bool, count=resident_count)
            sort = np.argsort(mirror)
            mirror = mirror[sort]
            shared = shared[sort]
            # Kept for retirement: blocks the mirror covers get their
            # mirror index as compact sort key (see _compact_ids).
            self._mirror = mirror
            slot = np.searchsorted(mirror, blocks)
            slot = np.minimum(slot, resident_count - 1)
            safe = mirror[slot] == blocks
            safe &= ~((ops == 1) & shared[slot])
            prefix = (len(blocks) if safe.all()
                      else int(np.argmin(safe)))
        if prefix:
            gains = np.where(ops[:prefix] == 1, self._w_step,
                             self._r1_step)
            cum = np.cumsum(gains, dtype=np.int64).tolist()
        else:
            cum = []
        # The scan read live L2 state, so any pending journal entries
        # are already reflected; drop them and sync the epoch.
        hier = self.hier
        del hier.shrink_log[:]
        self._cls_epoch = hier.epoch
        self._cls_base = pos
        self._cls_safe_end = pos + prefix
        self._cls_capped = pos + prefix == end
        self._cls_cum = cum
        if prefix < VEC_SCAN_MIN_PREFIX and end - pos >= VEC_SCAN_MIN_PREFIX:
            self._vec_scan = False

    # ------------------------------------------------------------------
    # Columnar bulk retirement
    # ------------------------------------------------------------------
    def retire_run(self, pos: int, end: int, clock: int,
                   limit: int) -> tuple:
        """Retire classified safe hits ``[pos, end)`` as column
        operations; bit-identical to :meth:`SlotKernel.retire_run`."""
        if end - pos < VEC_MIN_RUN:
            return SlotKernel.retire_run(self, pos, end, clock, limit)
        min_step = (self._w_step if self._w_step < self._r1_step
                    else self._r1_step)
        cap = pos + (limit - clock) // min_step + 1
        if cap < end:
            end = cap
            if end - pos < VEC_MIN_RUN:
                return SlotKernel.retire_run(self, pos, end, clock,
                                             limit)
        ops = self._np_ops[pos:end]
        blocks = self._np_blocks[pos:end]
        is_write = ops == 1
        is_ifetch = ops == 2
        has_ifetch = bool(is_ifetch.any())
        # Exact per-access L1 hit flags.  The L1D sees reads *and*
        # writes (the scalar write path touches or fills the L1D even
        # though its hit level is not observable), the L1I sees
        # ifetches; each stream is classified against its own array.
        # The classification pass also yields each stream's final
        # recency order and per-access block ids, reused below.
        mirror = self._mirror
        if has_ifetch:
            data_positions = np.flatnonzero(~is_ifetch)
            ifetch_positions = np.flatnonzero(is_ifetch)
            l1_hit = np.empty(len(ops), dtype=bool)
            flags, touched_data, data_ids, id_block = _column_stream(
                blocks[data_positions], self._l1d_mask,
                self._l1d_ways, self._l1d_sets, mirror)
            l1_hit[data_positions] = flags
            flags, touched_ifetch, _, _ = _column_stream(
                blocks[ifetch_positions], self._l1i_mask,
                self._l1i_ways, self._l1i_sets, mirror)
            l1_hit[ifetch_positions] = flags
        else:
            l1_hit, touched_data, data_ids, id_block = _column_stream(
                blocks, self._l1d_mask, self._l1d_ways,
                self._l1d_sets, mirror)
            touched_ifetch: List[int] = []
        # Clocks are a prefix sum of the three class constants; the
        # scalar loop stops before the first access whose entry clock
        # reaches the limit, so the retired count is a searchsorted
        # over the (strictly increasing) entry clocks.
        steps = np.where(
            is_write, self._w_step,
            np.where(l1_hit, self._r1_step, self._r2_step)
        ).astype(np.int64)
        cum = np.cumsum(steps)
        retired = int(np.searchsorted(cum[:-1], limit - clock,
                                      side="left")) + 1
        new_clock = int(clock + cum[retired - 1])
        capped = retired < len(ops)
        if capped:
            # The pre-computed per-stream orders and ids cover the
            # whole window; recompute them on the retired prefix.
            blocks = blocks[:retired]
            is_write = is_write[:retired]
            is_ifetch = is_ifetch[:retired]
            l1_hit = l1_hit[:retired]
            has_ifetch = bool(is_ifetch.any())
            if has_ifetch:
                data_blocks = blocks[~is_ifetch]
                ifetch_blocks = blocks[is_ifetch]
                touched_ifetch = (_last_occurrence_order(ifetch_blocks)
                                  if len(ifetch_blocks) else [])
            else:
                data_blocks = blocks
                touched_ifetch = []
            touched_data = (_last_occurrence_order(data_blocks)
                            if len(data_blocks) else [])
        reads = ~is_write
        n_writes = int(np.count_nonzero(is_write))
        n_l1 = int(np.count_nonzero(reads & l1_hit))
        n_l2 = retired - n_writes - n_l1
        # Store finalization: the scalar path bumps the shadow version
        # once per store and leaves the L2 line M/dirty at the final
        # version, so per-block store *counts* determine the end state.
        if n_writes:
            latest = self._shadow_latest
            latest_get = latest.get
            l2_index = self._l2_index
            mesi_m = MESI.M
            if capped:
                written, counts = np.unique(blocks[is_write],
                                            return_counts=True)
                pairs = zip(written.tolist(), counts.tolist())
            else:
                write_in_data = (is_write[data_positions] if has_ifetch
                                 else is_write)
                counts = np.bincount(data_ids[write_in_data])
                nonzero = np.flatnonzero(counts)
                pairs = zip(id_block[nonzero].tolist(),
                            counts[nonzero].tolist())
            for block, count in pairs:
                version = latest_get(block, 0) + count
                latest[block] = version
                line = l2_index[block]
                line.state = mesi_m
                line.dirty = True
                line.version = version
        # L2 recency: every access touches its block to MRU, so the
        # final order moves each distinct touched block to MRU in
        # last-occurrence order (membership never changes in a safe
        # run).  With no ifetches the data stream *is* the run, so its
        # recency order is reused; mixed runs merge the streams.
        l2_sets = self._l2_sets
        l2_mask = self._l2_mask
        l2_order = (_last_occurrence_order(blocks) if has_ifetch
                    else touched_data)
        for block in l2_order:
            l2_sets[block & l2_mask].move_to_end(block)
        # L1 content: the final state of a touched set is the W most
        # recently used distinct blocks -- initial residents (minus
        # those re-touched) below, run-touched blocks above.
        self._rebuild_l1(touched_data, self._l1d_sets,
                         self._l1d_index, self._l1d_mask,
                         self._l1d_ways)
        if touched_ifetch:
            self._rebuild_l1(touched_ifetch, self._l1i_sets,
                             self._l1i_index, self._l1i_mask,
                             self._l1i_ways)
        stats = self.stats
        stats.cycles[self.core] = new_clock
        stats.accesses[self.core] += retired
        stats.l1_hits += n_l1
        stats.l2_hits += n_l2
        if n_l1 or n_l2:
            read_buckets = stats.read_latency_buckets
            read_buckets[self._r1_bucket] += n_l1
            read_buckets[self._r2_bucket] += n_l2
        if n_writes:
            stats.write_latency_buckets[self._w_bucket] += n_writes
        return pos + retired, new_clock

    @staticmethod
    def _rebuild_l1(touched_order: List[int], od_sets, index,
                    set_mask: int, ways: int) -> None:
        """Write the reconstructed final state of every touched set
        back to the object model (the run-boundary sync point).
        ``touched_order`` is the stream's distinct blocks in
        last-occurrence order (from :func:`_column_stream`)."""
        if not touched_order:
            return
        touched_by_set: dict = {}
        for block in touched_order:
            touched_by_set.setdefault(block & set_mask,
                                      []).append(block)
        for set_index, touched in touched_by_set.items():
            od = od_sets[set_index]
            touched_set = set(touched)
            stack = [block for block in od if block not in touched_set]
            stack += touched
            final = stack[-ways:]
            final_set = set(final)
            existing = dict(od)
            od.clear()
            for block in final:
                line = existing.get(block)
                if line is None:
                    line = L1Line(block)
                    index[block] = line
                od[block] = line
            for block in existing:
                if block not in final_set:
                    del index[block]


# ----------------------------------------------------------------------
# Structure-of-arrays images (testable sync-point contract)
# ----------------------------------------------------------------------
@dataclass
class CacheColumns:
    """SoA image of one private set-associative array.

    Lines are stored set-major in LRU-to-MRU order; ``offsets[s]`` /
    ``offsets[s+1]`` delimit set ``s``.  The L1 arrays carry presence
    only (state/version/dirty/is_code are empty); the L2 arrays carry
    the full line record.
    """

    blocks: np.ndarray                 # int64, set-major LRU->MRU
    offsets: np.ndarray                # int64, len == sets + 1
    state: np.ndarray                  # int8 MESI codes (L2 only)
    version: np.ndarray                # int64 (L2 only)
    dirty: np.ndarray                  # bool (L2 only)
    is_code: np.ndarray                # bool (L2 only)

    @classmethod
    def capture(cls, cache, with_state: bool) -> "CacheColumns":
        blocks: List[int] = []
        offsets = [0]
        state: List[int] = []
        version: List[int] = []
        dirty: List[bool] = []
        is_code: List[bool] = []
        for set_index in range(cache.geometry.sets):
            for line in cache.set_lines(set_index):
                blocks.append(line.block)
                if with_state:
                    state.append(_MESI_CODES[line.state])
                    version.append(line.version)
                    dirty.append(line.dirty)
                    is_code.append(line.is_code)
            offsets.append(len(blocks))
        return cls(np.asarray(blocks, dtype=np.int64),
                   np.asarray(offsets, dtype=np.int64),
                   np.asarray(state, dtype=np.int8),
                   np.asarray(version, dtype=np.int64),
                   np.asarray(dirty, dtype=bool),
                   np.asarray(is_code, dtype=bool))

    def restore(self, cache, with_state: bool) -> None:
        for set_index in range(cache.geometry.sets):
            begin = int(self.offsets[set_index])
            end = int(self.offsets[set_index + 1])
            lines = []
            for position in range(begin, end):
                block = int(self.blocks[position])
                if with_state:
                    lines.append(L2Line(
                        block,
                        _MESI_BY_CODE[int(self.state[position])],
                        int(self.version[position]),
                        dirty=bool(self.dirty[position]),
                        is_code=bool(self.is_code[position])))
                else:
                    lines.append(L1Line(block))
            cache.load_set(set_index, lines)


@dataclass
class HierarchyColumns:
    """SoA image of one :class:`~repro.caches.private_cache.
    PrivateHierarchy` (both L1s and the L2)."""

    l1i: CacheColumns
    l1d: CacheColumns
    l2: CacheColumns

    @classmethod
    def capture(cls, hier) -> "HierarchyColumns":
        return cls(CacheColumns.capture(hier._l1i, False),  # noqa: SLF001
                   CacheColumns.capture(hier._l1d, False),  # noqa: SLF001
                   CacheColumns.capture(hier._l2, True))    # noqa: SLF001

    def restore(self, hier) -> None:
        self.l1i.restore(hier._l1i, False)                  # noqa: SLF001
        self.l1d.restore(hier._l1d, False)                  # noqa: SLF001
        self.l2.restore(hier._l2, True)                     # noqa: SLF001


@dataclass
class LLCColumns:
    """SoA image of one LLC bank, directory-entry occupancy included.

    Frames are set-major in LRU-to-MRU order.  ``entry_owner`` is -1
    for ownerless entries and for frames with no entry; the aligned
    entry columns are only meaningful where ``has_entry`` is set.
    """

    blocks: np.ndarray                 # int64
    offsets: np.ndarray                # int64, len == sets + 1
    kind: np.ndarray                   # int8 LineKind codes
    dirty: np.ndarray                  # bool
    version: np.ndarray                # int64
    has_entry: np.ndarray              # bool
    entry_state: np.ndarray            # int8 DirState codes
    entry_owner: np.ndarray            # int64, -1 == None
    entry_sharers: np.ndarray          # int64 bit-vector
    entry_location: np.ndarray         # int8 EntryLocation codes
    entry_nru: np.ndarray              # bool

    @classmethod
    def capture(cls, bank) -> "LLCColumns":
        columns = {name: [] for name in
                   ("blocks", "kind", "dirty", "version", "has_entry",
                    "entry_state", "entry_owner", "entry_sharers",
                    "entry_location", "entry_nru")}
        offsets = [0]
        for set_index in range(bank.sets):
            for line in bank.frames_in_set(set_index):
                columns["blocks"].append(line.block)
                columns["kind"].append(_KIND_CODES[line.kind])
                columns["dirty"].append(line.dirty)
                columns["version"].append(line.version)
                entry = line.entry
                columns["has_entry"].append(entry is not None)
                columns["entry_state"].append(
                    _DIR_CODES[entry.state] if entry else 0)
                columns["entry_owner"].append(
                    entry.owner if entry and entry.owner is not None
                    else -1)
                columns["entry_sharers"].append(
                    entry.sharers if entry else 0)
                columns["entry_location"].append(
                    _LOC_CODES[entry.location] if entry else 0)
                columns["entry_nru"].append(
                    entry.nru_ref if entry else False)
            offsets.append(len(columns["blocks"]))
        return cls(np.asarray(columns["blocks"], dtype=np.int64),
                   np.asarray(offsets, dtype=np.int64),
                   np.asarray(columns["kind"], dtype=np.int8),
                   np.asarray(columns["dirty"], dtype=bool),
                   np.asarray(columns["version"], dtype=np.int64),
                   np.asarray(columns["has_entry"], dtype=bool),
                   np.asarray(columns["entry_state"], dtype=np.int8),
                   np.asarray(columns["entry_owner"], dtype=np.int64),
                   np.asarray(columns["entry_sharers"],
                              dtype=np.int64),
                   np.asarray(columns["entry_location"],
                              dtype=np.int8),
                   np.asarray(columns["entry_nru"], dtype=bool))

    def restore(self, bank) -> None:
        """Rebuild ``bank``'s frames from the columns.

        Entries are reconstructed as fresh :class:`DirectoryEntry`
        objects (field-equal, not identical): the restore seam exists
        for differential testing and diagnostics, where the bank under
        reconstruction owns its entries.
        """
        for set_index in range(bank.sets):
            begin = int(self.offsets[set_index])
            end = int(self.offsets[set_index + 1])
            lines = []
            for position in range(begin, end):
                entry: Optional[DirectoryEntry] = None
                if self.has_entry[position]:
                    owner = int(self.entry_owner[position])
                    entry = DirectoryEntry(
                        int(self.blocks[position]),
                        _DIR_BY_CODE[int(self.entry_state[position])],
                        owner=None if owner < 0 else owner,
                        sharers=int(self.entry_sharers[position]),
                        location=_LOC_BY_CODE[
                            int(self.entry_location[position])],
                        nru_ref=bool(self.entry_nru[position]))
                lines.append(LLCLine(
                    int(self.blocks[position]),
                    _KIND_BY_CODE[int(self.kind[position])],
                    dirty=bool(self.dirty[position]),
                    version=int(self.version[position]),
                    entry=entry))
            bank.load_set(set_index, lines)


__all__ = ["CacheColumns", "ColumnarSlotKernel", "HierarchyColumns",
           "LLCColumns", "VEC_MIN_RUN", "VEC_SCAN_MIN_PREFIX",
           "VEC_SCAN_WINDOW", "lru_hit_flags"]
