"""Scalar-vs-bulk-kernel differential verification (``repro verify
--kernel-diff``).

The bulk kernels' contract is *bit identity* (see
:mod:`repro.kernel`): for any workload on any model, the final
statistics, the final shadow memory, and the recorded event stream --
order, payloads, and step tags -- must equal the scalar runner's. This
module enforces the contract mechanically: it draws adversarial traces
from the differential fuzzer's generator (:mod:`repro.verify.tracegen`),
converts each into a per-core :class:`~repro.workloads.trace.Workload`,
and runs it on every model of the fuzz matrix
(:func:`repro.verify.models.model_matrix`) -- once under the scalar
reference and once per kernel under test (``batched`` and
``vectorized`` by default) -- under full event recording, diffing all
three observables against the single scalar capture.

The fuzz patterns are exactly the right adversary here: they drive the
protocol through the directory-pressure regimes (WB_DE, fuse/spill,
DEV storms, corrupted-home forwarding) where the bulk kernels must
*fall back* to the scalar path, so a classification bug that retires an
access it should not have surfaces as a stats or event diff within a few
dozen accesses.

A divergence is reported per (model, trace, observable); the trace
index and seed reproduce it exactly (``generator.trace(index)`` is a
pure function of ``(seed, index)``).
"""

from __future__ import annotations

import dataclasses
from copy import deepcopy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.addressing import BLOCK_SHIFT
from repro.obs import EventBus, attach, attach_multisocket
from repro.verify.models import (ModelSpec, TRACE_CORES, micro_config,
                                 model_matrix)
from repro.verify.tracegen import FuzzTrace, TraceGenerator, TraceGeometry
from repro.workloads.trace import CoreTrace, Workload


class RecordingSink:
    """Obs sink keeping every event (the ring buffer caps capacity)."""

    def __init__(self) -> None:
        self.events: List = []

    def handle(self, event) -> None:
        self.events.append(event)


def workload_of(trace: FuzzTrace) -> Workload:
    """Split an interleaved fuzz trace into per-core runner streams.

    The fuzzer's global step order dissolves -- the runner re-interleaves
    the per-core streams by simulated time -- but both kernels see the
    *same* per-core streams, which is all the differential needs, and
    the per-core suffix of each adversarial pattern keeps its character
    (same blocks, same op mix, same set targets).
    """
    per_core: List[List[Tuple[int, int]]] = [[] for _ in
                                             range(trace.n_cores)]
    for core, op, block in trace.steps:
        per_core[core].append((op, block << BLOCK_SHIFT))
    traces = [CoreTrace(core,
                        np.array([s[0] for s in steps], dtype=np.int8),
                        np.array([s[1] for s in steps], dtype=np.int64))
              for core, steps in enumerate(per_core)]
    return Workload(trace.name, traces)


@dataclass
class KernelRun:
    """The three observables of one (model, trace, kernel) run."""

    stats: List[dict]                  # vars() snapshot per socket
    shadows: List[Dict[int, int]]      # committed versions per socket
    events: List                       # recorded Event stream


def capture(spec: ModelSpec, workload: Workload, kernel: str,
            check_every: int = 0) -> KernelRun:
    """Run ``workload`` on a fresh ``spec`` system under ``kernel``."""
    from repro.harness.runner import run_multisocket_workload, run_workload

    spec = dataclasses.replace(spec,
                               config=spec.config.with_(kernel=kernel))
    system = spec.build()
    bus = EventBus()
    recorder = RecordingSink()
    bus.subscribe(recorder)
    if spec.n_sockets == 1:
        attach(system, bus)
        run_workload(system, workload,
                     check_invariants_every=check_every)
        stats = [system.stats]
        shadows = [dict(system.shadow._latest)]     # noqa: SLF001
    else:
        attach_multisocket(system, bus)
        run_multisocket_workload(system, workload,
                                 check_invariants_every=check_every)
        stats = list(system.stats)
        shadows = [dict(socket.shadow._latest)      # noqa: SLF001
                   for socket in system.sockets]
    return KernelRun([deepcopy(vars(s)) for s in stats], shadows,
                     recorder.events)


def diff_runs(scalar: KernelRun, other: KernelRun,
              label: str = "batched") -> List[str]:
    """Human-readable field-level diffs (empty = bit-identical)."""
    diffs: List[str] = []
    for socket, (s, b) in enumerate(zip(scalar.stats, other.stats)):
        for key in s:
            if s[key] != b[key]:
                diffs.append(f"stats[{socket}].{key}: "
                             f"scalar={s[key]!r} {label}={b[key]!r}")
    for socket, (s, b) in enumerate(zip(scalar.shadows,
                                        other.shadows)):
        if s != b:
            delta = {k for k in set(s) | set(b)
                     if s.get(k) != b.get(k)}
            diffs.append(f"shadow[{socket}]: {len(delta)} blocks "
                         f"disagree (e.g. {sorted(delta)[:4]})")
    if scalar.events != other.events:
        limit = min(len(scalar.events), len(other.events))
        at = next((i for i in range(limit)
                   if scalar.events[i] != other.events[i]), limit)
        detail = (f"first mismatch at event {at}: "
                  f"scalar={scalar.events[at]!r} "
                  f"{label}={other.events[at]!r}"
                  if at < limit else
                  f"lengths differ: scalar={len(scalar.events)} "
                  f"{label}={len(other.events)}")
        diffs.append(f"events: {detail}")
    return diffs


@dataclass
class KernelDivergence:
    """One (model, trace, kernel) triple that disagreed with scalar."""

    model: str
    trace: FuzzTrace
    trace_index: int
    diffs: List[str]
    kernel: str = "batched"
    npz_path: Optional[str] = None

    def __str__(self) -> str:
        text = (f"{self.model} x {self.trace.name} [{self.kernel}]: "
                + "; ".join(self.diffs))
        if self.npz_path:
            text += f" -> {self.npz_path}"
        return text


@dataclass
class KernelDiffReport:
    """Outcome of one kernel-diff campaign."""

    seed: int
    budget: int
    models: Tuple[str, ...]
    kernels: Tuple[str, ...] = ("batched", "vectorized")
    runs: int = 0
    divergences: List[KernelDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [f"kernel-diff seed={self.seed} budget={self.budget}: "
                 f"{self.budget} traces x {len(self.models)} models "
                 f"x ({', '.join(self.kernels)}), "
                 f"{self.runs} kernel pairs"]
        for divergence in self.divergences:
            lines.append(f"  DIVERGENCE: {divergence}")
        if self.ok:
            lines.append(f"  {', '.join(self.kernels)} "
                         "are bit-identical to scalar")
        return "\n".join(lines)


def run_kernel_diff(seed: int, budget: int,
                    models: Optional[Sequence[ModelSpec]] = None,
                    check_every: int = 0,
                    steps_per_trace: int = 48,
                    out_dir=None,
                    kernels: Sequence[str] = ("batched", "vectorized")
                    ) -> KernelDiffReport:
    """Run a ``budget``-trace scalar-vs-``kernels`` campaign.

    Each (trace, model) pair is captured once under scalar and once per
    kernel in ``kernels``, every kernel diffed against the same scalar
    reference.  Reproducible: traces are pure functions of ``(seed,
    index)``.  ``out_dir`` receives a replayable ``.npz`` per divergent
    trace.
    """
    specs = list(models) if models is not None else model_matrix()
    geometry = TraceGeometry.of(micro_config())
    generator = TraceGenerator(geometry, seed,
                               steps_per_trace=steps_per_trace)
    report = KernelDiffReport(seed, budget,
                              tuple(spec.name for spec in specs),
                              tuple(kernels))
    for index in range(budget):
        trace = generator.trace(index)
        workload = workload_of(trace)
        for spec in specs:
            scalar = capture(spec, workload, "scalar", check_every)
            for kernel in kernels:
                other = capture(spec, workload, kernel, check_every)
                report.runs += 1
                diffs = diff_runs(scalar, other, label=kernel)
                if not diffs:
                    continue
                divergence = KernelDivergence(spec.name, trace, index,
                                              diffs, kernel=kernel)
                if out_dir is not None:
                    from pathlib import Path
                    out = Path(out_dir)
                    out.mkdir(parents=True, exist_ok=True)
                    npz = out / (f"kerneldiff-{kernel}-{spec.name}-"
                                 f"{trace.name}.npz")
                    trace.save(npz)
                    divergence.npz_path = str(npz)
                report.divergences.append(divergence)
    return report


__all__ = ["KernelDiffReport", "KernelDivergence", "KernelRun",
           "RecordingSink", "capture", "diff_runs", "run_kernel_diff",
           "workload_of", "TRACE_CORES"]
