"""The batched fast path: classify safe hits, retire them in bulk.

Definitions
-----------

An access is a **safe hit** when the issuing core's L2 holds the block
and the operation needs no permission change that involves the uncore:

* READ / IFETCH of any L2-resident block (M, E, or S), and
* WRITE of an L2-resident block in M or E (the E->M transition is
  silent).

A WRITE to an S copy is an upgrade (uncore round trip) and any L2 miss
leaves the core -- both are *unsafe* and are issued through the scalar
protocol unchanged.

Why bulk retirement is exact
----------------------------

The scalar runner retires accesses in ``(local_clock, slot)`` heap
order.  Reproducing that order literally caps every bulk run at the
next slot's clock -- one or two accesses when clocks interleave finely
-- so this driver relaxes the *order* while preserving every observable
the scalar order determines:

1. **Safe hits commute.**  A safe hit touches only the issuing core's
   private recency state (L1/L2 LRU, L1 fills, silent E->M), the core's
   own clock and counters, and -- for stores -- the shadow memory's
   *per-block* version counter.  None of that is observable by another
   core's safe hit, and SWMR guarantees two cores never hold safe-write
   permission on the same block, so any schedule that keeps each core's
   program order and retires the same *set* of accesses reaches the
   same state.

2. **Horizons bound run-ahead.**  Each slot's classified safe prefix
   yields a provable lower bound on the clock at which its next
   *unsafe* access can issue (its current clock plus the sum of
   per-class minimum latencies over the prefix).  A slot may bulk-run
   past other slots' clocks but never to or past any other slot's
   horizon, so no access that scalar order places *after* another
   slot's next unsafe access is ever retired early.

3. **Unsafe accesses retire at the exact scalar position.**  An unsafe
   access issues only while its ``(clock, slot)`` key is the strict
   heap minimum.  Heap-minimality means every access ordered before it
   has retired; the horizon bound means no access ordered after it has.
   The retired set at that instant is therefore *exactly* the scalar
   prefix, and by (1) the machine state, the statistics, and the
   ``obs.step`` access index are bit-identical to the scalar runner's.
   Since events are only emitted by unsafe accesses, the event stream
   -- order, payloads, and step tags -- is bit-identical too.

During the warm-up region the driver runs in exact scalar order
instead (run-ahead across the statistics reset at the region-of-
interest boundary would retire a different warm-up *set*); gauge
sampling (``sample_fn``) keeps the scalar runner outright, because
gauges observe intermediate states that are schedule-dependent by
nature (see :func:`repro.harness.runner.run_workload`).

Classification staleness is tracked with an epoch counter plus a
**shrink journal** on
:class:`~repro.caches.private_cache.PrivateHierarchy`: every mutation
that can turn a previously safe hit unsafe (invalidation, downgrade,
re-state to S, the L2 victim of a fill) bumps the epoch and records the
affected block -- including mutations triggered by *other* cores'
scalar accesses or by another socket.  On an epoch mismatch the kernel
*absorbs* the journal instead of rescanning: it truncates its cached
safe prefix at the first occurrence of any journaled block (a C-level
``list.index`` probe per entry) and clears the journal.  Mutations that
only *extend* safety (the fill itself, the upgrade grant to E, the
silent E->M) do not journal, so the cached classification may
under-approximate -- harmless, because an access at the truncated
boundary simply goes through the scalar hit path, which is
observationally identical for a safe hit (same stats, no events).
Epochs only move during unsafe accesses, so a cached classification --
and the horizon derived from it -- stays valid for as long as the
driver relies on it, and every horizon is re-derived from live epochs
before it bounds a run.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

import numpy as np

from repro.caches.block import L1Line, MESI
from repro.common.addressing import BLOCK_SHIFT

#: Accesses classified per scan. The scan stops at the first unsafe
#: access anyway; the window only caps the work per scan in long
#: all-hit stretches, where its cost is amortized over as many
#: bulk-retired accesses.
SCAN_WINDOW = 512

#: Steady-state adaptive-mode evaluation window (accesses).  Every
#: window the driver re-decides between bulk mode (scan + run-ahead
#: retirement) and degraded mode (plain scalar issue in exact heap
#: order): bulk machinery only pays for itself when safe runs amortize
#: it, which miss- and share-heavy phases do not.
ADAPT_WINDOW = 4096

#: First evaluation window.  The window *ramps* (doubling each
#: evaluation) from this up to :data:`ADAPT_WINDOW`, so share-heavy
#: workloads whose bulk runs never get long -- where a full 4096 x
#: streak of bulk overhead used to cost ~10% end-to-end
#: (cpu2017/xalancbmk) -- degrade within the first ~1.5k accesses,
#: while hit-heavy workloads quickly grow the window back to the cheap
#: steady-state cadence.  Ramping is self-calibration, not a tunable:
#: early small windows sample the workload's run-length regime at low
#: commitment.
ADAPT_WINDOW_MIN = 512

#: Degrade when the mean bulk-run length over a window drops below
#: this (measured crossover: runs shorter than ~3 accesses cost more
#: in scan/limit/turn overhead than they save over scalar hits).
DEGRADE_RUN_LENGTH = 3.0

#: Promote back to bulk mode when the windowed private-hit fraction
#: (observable from the stats counters while degraded) exceeds this.
#: Slightly above the degrade crossover for hysteresis.
PROMOTE_HIT_FRACTION = 0.95

#: Consecutive qualifying windows required before switching modes.
#: During the calibration ramp (window still below
#: :data:`ADAPT_WINDOW`) a *single* bad window degrades immediately:
#: the ramp exists to find miss-heavy workloads fast, and every extra
#: bulk window spent confirming the signal costs scan overhead that
#: the 0.95x no-regression floor cannot absorb.
ADAPT_STREAK = 2

_NO_LIMIT = 1 << 62


def _bucket(latency: int, n_buckets: int) -> int:
    """The power-of-two latency bucket (mirrors record_latency)."""
    return min(max(latency, 1).bit_length() - 1, n_buckets - 1)


class SlotKernel:
    """Fast-path state for one scheduling slot (one core of one socket).

    Holds the slot's trace as plain lists for the scan and retirement
    loops, stable references into the private hierarchy and the
    per-socket stats/shadow the slot retires into, and the cached
    classification of the upcoming safe prefix.
    """

    __slots__ = ("core", "hier", "stats", "length", "ops", "blocks",
                 "_hot", "_cls_epoch", "_cls_base", "_cls_safe_end",
                 "_cls_capped", "_cls_cum",
                 "_l1i_index", "_l1i_sets", "_l1i_mask", "_l1i_ways",
                 "_l1d_index", "_l1d_sets", "_l1d_mask", "_l1d_ways",
                 "_l2_index", "_l2_sets", "_l2_mask", "_shadow_latest",
                 "_r1_step", "_r2_step", "_w_step",
                 "_r1_bucket", "_r2_bucket", "_w_bucket")

    def __init__(self, core: int, hier, stats, shadow, latency,
                 ops: np.ndarray, addresses: np.ndarray) -> None:
        self.core = core
        self.hier = hier
        self.stats = stats
        self.ops = np.asarray(ops, dtype=np.int8).tolist()
        self.blocks = (np.asarray(addresses, dtype=np.int64)
                       >> BLOCK_SHIFT).tolist()
        self.length = len(self.ops)
        self._cls_epoch = -1
        self._cls_base = 0
        self._cls_safe_end = 0
        self._cls_capped = True
        self._cls_cum: List[int] = []
        # The container objects below are created once per cache and
        # mutated in place, so the references stay valid across the
        # whole run (stats.cycles does NOT: reset() replaces it, so it
        # is re-fetched at every flush).
        l1i, l1d, l2 = hier._l1i, hier._l1d, hier._l2  # noqa: SLF001
        self._l1i_index = l1i._index                   # noqa: SLF001
        self._l1i_sets = l1i._sets                     # noqa: SLF001
        self._l1i_mask = l1i._set_mask                 # noqa: SLF001
        self._l1i_ways = l1i._n_ways                   # noqa: SLF001
        self._l1d_index = l1d._index                   # noqa: SLF001
        self._l1d_sets = l1d._sets                     # noqa: SLF001
        self._l1d_mask = l1d._set_mask                 # noqa: SLF001
        self._l1d_ways = l1d._n_ways                   # noqa: SLF001
        self._l2_index = l2._index                     # noqa: SLF001
        self._l2_sets = l2._sets                       # noqa: SLF001
        self._l2_mask = l2._set_mask                   # noqa: SLF001
        self._shadow_latest = shadow._latest           # noqa: SLF001
        # Latency constants of the three hit classes (see CMPSystem
        # _read/_write): these are exactly what the scalar path records.
        r1_lat = latency.l1_hit
        r2_lat = latency.l1_hit + latency.l2_hit
        w_lat = max(1, int(latency.l1_hit
                           * latency.store_visibility_fraction))
        compute = latency.compute_per_access
        self._r1_step = r1_lat + compute
        self._r2_step = r2_lat + compute
        self._w_step = w_lat + compute
        n_buckets = stats.LATENCY_BUCKETS
        self._r1_bucket = _bucket(r1_lat, n_buckets)
        self._r2_bucket = _bucket(r2_lat, n_buckets)
        self._w_bucket = _bucket(w_lat, n_buckets)
        # One-shot binding tuple for retire_run: a single unpack
        # replaces ~20 attribute loads per call, which matters when
        # tight horizons keep bulk runs short.
        self._hot = (self.ops, self.blocks,
                     self._l1i_index, self._l1i_sets, self._l1i_mask,
                     self._l1i_ways, self._l1d_index, self._l1d_sets,
                     self._l1d_mask, self._l1d_ways, self._l2_index,
                     self._l2_sets, self._l2_mask, self._shadow_latest,
                     self._r1_step, self._r2_step, self._w_step)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _absorb(self, pos: int) -> None:
        """Reconcile the cached classification with the hierarchy's
        shrink journal.

        Cheaper than a rescan: each journaled block costs one C-level
        ``list.index`` probe over the remaining cached window, and the
        common case (the mutated block is not in this slot's upcoming
        prefix) costs nothing else.  Truncation clears ``_cls_capped``
        so an access at the truncated boundary is treated as unsafe and
        issued through the scalar path -- observationally identical
        whether it is still a hit or not.  The cumulative-gain list
        stays valid under truncation (it is only read up to the prefix
        end).
        """
        hier = self.hier
        log = hier.shrink_log
        if log:
            end = self._cls_safe_end
            if end > pos:
                index = self.blocks.index
                for block in log:
                    try:
                        hit = index(block, pos, end)
                    except ValueError:
                        continue
                    end = hit
                if end < self._cls_safe_end:
                    self._cls_safe_end = end
                    self._cls_capped = False
            del log[:]
        self._cls_epoch = hier.epoch

    def safe_end(self, pos: int) -> int:
        """End of the classified safe prefix starting at ``pos``.

        ``safe_end == pos`` means the next access is unsafe.
        """
        if self._cls_epoch != self.hier.epoch:
            self._absorb(pos)
        if (pos > self._cls_safe_end
                or (pos == self._cls_safe_end and self._cls_capped)):
            self._scan(pos)
        return self._cls_safe_end

    def horizon(self, clock: int, pos: int) -> int:
        """Provable lower bound on the clock of the next unsafe issue.

        Every access in the safe prefix advances the clock by at least
        its class minimum (L1-hit latency for loads, store-visibility
        latency for stores), so the next unsafe access -- at or beyond
        the prefix end -- cannot issue before ``clock`` plus that sum.
        """
        if self._cls_epoch != self.hier.epoch:
            self._absorb(pos)
        if (pos > self._cls_safe_end
                or (pos == self._cls_safe_end and self._cls_capped)):
            self._scan(pos)
        end = self._cls_safe_end
        if pos >= end:
            return clock
        cum = self._cls_cum
        base = self._cls_base
        gain = cum[end - base - 1]
        if pos > base:
            gain -= cum[pos - base - 1]
        return clock + gain

    def _scan(self, pos: int) -> None:
        """Walk the next window of the trace until the first access the
        current L2 state cannot service silently, accumulating per-
        access minimum clock gains for :meth:`horizon`."""
        l2_get = self._l2_index.get
        shared = MESI.S
        r_min = self._r1_step
        w_min = self._w_step
        end = min(pos + SCAN_WINDOW, self.length)
        cum: List[int] = []
        cum_append = cum.append
        gain = 0
        for op, block in zip(self.ops[pos:end], self.blocks[pos:end]):
            line = l2_get(block)
            if line is None:
                break
            if op == 1:
                if line.state is shared:
                    break
                gain += w_min
            else:
                gain += r_min
            cum_append(gain)
        i = pos + len(cum)
        # The scan read live L2 state, so any pending journal entries
        # are already reflected; drop them and sync the epoch.
        hier = self.hier
        del hier.shrink_log[:]
        self._cls_epoch = hier.epoch
        self._cls_base = pos
        self._cls_safe_end = i
        self._cls_capped = i == end
        self._cls_cum = cum

    def reset_classification(self) -> None:
        """Invalidate the cached classification and drop the journal.

        Used by the driver while degraded: nothing consumes the journal
        in that mode, so it is flushed periodically and the cached
        prefix marked for a full rescan on the next consultation.
        """
        hier = self.hier
        del hier.shrink_log[:]
        self._cls_epoch = hier.epoch
        self._cls_base = 0
        self._cls_safe_end = 0
        self._cls_capped = True
        self._cls_cum = []

    # ------------------------------------------------------------------
    # Bulk retirement
    # ------------------------------------------------------------------
    def retire_run(self, pos: int, end: int, clock: int,
                   limit: int) -> tuple:
        """Retire classified safe hits ``[pos, end)`` while the slot's
        clock stays under ``limit``; returns ``(new_pos, new_clock)``.

        Replays exactly what the scalar hit paths do: L2/L1 recency
        touches, L1 fills (L1 victims need no action), shadow commits
        and the silent E->M on stores, per-class latencies, latency
        buckets, and per-core counters.
        """
        (ops, blocks, l1i_index, l1i_sets, l1i_mask, l1i_ways,
         l1d_index, l1d_sets, l1d_mask, l1d_ways, l2_index, l2_sets,
         l2_mask, latest, r1_step, r2_step, w_step) = self._hot
        latest_get = latest.get
        mesi_m = MESI.M
        n_l1 = n_l2 = n_writes = 0
        # Every retired access advances the clock by at least the
        # smallest per-class step, which bounds how much of the run the
        # limit can admit -- slicing to that bound keeps the zip cheap
        # when the limit binds early.
        min_step = w_step if w_step < r1_step else r1_step
        cap = pos + (limit - clock) // min_step + 1
        if cap < end:
            end = cap
        for opc, block in zip(ops[pos:end], blocks[pos:end]):
            if clock >= limit:
                break
            if opc == 0:                              # READ
                if block in l1d_index:
                    l1d_sets[block & l1d_mask].move_to_end(block)
                    l2_sets[block & l2_mask].move_to_end(block)
                    n_l1 += 1
                    clock += r1_step
                else:
                    l2_sets[block & l2_mask].move_to_end(block)
                    lru = l1d_sets[block & l1d_mask]
                    if len(lru) >= l1d_ways:
                        victim = lru.popitem(last=False)[1]
                        del l1d_index[victim.block]
                    line = L1Line(block)
                    lru[block] = line
                    l1d_index[block] = line
                    n_l2 += 1
                    clock += r2_step
            elif opc == 1:                            # WRITE (M/E hit)
                l2_sets[block & l2_mask].move_to_end(block)
                if block in l1d_index:
                    l1d_sets[block & l1d_mask].move_to_end(block)
                else:
                    lru = l1d_sets[block & l1d_mask]
                    if len(lru) >= l1d_ways:
                        victim = lru.popitem(last=False)[1]
                        del l1d_index[victim.block]
                    line = L1Line(block)
                    lru[block] = line
                    l1d_index[block] = line
                version = latest_get(block, 0) + 1
                latest[block] = version
                l2_line = l2_index[block]
                l2_line.state = mesi_m
                l2_line.dirty = True
                l2_line.version = version
                n_writes += 1
                clock += w_step
            else:                                     # IFETCH
                if block in l1i_index:
                    l1i_sets[block & l1i_mask].move_to_end(block)
                    l2_sets[block & l2_mask].move_to_end(block)
                    n_l1 += 1
                    clock += r1_step
                else:
                    l2_sets[block & l2_mask].move_to_end(block)
                    lru = l1i_sets[block & l1i_mask]
                    if len(lru) >= l1i_ways:
                        victim = lru.popitem(last=False)[1]
                        del l1i_index[victim.block]
                    line = L1Line(block)
                    lru[block] = line
                    l1i_index[block] = line
                    n_l2 += 1
                    clock += r2_step
        # Each retired access bumped exactly one of the three counters.
        retired = n_l1 + n_l2 + n_writes
        if retired:
            stats = self.stats
            core = self.core
            # The entry clock came from stats.cycles[core] (single
            # writer), so the absolute assignment equals the scalar
            # sequence of advance_core() calls.
            stats.cycles[core] = clock
            stats.accesses[core] += retired
            stats.l1_hits += n_l1
            stats.l2_hits += n_l2
            if n_l1 or n_l2:
                read_buckets = stats.read_latency_buckets
                read_buckets[self._r1_bucket] += n_l1
                read_buckets[self._r2_bucket] += n_l2
            if n_writes:
                stats.write_latency_buckets[self._w_bucket] += n_writes
        return pos + retired, clock


def drive_batched(slots: List[SlotKernel],
                  issue: Callable[[int, int], int],
                  check: Optional[Callable[[], None]] = None,
                  check_every: int = 0,
                  warmup: int = 0,
                  on_warmup: Optional[Callable[[], None]] = None,
                  obs=None) -> int:
    """Drive every slot to completion; see the module docstring for the
    exactness argument.

    ``issue(slot, index)`` is the runner's scalar closure (including
    its obs step-advance wrapper when tracing); ``obs`` is the event
    bus whose ``step`` must advance once per bulk-retired access.
    Returns the number of accesses issued.

    The driver is adaptive: at every evaluation window -- ramping from
    :data:`ADAPT_WINDOW_MIN` up to :data:`ADAPT_WINDOW` so the first
    decisions come early -- it re-decides between *bulk* mode
    (classify + run-ahead retirement) and *degraded* mode (plain
    scalar issue in exact heap order, identical to the scalar runner's
    schedule).  Miss- and share-heavy phases produce bulk runs too
    short to amortize the scan and scheduling overhead, so the driver
    watches the windowed mean run length to degrade and the windowed
    private-hit fraction (readable from the stats counters) to promote
    back.  With :class:`~repro.kernel.columnar.ColumnarSlotKernel`
    slots the choice is three-way: within bulk mode each run retires
    through the columnar pipeline or the batched per-access loop by
    per-run cost accounting (run length against the pipeline's fixed
    cost).  Every signal is a deterministic function of the
    simulation, so runs stay reproducible, and all modes are exact, so
    switching at any boundary preserves bit identity.
    """
    n = len(slots)
    lengths = [slot.length for slot in slots]
    positions = [0] * n
    clocks = [0] * n
    # horizons[i] caches slots[i].horizon(...) for slots waiting in the
    # heap; _NO_LIMIT marks the running slot, finished slots, and empty
    # slots (none of which may bound a run).  Entries are kept fresh
    # eagerly: recomputed when a slot's turn ends and -- because scalar
    # issues are the only events that move epochs -- re-derived for
    # every epoch-bumped slot right after each scalar issue.
    horizons = [_NO_LIMIT] * n
    heap = [(0, index) for index in range(n) if lengths[index]]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    step = 0
    # Adaptive-mode state.  The windowed hit fraction is read from the
    # stats objects the slots retire into (>1 of them on multi-socket
    # systems); the write bucket at index _w_bucket counts exactly the
    # store hits the scalar path served silently.
    stats_list = list({id(s.stats): s.stats for s in slots}.values())
    w_bucket = slots[0]._w_bucket if slots else 0   # noqa: SLF001

    def count_hits() -> int:
        total = 0
        for st in stats_list:
            total += (st.l1_hits + st.l2_hits
                      + st.write_latency_buckets[w_bucket])
        return total

    degraded = False
    streak = 0
    # The evaluation window ramps from ADAPT_WINDOW_MIN to ADAPT_WINDOW
    # (doubling per evaluation) so the first mode decisions come early;
    # a monkeypatched ADAPT_WINDOW below the ramp floor pins the window
    # (tests shrink it to force frequent evaluations).
    window = min(ADAPT_WINDOW_MIN, ADAPT_WINDOW)
    next_eval = window
    window_base = 0
    window_bulk = 0
    window_runs = 0
    hits_base = 0

    def evaluate() -> None:
        """Window boundary: re-decide the mode (see docstring)."""
        nonlocal degraded, streak, next_eval, window
        nonlocal window_base, window_bulk, window_runs, hits_base
        if degraded:
            frac = (count_hits() - hits_base) / (step - window_base)
            streak = streak + 1 if frac > PROMOTE_HIT_FRACTION else 0
            # While degraded nothing consumes the shrink journals;
            # flush them and invalidate the cached prefixes.
            for index in range(n):
                slots[index].reset_classification()
            if streak >= ADAPT_STREAK:
                degraded = False
                streak = 0
                if not warmup:
                    for index in range(n):
                        horizons[index] = (
                            slots[index].horizon(clocks[index],
                                                 positions[index])
                            if positions[index] < lengths[index]
                            else _NO_LIMIT)
        else:
            mean_run = window_bulk / window_runs if window_runs else 0.0
            streak = streak + 1 if mean_run < DEGRADE_RUN_LENGTH else 0
            if streak >= ADAPT_STREAK or (streak
                                          and window < ADAPT_WINDOW):
                degraded = True
                streak = 0
        window_base = step
        window_bulk = window_runs = 0
        hits_base = count_hits() if degraded else 0
        if window < ADAPT_WINDOW:
            window = min(window * 2, ADAPT_WINDOW)
        next_eval = step + window

    if not warmup:
        for index in range(n):
            if lengths[index]:
                horizons[index] = slots[index].horizon(0, 0)
    while heap:
        if warmup and step == warmup:
            if on_warmup is not None:
                on_warmup()
            # All local clocks restart at zero after the ROI boundary.
            # The boundary fires exactly once; clearing ``warmup`` also
            # switches the driver from exact scalar order (required for
            # the warm-up *set* to match the scalar runner's) to
            # horizon-bounded run-ahead.
            warmup = 0
            heap = []
            for index in range(n):
                if positions[index] < lengths[index]:
                    heap.append((0, index))
                    clocks[index] = 0
                    if not degraded:
                        horizons[index] = slots[index].horizon(
                            0, positions[index])
            heapq.heapify(heap)
            # The reset zeroed the counters the hit fraction is read
            # from; start a fresh window, restarting the calibration
            # ramp at the region-of-interest boundary.
            window_base = step
            window_bulk = window_runs = 0
            hits_base = count_hits()
            window = min(ADAPT_WINDOW_MIN, ADAPT_WINDOW)
            next_eval = step + window
        if degraded:
            # Degraded fast loop: issue everything through the scalar
            # protocol in exact heap order -- byte-for-byte the scalar
            # runner's schedule and cost (heapreplace pattern) -- until
            # the next window or warm-up boundary.
            stop = next_eval
            if warmup and warmup < stop:
                stop = warmup
            while heap and step < stop:
                slot = heap[0][1]
                index = positions[slot]
                clock = issue(slot, index)
                positions[slot] = index + 1
                step += 1
                if index + 1 < lengths[slot]:
                    heapreplace(heap, (clock, slot))
                    clocks[slot] = clock
                else:
                    heappop(heap)
                if check_every and step % check_every == 0:
                    check()
            if heap and step >= next_eval:
                evaluate()
            continue
        clock, slot = heappop(heap)
        kernel = slots[slot]
        khier = kernel.hier
        length = lengths[slot]
        pos = positions[slot]
        horizons[slot] = _NO_LIMIT
        done = False
        while True:
            if pos >= length:
                done = True
                break
            # Inline classification-staleness check (SlotKernel.safe_end
            # unrolled: this is the hottest branch of the driver).
            if kernel._cls_epoch != khier.epoch:    # noqa: SLF001
                kernel._absorb(pos)                 # noqa: SLF001
            run_end = kernel._cls_safe_end          # noqa: SLF001
            if (pos > run_end
                    or (pos == run_end
                        and kernel._cls_capped)):   # noqa: SLF001
                kernel._scan(pos)                   # noqa: SLF001
                run_end = kernel._cls_safe_end      # noqa: SLF001
            if run_end == pos:
                # Next access is unsafe: it may only issue while its
                # (clock, slot) key is the strict heap minimum -- the
                # exact position the scalar runner would issue it at.
                if heap:
                    head_clock, head_slot = heap[0]
                    if (clock > head_clock
                            or (clock == head_clock
                                and slot > head_slot)):
                        break
                clock = issue(slot, pos)
                pos += 1
                step += 1
                if not warmup:
                    # The transaction may have invalidated or
                    # downgraded lines in other cores: refresh the
                    # horizon of every slot whose epoch moved.
                    for index in range(n):
                        if horizons[index] != _NO_LIMIT:
                            other = slots[index]
                            if (other._cls_epoch    # noqa: SLF001
                                    != other.hier.epoch):
                                horizons[index] = other.horizon(
                                    clocks[index], positions[index])
                if check_every and step % check_every == 0:
                    check()
                if warmup and step == warmup:
                    break                # outer loop performs the reset
                continue
            if warmup:
                # Exact mode: never run past the next slot's clock.
                if heap:
                    head_clock, head_slot = heap[0]
                    limit = (head_clock + 1 if slot < head_slot
                             else head_clock)
                else:
                    limit = _NO_LIMIT
            else:
                # Run-ahead mode: never run to or past any other
                # slot's next-unsafe horizon.  min() finds the
                # smallest-index minimum, matching the scalar
                # tiebreak.
                limit = min(horizons)
                if limit != _NO_LIMIT and slot < horizons.index(limit):
                    limit += 1
            if clock >= limit:
                break
            if check_every:
                run_end = min(run_end, pos + check_every
                              - step % check_every)
            if warmup:
                run_end = min(run_end, pos + warmup - step)
            new_pos, clock = kernel.retire_run(pos, run_end, clock,
                                               limit)
            retired = new_pos - pos
            if not retired:
                break
            pos = new_pos
            step += retired
            window_bulk += retired
            window_runs += 1
            if obs is not None:
                obs.step += retired
            if check_every and step % check_every == 0:
                check()
            if warmup and step == warmup:
                break                    # outer loop performs the reset
        positions[slot] = pos
        if not done:
            heappush(heap, (clock, slot))
            clocks[slot] = clock
            if not warmup and not degraded:
                horizons[slot] = kernel.horizon(clock, pos)
        if step >= next_eval:
            evaluate()
    return step
