"""Batched access kernel for the simulation hot path.

The overwhelming majority of accesses in every figure workload are
private-cache hits: the block is already in the issuing core's L2 in a
state that can service the request without any uncore message. The
scalar path still walks ``CMPSystem.access -> _read/_write ->
PrivateHierarchy`` one reference at a time; this package pre-classifies
each core's upcoming access window with vectorized NumPy lookups and
retires the safe-hit prefix in bulk, falling back to the unmodified
scalar protocol for anything that could touch directory state (misses,
upgrades, DEV paths, fuse/unfuse, corrupted-home, cross-socket flows).

The contract is **bit identity**: identical final stats, identical
shadow memory, and identical event streams (order, payloads, and step
tags).  Safe hits of different cores are retired out of global order --
legal because they commute -- but every unsafe access still executes at
its exact scalar position with the exact scalar machine state; see
:mod:`repro.kernel.batched` for the argument.  The contract is enforced
by ``repro verify --kernel-diff`` (see :mod:`repro.kernel.diff`) and
documented in DESIGN.md Section 11.
"""

from repro.kernel.batched import (ADAPT_WINDOW, SCAN_WINDOW, SlotKernel,
                                  drive_batched)

__all__ = ["ADAPT_WINDOW", "SCAN_WINDOW", "SlotKernel", "drive_batched"]
