"""Batched access kernel for the simulation hot path.

The overwhelming majority of accesses in every figure workload are
private-cache hits: the block is already in the issuing core's L2 in a
state that can service the request without any uncore message. The
scalar path still walks ``CMPSystem.access -> _read/_write ->
PrivateHierarchy`` one reference at a time; this package pre-classifies
each core's upcoming access window with vectorized NumPy lookups and
retires the safe-hit prefix in bulk, falling back to the unmodified
scalar protocol for anything that could touch directory state (misses,
upgrades, DEV paths, fuse/unfuse, corrupted-home, cross-socket flows).

The contract is **bit identity**: identical final stats, identical
shadow memory, and identical event streams (order, payloads, and step
tags).  Safe hits of different cores are retired out of global order --
legal because they commute -- but every unsafe access still executes at
its exact scalar position with the exact scalar machine state; see
:mod:`repro.kernel.batched` for the argument.  The contract is enforced
by ``repro verify --kernel-diff`` (see :mod:`repro.kernel.diff`) and
documented in DESIGN.md Section 11.

The ``vectorized`` kernel (:mod:`repro.kernel.columnar`) keeps the
same classification/driver machinery but retires each safe run as
columnar NumPy operations over structure-of-arrays mirrors of the
private-cache state, under the identical bit-identity contract
(DESIGN.md Section 12).
"""

from repro.kernel.batched import (ADAPT_WINDOW, SCAN_WINDOW, SlotKernel,
                                  drive_batched)
from repro.kernel.columnar import (ColumnarSlotKernel, HierarchyColumns,
                                   LLCColumns, VEC_MIN_RUN,
                                   VEC_SCAN_WINDOW)

__all__ = ["ADAPT_WINDOW", "SCAN_WINDOW", "SlotKernel",
           "ColumnarSlotKernel", "HierarchyColumns", "LLCColumns",
           "VEC_MIN_RUN", "VEC_SCAN_WINDOW", "drive_batched"]
