"""Atomic file publication for result artifacts.

Benchmark archives (``results/*.json`` / ``*.txt``), trace time series,
and trajectory files are written with write-temp-then-rename so an
interrupted run never leaves a truncated file behind -- the same
discipline the on-disk result cache uses for its pickles.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp = tempfile.mkstemp(dir=path.parent,
                                prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    return path
