"""Catalogue of coherence messages and their interconnect byte costs.

Interconnect traffic in the paper's figures is "total bytes communicated";
we account every protocol message with a type from this catalogue so
traffic numbers are comparable across baseline and ZeroDEV runs.

Sizes follow the usual convention: a control message is one 8-byte flit
(address + opcode), a data-carrying message adds the 64-byte block. The
ZeroDEV-specific extras the paper calls out as "negligible" are modeled
explicitly: the E-state eviction notice carries the low-order
``3 + ceil(log2 N)`` bits used to reconstruct a fused block, which we round
up to one extra byte.
"""

from __future__ import annotations

import enum

from repro.common.addressing import BLOCK_BYTES

CTRL_BYTES = 8
DATA_BYTES = CTRL_BYTES + BLOCK_BYTES


class MessageType(enum.Enum):
    """Every message type exchanged in the modeled protocols."""

    # Requests from cores to the home LLC bank / directory slice.
    GETS = enum.auto()             # read (data or code)
    GETX = enum.auto()             # read-exclusive
    UPGRADE = enum.auto()          # S -> M permission-only request

    # Responses.
    DATA = enum.auto()             # data response (LLC, owner, or memory)
    DATA_EXCLUSIVE = enum.auto()   # data granted in E/M
    ACK = enum.auto()              # dataless response (upgrade grant)
    INV_ACK = enum.auto()          # invalidation acknowledgment

    # Forwarding and coherence actions.
    FWD_GETS = enum.auto()         # forwarded read to owner/sharer
    FWD_GETX = enum.auto()         # forwarded read-exclusive to owner
    INV = enum.auto()              # invalidation to a sharer
    BUSY_CLEAR = enum.auto()       # owner -> home after a 3-hop transfer

    # Private-cache eviction notifications (all notified to the directory
    # to keep it up-to-date, per Section III-A).
    EVICT_CLEAN = enum.auto()      # E/S eviction notice, no data
    EVICT_CLEAN_BITS = enum.auto() # ZeroDEV E-state notice + low-order bits
    WRITEBACK = enum.auto()        # M eviction, carries data

    # ZeroDEV memory-housing flows (Section III-D).
    WB_DE = enum.auto()            # directory-entry writeback to home memory
    GET_DE = enum.auto()           # directory-entry read from home memory
    DE_DATA = enum.auto()          # corrupted block returned for extraction
    DENF_NACK = enum.auto()        # "directory entry not found" NACK
    FWD_WITH_DE = enum.auto()      # re-forward carrying the extracted entry
    EVICT_ACK = enum.auto()        # ack retrieving low bits from last sharer

    # Hybrid update/invalidate contender (arXiv:1502.00101): a write to a
    # shared line pushes the new data to every other sharer instead of
    # invalidating it.
    UPDATE = enum.auto()           # data push to a sharer on an S write
    UPDATE_ACK = enum.auto()       # sharer -> writer, update applied

    # Inter-socket messages (Section III-D3..D5).
    SOCKET_GETS = enum.auto()
    SOCKET_GETX = enum.auto()
    SOCKET_DATA = enum.auto()
    SOCKET_DATA_CORRUPTED = enum.auto()  # special response, corrupted block
    SOCKET_EVICT = enum.auto()     # last in-socket copy evicted notice
    SOCKET_RESTORE = enum.auto()   # block retrieved to heal corrupted memory


_DATA_CARRYING = {
    MessageType.DATA,
    MessageType.DATA_EXCLUSIVE,
    MessageType.WRITEBACK,
    MessageType.UPDATE,
    MessageType.WB_DE,
    MessageType.DE_DATA,
    MessageType.FWD_WITH_DE,
    MessageType.SOCKET_DATA,
    MessageType.SOCKET_DATA_CORRUPTED,
    MessageType.SOCKET_RESTORE,
}

_CTRL_PLUS_ONE = {
    # E-state eviction notice carrying 3 + ceil(log2 N) reconstruction bits
    # (Section III-C2) -- rounded up to one byte.
    MessageType.EVICT_CLEAN_BITS,
}


def message_bytes(kind: MessageType) -> int:
    """Interconnect payload size of one message of type ``kind``."""
    if kind in _DATA_CARRYING:
        return DATA_BYTES
    if kind in _CTRL_PLUS_ONE:
        return CTRL_BYTES + 1
    return CTRL_BYTES
