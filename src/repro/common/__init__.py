"""Shared infrastructure: addressing, configuration, statistics, messages.

Everything in this package is protocol-agnostic; it is used by the baseline
coherence substrate, the ZeroDEV core, and all comparison baselines.
"""

from repro.common.addressing import AddressMapper, BLOCK_BYTES
from repro.common.config import (
    CacheGeometry,
    DirectoryConfig,
    DramConfig,
    LatencyConfig,
    LLCDesign,
    MeshConfig,
    Protocol,
    SystemConfig,
    table1_socket,
    scaled_socket,
)
from repro.common.errors import (
    CoherenceError,
    ConfigError,
    ProtocolInvariantError,
    SimulationError,
)
from repro.common.messages import MessageType, message_bytes
from repro.common.stats import SystemStats

__all__ = [
    "AddressMapper",
    "BLOCK_BYTES",
    "CacheGeometry",
    "CoherenceError",
    "ConfigError",
    "DirectoryConfig",
    "DramConfig",
    "LLCDesign",
    "LatencyConfig",
    "MeshConfig",
    "MessageType",
    "Protocol",
    "ProtocolInvariantError",
    "SimulationError",
    "SystemConfig",
    "SystemStats",
    "message_bytes",
    "scaled_socket",
    "table1_socket",
]
