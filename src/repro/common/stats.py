"""Statistics collected during a simulation run.

One :class:`SystemStats` instance is owned by each simulated socket. The
counters mirror the quantities the paper reports: core cache misses,
interconnect traffic (bytes), DEV volume, DRAM read/write traffic, the
fraction of DRAM writes caused by directory-entry eviction, and the
fraction of LLC read misses that access corrupted memory blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.messages import MessageType, message_bytes


@dataclass
class SystemStats:
    """Aggregate counters for one socket (or one single-socket system)."""

    n_cores: int

    # Per-core progress.
    cycles: List[int] = field(default_factory=list)
    accesses: List[int] = field(default_factory=list)

    # Private-hierarchy events.
    l1_hits: int = 0
    l2_hits: int = 0
    core_cache_misses: int = 0      # L2 misses: requests leaving the core
    upgrades: int = 0

    # Uncore events.
    llc_data_hits: int = 0
    llc_data_misses: int = 0
    llc_read_misses: int = 0
    llc_evictions: int = 0
    llc_writebacks_to_dram: int = 0
    forwarded_requests: int = 0     # 3-hop transfers via an owner/sharer
    invalidations_sent: int = 0

    # Directory events.
    dir_allocations: int = 0
    dir_evictions: int = 0          # sparse-directory entry evictions
    dev_invalidations: int = 0      # private copies killed by dir eviction
    dev_events: int = 0             # dir evictions that generated >=1 DEV
    inclusion_invalidations: int = 0  # inclusive-LLC back-invalidations
    region_demotions: int = 0       # MgD region entries broken by sharing

    # Hybrid update/invalidate contender events (arXiv:1502.00101).
    update_pushes: int = 0          # S-state write hits served by pushing
    updates_sent: int = 0           # per-sharer UPDATE data messages

    # ZeroDEV-specific events.
    entries_spilled: int = 0        # entries allocated in LLC, spilled form
    entries_fused: int = 0          # entries allocated in LLC, fused form
    spill_to_fuse: int = 0          # S->M/E transitions re-locating an entry
    fuse_to_spill: int = 0          # M/E->S transitions re-locating an entry
    entry_llc_evictions: int = 0    # live entries evicted from the LLC
    wb_de_messages: int = 0
    get_de_messages: int = 0
    denf_nacks: int = 0
    corrupted_block_reads: int = 0  # LLC read misses that hit corrupted mem
    corrupted_blocks_restored: int = 0
    extra_data_array_reads: int = 0 # SpillAll critical-path penalty events
    fused_read_forwards: int = 0    # FuseAll 3-hop reads to shared blocks

    # DRAM events.
    dram_reads: int = 0
    dram_writes: int = 0
    dram_writes_entry_eviction: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0

    # Interconnect traffic.
    traffic_bytes: int = 0
    messages: Dict[MessageType, int] = field(default_factory=dict)

    # Latency distribution: power-of-two buckets per operation class
    # (bucket i counts accesses with latency in [2^i, 2^(i+1))).
    read_latency_buckets: List[int] = field(default_factory=list)
    write_latency_buckets: List[int] = field(default_factory=list)

    LATENCY_BUCKETS = 20

    def __post_init__(self) -> None:
        if not self.cycles:
            self.cycles = [0] * self.n_cores
        if not self.accesses:
            self.accesses = [0] * self.n_cores
        if not self.read_latency_buckets:
            self.read_latency_buckets = [0] * self.LATENCY_BUCKETS
        if not self.write_latency_buckets:
            self.write_latency_buckets = [0] * self.LATENCY_BUCKETS

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------
    def record_message(self, kind: MessageType, count: int = 1) -> None:
        """Account ``count`` messages of ``kind`` on the interconnect."""
        self.messages[kind] = self.messages.get(kind, 0) + count
        self.traffic_bytes += message_bytes(kind) * count

    def advance_core(self, core: int, latency: int) -> None:
        """Advance ``core``'s local clock by ``latency`` cycles."""
        self.cycles[core] += latency
        self.accesses[core] += 1

    def record_latency(self, is_write: bool, latency: int) -> None:
        """Bucket one access latency (powers of two)."""
        bucket = min(max(latency, 1).bit_length() - 1,
                     self.LATENCY_BUCKETS - 1)
        if is_write:
            self.write_latency_buckets[bucket] += 1
        else:
            self.read_latency_buckets[bucket] += 1

    def latency_percentile(self, fraction: float,
                           writes: bool = False) -> int:
        """Approximate latency percentile (upper bucket bound).

        The resolution is the power-of-two bucket width -- enough to
        separate L1 hits, L2 hits, 2-hop LLC hits, 3-hop forwards, and
        DRAM misses, which is what the tail analysis needs.
        """
        buckets = (self.write_latency_buckets if writes
                   else self.read_latency_buckets)
        total = sum(buckets)
        if not total:
            return 0
        target = fraction * total
        running = 0
        for index, count in enumerate(buckets):
            running += count
            if running >= target:
                return 1 << index + 1
        return 1 << self.LATENCY_BUCKETS

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Makespan: the clock of the slowest core (multi-threaded view)."""
        return max(self.cycles) if self.cycles else 0

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)

    def misses_per_kilo_access(self) -> float:
        """Core cache misses per 1000 core references (proxy for MPKI)."""
        total = self.total_accesses
        return 1000.0 * self.core_cache_misses / total if total else 0.0

    def dram_write_entry_fraction(self) -> float:
        """Fraction of DRAM writes caused by directory-entry eviction.

        The paper reports this is below 0.5% thanks to dataLRU.
        """
        if not self.dram_writes:
            return 0.0
        return self.dram_writes_entry_eviction / self.dram_writes

    def corrupted_read_fraction(self) -> float:
        """Fraction of LLC read misses that access corrupted home blocks.

        The paper reports this is below 0.05%.
        """
        if not self.llc_read_misses:
            return 0.0
        return self.corrupted_block_reads / self.llc_read_misses

    def reset(self) -> None:
        """Zero every counter in place (end-of-warm-up ROI boundary).

        In-place so that components holding a reference to this object
        (mesh, DRAM) keep recording into it.
        """
        fresh = SystemStats(self.n_cores)
        self.__dict__.update(fresh.__dict__)

    def as_dict(self) -> Dict[str, float]:
        """Flatten all scalar counters for reporting."""
        result: Dict[str, float] = {}
        for name, value in vars(self).items():
            if isinstance(value, int):
                result[name] = value
        result["total_cycles"] = self.total_cycles
        result["total_accesses"] = self.total_accesses
        result["misses_per_kilo_access"] = self.misses_per_kilo_access()
        return result


def weighted_speedup(base_cycles: List[int], new_cycles: List[int]) -> float:
    """Weighted speedup of a multi-programmed run versus a baseline run.

    Defined as ``mean_i(base_i / new_i)`` over cores, the per-core speedup
    averaged with equal weights -- the metric Figure 2/21/23 normalize to 1
    for the baseline.
    """
    if len(base_cycles) != len(new_cycles):
        raise ValueError("core counts differ between runs")
    ratios = [b / n for b, n in zip(base_cycles, new_cycles) if n]
    return sum(ratios) / len(ratios) if ratios else 1.0


def makespan_speedup(base: SystemStats, new: SystemStats) -> float:
    """Speedup of a multi-threaded run: ratio of makespans."""
    if not new.total_cycles:
        return 1.0
    return base.total_cycles / new.total_cycles
