"""System configuration dataclasses.

:func:`table1_socket` encodes Table I of the paper (one 8-core socket with
32 KB L1s, a 256 KB L2 per core, an 8 MB 16-way 8-bank LLC, an 8-way NRU
sparse directory, a 2D mesh, and DDR3-2133 memory). Because a pure-Python
run of paper-sized structures over full traces is impractically slow,
:func:`scaled_socket` shrinks every capacity by a common factor while
preserving associativities and all capacity *ratios* (the 4:1 LLC-to-
aggregate-L2 ratio and the R-times directory sizing that the paper's
analysis rests on).
"""

from __future__ import annotations

import enum
import math
import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.addressing import BLOCK_BYTES
from repro.common.errors import ConfigError


def _is_pow2(value: int) -> bool:
    return value > 0 and not value & (value - 1)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache array."""

    size_bytes: int
    ways: int
    block_bytes: int = BLOCK_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.block_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.ways} ways x {self.block_bytes}B blocks")
        if not _is_pow2(self.sets):
            raise ConfigError(f"set count {self.sets} is not a power of two")

    @property
    def blocks(self) -> int:
        """Total number of block frames in the array."""
        return self.size_bytes // self.block_bytes

    @property
    def sets(self) -> int:
        return self.blocks // self.ways


#: Access-kernel identifiers (see :mod:`repro.kernel`): ``batched``
#: pre-classifies private-cache hits and retires them in bulk, and
#: ``vectorized`` retires those bulk runs as columnar NumPy operations
#: (:mod:`repro.kernel.columnar`); both carry a bit-identity contract
#: against ``scalar`` (the per-message protocol walk), enforced by
#: ``repro verify --kernel-diff``. ``REPRO_KERNEL=scalar`` is the
#: runtime escape hatch.
KERNELS = ("batched", "scalar", "vectorized")
KERNEL_ENV = "REPRO_KERNEL"


def resolve_kernel(config: "SystemConfig") -> str:
    """The kernel a run of ``config`` will use: env override, else the
    config field. Raises :class:`ConfigError` on unknown names."""
    env = os.environ.get(KERNEL_ENV)
    if env:
        if env not in KERNELS:
            raise ConfigError(
                f"{KERNEL_ENV}={env!r} is not a kernel; choose one of "
                f"{', '.join(KERNELS)}")
        return env
    return config.kernel


class LLCDesign(enum.Enum):
    """The three LLC designs the paper evaluates (Sections III-A, E, F)."""

    NON_INCLUSIVE = "non-inclusive"   # baseline: demand fills allocate in LLC
    EPD = "epd"                       # exclusive private data (Magny-Cours)
    INCLUSIVE = "inclusive"


class Protocol(enum.Enum):
    """Which coherence scheme drives the uncore."""

    BASELINE = "baseline"             # sized sparse directory, NRU, DEVs
    ZERODEV = "zerodev"               # the paper's contribution
    SECDIR = "secdir"                 # Yan et al., ISCA 2019
    MGD = "mgd"                       # Multi-grain Directory, MICRO 2013
    DLS = "dls"                       # directoryless shared LLC (1206.4753)
    HYBRID = "hybrid"                 # update/invalidate hybrid (1502.00101)


class DirCachingPolicy(enum.Enum):
    """ZeroDEV directory-entry caching policies (Section III-C)."""

    SPILL_ALL = "spill-all"
    FPSS = "fuse-private-spill-shared"
    FUSE_ALL = "fuse-all"


class LLCReplacement(enum.Enum):
    """LLC replacement policies (baseline LRU and Section III-D1)."""

    LRU = "lru"
    SP_LRU = "spLRU"                  # promote spilled entries above blocks
    DATA_LRU = "dataLRU"              # data blocks evicted before any entry


@dataclass(frozen=True)
class DirectoryConfig:
    """Sparse-directory provisioning.

    ``ratio`` is the paper's R: directory entries as a multiple of the
    aggregate private-L2 block count. ``ratio=None`` means *no* sparse
    directory structure at all (legal only for ZeroDEV); ``unbounded=True``
    means an unlimited-capacity directory (the Figure 2/3 reference).
    """

    ratio: Optional[float] = 1.0
    ways: int = 8
    unbounded: bool = False
    replacement_disabled: bool = False  # ZeroDEV option (Section III-C4)
    #: Ablation knob: run ZeroDEV with a replacement-*enabled* sparse
    #: directory -- a victim entry is relocated to the LLC instead of
    #: being invalidated. Section III-C4 argues the replacement-disabled
    #: design is strictly better (one structure disturbed per entry).
    zerodev_replacement_enabled: bool = False

    @property
    def present(self) -> bool:
        return self.ratio is not None or self.unbounded

    def entries_for(self, aggregate_l2_blocks: int) -> int:
        """Number of directory entries given the private-cache capacity."""
        if not self.present or self.unbounded:
            return 0
        assert self.ratio is not None
        entries = int(round(self.ratio * aggregate_l2_blocks))
        # Round to a power-of-two set count at the configured associativity.
        sets = max(1, entries // self.ways)
        sets = 2 ** max(0, round(math.log2(sets)))
        return sets * self.ways


@dataclass(frozen=True)
class LatencyConfig:
    """Fixed access latencies, in core cycles at 4 GHz (Table I + CACTI)."""

    l1_hit: int = 3
    l2_hit: int = 12
    llc_tag: int = 3
    llc_data: int = 4
    mesh_hop: int = 2                 # 1-cycle routing + 1-cycle link
    queueing: int = 4                 # interface-queue cost per uncore trip
    socket_link: int = 80             # 20 ns inter-socket routing at 4 GHz
    store_visibility_fraction: float = 0.3
    # Stores retire through a store buffer; only this fraction of their
    # memory latency is exposed to the core's critical path.
    load_visibility_fraction: float = 0.7
    # The 224-entry OOO core (Table I) overlaps independent work with
    # outstanding loads; this fraction of the uncore latency reaches the
    # critical path (a simple MLP model for the trace-driven substrate).
    compute_per_access: int = 6
    # Non-memory work between consecutive memory references (the paper's
    # cores retire several ALU/control instructions per access).


@dataclass(frozen=True)
class DramConfig:
    """DDR3-2133-flavoured main memory (DRAMSim2 substitute)."""

    channels: int = 2
    banks_per_channel: int = 8
    row_bytes: int = 1024
    row_hit_cycles: int = 100         # core cycles incl. controller queueing
    row_miss_cycles: int = 160        # precharge + activate + CAS


@dataclass(frozen=True)
class MeshConfig:
    """2D mesh carrying cores and LLC banks (Table I)."""

    width: int = 4
    height: int = 4


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated socket."""

    n_cores: int = 8
    l1i: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8))
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8))
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, 8))
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(8 * 1024 * 1024, 16))
    llc_banks: int = 8
    llc_design: LLCDesign = LLCDesign.NON_INCLUSIVE
    llc_replacement: LLCReplacement = LLCReplacement.LRU
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    protocol: Protocol = Protocol.BASELINE
    dir_caching: DirCachingPolicy = DirCachingPolicy.FPSS
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    mesh: MeshConfig = field(default_factory=MeshConfig)
    # SecDir partitioning knobs (Section V, "Comparison to Related Work").
    secdir_private_ways: int = 7
    secdir_shared_ways: int = 5
    # Multi-grain Directory region size in blocks (1 KB regions).
    mgd_region_blocks: int = 16
    check_data: bool = True           # shadow-memory version checking
    #: Access kernel driving the runner hot path (``repro.kernel``):
    #: ``batched``, ``vectorized``, or ``scalar``, all bit-identical
    #: by contract (``repro verify --kernel-diff``); the field
    #: participates in result-cache keys so cached results never mix
    #: kernels.
    kernel: str = "batched"

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigError("n_cores must be positive")
        if self.kernel not in KERNELS:
            raise ConfigError(
                f"kernel must be one of {', '.join(KERNELS)}, "
                f"not {self.kernel!r}")
        if not _is_pow2(self.llc_banks):
            raise ConfigError("llc_banks must be a power of two")
        if self.llc.blocks % self.llc_banks:
            raise ConfigError("LLC blocks must divide evenly across banks")
        if not self.directory.present and self.protocol not in (
                Protocol.ZERODEV, Protocol.DLS):
            raise ConfigError(
                f"{self.protocol.value} requires a sparse directory; only "
                "ZeroDEV and DLS can run with no directory structure at all")
        if (self.protocol is Protocol.ZERODEV
                and self.llc_replacement is LLCReplacement.LRU):
            # Plain LRU cannot guarantee a block is evicted before its
            # spilled entry, breaking the Section III-D2 invariant.
            raise ConfigError(
                "ZeroDEV requires spLRU or dataLRU (Section III-D1/D2)")
        if self.protocol is Protocol.DLS:
            # DLS keeps all coherence state on the shared LLC's tag array:
            # a tracked block *is* an LLC-resident line, so the LLC must be
            # inclusive, there is no separate directory structure, and the
            # spill-aware replacement policies are meaningless (nothing
            # ever spills).
            if self.directory.present:
                raise ConfigError(
                    "DLS resolves coherence at the shared LLC; configure "
                    "directory=DirectoryConfig(ratio=None)")
            if self.llc_design is not LLCDesign.INCLUSIVE:
                raise ConfigError(
                    "DLS requires an inclusive LLC (every privately cached "
                    "block must keep its LLC line, which holds the sharer "
                    "state)")
            if self.llc_replacement is not LLCReplacement.LRU:
                raise ConfigError(
                    "DLS has no spilled entries; use plain LRU replacement")

    # ------------------------------------------------------------------
    @property
    def aggregate_l2_blocks(self) -> int:
        return self.n_cores * self.l2.blocks

    @property
    def directory_entries(self) -> int:
        return self.directory.entries_for(self.aggregate_l2_blocks)

    @property
    def llc_bank_sets(self) -> int:
        return self.llc.sets // self.llc_banks

    def with_(self, **changes) -> "SystemConfig":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)


def table1_socket(**overrides) -> SystemConfig:
    """The paper's Table I socket at full size."""
    return SystemConfig(**overrides)


def scaled_socket(scale: int = 16, n_cores: int = 8,
                  **overrides) -> SystemConfig:
    """A socket with every capacity divided by ``scale``.

    Associativities, the LLC:L2 capacity ratio, bank count, and directory
    R-ratios are preserved, so conflict and capacity behaviour matches the
    full-size system on proportionally scaled working sets.
    """
    if scale < 1 or not _is_pow2(scale):
        raise ConfigError("scale must be a power of two >= 1")
    base = SystemConfig(
        n_cores=n_cores,
        l1i=CacheGeometry(max(32 * 1024 // scale, 512), 8),
        l1d=CacheGeometry(max(32 * 1024 // scale, 512), 8),
        l2=CacheGeometry(max(256 * 1024 // scale, 4096), 8),
        llc=CacheGeometry(max(8 * 1024 * 1024 // scale, 64 * 1024), 16),
    )
    return base.with_(**overrides) if overrides else base
