"""Exception hierarchy for the simulator.

Raising a :class:`ProtocolInvariantError` anywhere means a coherence
invariant has been violated; tests treat any such raise as a hard failure.
"""


class SimulationError(Exception):
    """Base class for every error raised by the simulator."""


class ConfigError(SimulationError):
    """An invalid or inconsistent configuration was supplied."""


class CoherenceError(SimulationError):
    """A coherence transaction could not be completed legally."""


class ProtocolInvariantError(CoherenceError):
    """A protocol invariant (SWMR, directory precision, ...) was violated.

    The simulator checks invariants aggressively; this error surfacing in a
    run always indicates a bug in a protocol implementation, never a
    legitimate runtime condition.
    """
