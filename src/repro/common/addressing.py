"""Block addressing helpers.

The simulator works internally on *block numbers* (byte address divided by
the block size). All caches in the modeled system use 64-byte blocks, as in
Table I of the paper. The :class:`AddressMapper` centralizes the index
arithmetic used by caches, directory slices, and the LLC bank hash so each
structure does not reimplement (and potentially disagree on) the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cache block size in bytes (Table I: 64-byte block everywhere).
BLOCK_BYTES = 64

#: log2 of the block size, used to convert byte addresses to block numbers.
BLOCK_SHIFT = 6


def block_of(address: int) -> int:
    """Return the block number containing byte ``address``."""
    return address >> BLOCK_SHIFT


def address_of(block: int) -> int:
    """Return the first byte address of ``block`` (inverse of block_of)."""
    return block << BLOCK_SHIFT


@dataclass(frozen=True)
class AddressMapper:
    """Maps block numbers onto banks and sets.

    The LLC is banked; a block's *home bank* is chosen by low-order block
    bits (bank interleaving at block granularity, the common design the
    paper assumes: "A slice of the sparse directory resides alongside each
    LLC bank"). Within a bank, the set index uses the next-lowest bits.

    Parameters
    ----------
    n_banks:
        Number of LLC banks (must be a power of two).
    sets_per_bank:
        Number of sets in one LLC bank (power of two).
    """

    n_banks: int
    sets_per_bank: int

    def __post_init__(self) -> None:
        for name, value in (("n_banks", self.n_banks),
                            ("sets_per_bank", self.sets_per_bank)):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, "
                                 f"got {value}")

    def bank_of(self, block: int) -> int:
        """Home LLC bank (and directory slice) of ``block``."""
        return block & (self.n_banks - 1)

    def set_of(self, block: int) -> int:
        """Set index of ``block`` within its home bank."""
        return (block >> self.n_banks.bit_length() - 1) & (
            self.sets_per_bank - 1)

    def tag_of(self, block: int) -> int:
        """Tag of ``block`` within its (bank, set)."""
        bank_bits = self.n_banks.bit_length() - 1
        set_bits = self.sets_per_bank.bit_length() - 1
        return block >> (bank_bits + set_bits)


def set_index(block: int, n_sets: int) -> int:
    """Set index for a non-banked structure with ``n_sets`` sets.

    Used by the private caches and the sparse directory slices, which index
    with the low-order block bits directly.
    """
    return block & (n_sets - 1)
