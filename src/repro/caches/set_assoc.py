"""Generic set-associative cache with true-LRU replacement.

Used for the private L1 and L2 arrays. Lines are arbitrary objects with a
``block`` attribute; each set is an ordered mapping from block to line in
LRU-to-MRU order (first entry is LRU, last is MRU), giving O(1) hit-path
recency updates -- this sits on the per-access critical path of the
runner, where a per-touch ``list.remove`` (which compares dataclass lines
field-by-field) dominated the profile.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, List, Optional, TypeVar

from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError

LineT = TypeVar("LineT")


class SetAssocCache(Generic[LineT]):
    """A set-associative array of ``geometry.sets`` x ``geometry.ways``."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # Hoisted from the geometry properties (recomputed per call).
        self._n_ways = geometry.ways
        self._set_mask = geometry.sets - 1
        self._sets: List["OrderedDict[int, LineT]"] = [
            OrderedDict() for _ in range(geometry.sets)]
        self._index: Dict[int, LineT] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, block: int) -> bool:
        return block in self._index

    # ------------------------------------------------------------------
    def set_of(self, block: int) -> int:
        return block & self._set_mask

    def lookup(self, block: int, touch: bool = True) -> Optional[LineT]:
        """Return the line holding ``block``, updating LRU order on hit."""
        line = self._index.get(block)
        if line is not None and touch:
            self._sets[block & self._set_mask].move_to_end(block)
        return line

    def peek(self, block: int) -> Optional[LineT]:
        """Lookup without disturbing LRU order."""
        return self._index.get(block)

    # ------------------------------------------------------------------
    def insert(self, line: LineT) -> Optional[LineT]:
        """Insert ``line`` at MRU; returns the evicted LRU victim, if any.

        The caller is responsible for any writeback/notification the victim
        requires -- this class is pure structure.
        """
        block = line.block  # type: ignore[attr-defined]
        if block in self._index:
            raise SimulationError(f"block {block:#x} already cached")
        lru_set = self._sets[block & self._set_mask]
        victim: Optional[LineT] = None
        if len(lru_set) >= self._n_ways:
            _, victim = lru_set.popitem(last=False)
            del self._index[victim.block]  # type: ignore[attr-defined]
        lru_set[block] = line
        self._index[block] = line
        return victim

    def remove(self, block: int) -> Optional[LineT]:
        """Remove and return the line holding ``block`` (None if absent)."""
        line = self._index.pop(block, None)
        if line is not None:
            del self._sets[block & self._set_mask][block]
        return line

    def load_set(self, index: int, lines: List[LineT]) -> None:
        """Replace set ``index`` with ``lines`` (LRU-to-MRU order).

        The restore half of the columnar sync-point contract
        (:mod:`repro.kernel.columnar`): the per-set ``OrderedDict`` is
        rebuilt in place and the global index updated, so references
        to ``_sets``/``_index`` held by kernels stay valid.
        """
        if len(lines) > self._n_ways:
            raise SimulationError(
                f"{len(lines)} lines for a {self._n_ways}-way set")
        for block in list(self._sets[index]):
            del self._index[block]
        fresh: "OrderedDict[int, LineT]" = OrderedDict()
        for line in lines:
            block = line.block  # type: ignore[attr-defined]
            if block & self._set_mask != index:
                raise SimulationError(
                    f"block {block:#x} does not map to set {index}")
            if block in self._index or block in fresh:
                raise SimulationError(f"block {block:#x} loaded twice")
            fresh[block] = line
            self._index[block] = line
        self._sets[index] = fresh

    # ------------------------------------------------------------------
    def lines(self):
        """Iterate over all resident lines (unordered)."""
        return self._index.values()

    def set_lines(self, index: int) -> List[LineT]:
        """The lines of set ``index`` in LRU-to-MRU order (read-only use)."""
        return list(self._sets[index].values())
