"""Generic set-associative cache with true-LRU replacement.

Used for the private L1 and L2 arrays. Lines are arbitrary objects with a
``block`` attribute; the cache maintains per-set LRU order (index 0 is LRU,
the last index is MRU) plus a block-indexed dictionary for O(1) lookup.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, TypeVar

from repro.common.addressing import set_index
from repro.common.config import CacheGeometry
from repro.common.errors import SimulationError

LineT = TypeVar("LineT")


class SetAssocCache(Generic[LineT]):
    """A set-associative array of ``geometry.sets`` x ``geometry.ways``."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List[List[LineT]] = [[] for _ in range(geometry.sets)]
        self._index: Dict[int, LineT] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, block: int) -> bool:
        return block in self._index

    # ------------------------------------------------------------------
    def set_of(self, block: int) -> int:
        return set_index(block, self.geometry.sets)

    def lookup(self, block: int, touch: bool = True) -> Optional[LineT]:
        """Return the line holding ``block``, updating LRU order on hit."""
        line = self._index.get(block)
        if line is not None and touch:
            lru_set = self._sets[self.set_of(block)]
            lru_set.remove(line)
            lru_set.append(line)
        return line

    def peek(self, block: int) -> Optional[LineT]:
        """Lookup without disturbing LRU order."""
        return self._index.get(block)

    # ------------------------------------------------------------------
    def insert(self, line: LineT) -> Optional[LineT]:
        """Insert ``line`` at MRU; returns the evicted LRU victim, if any.

        The caller is responsible for any writeback/notification the victim
        requires -- this class is pure structure.
        """
        block = line.block  # type: ignore[attr-defined]
        if block in self._index:
            raise SimulationError(f"block {block:#x} already cached")
        lru_set = self._sets[self.set_of(block)]
        victim: Optional[LineT] = None
        if len(lru_set) >= self.geometry.ways:
            victim = lru_set.pop(0)
            del self._index[victim.block]  # type: ignore[attr-defined]
        lru_set.append(line)
        self._index[block] = line
        return victim

    def remove(self, block: int) -> Optional[LineT]:
        """Remove and return the line holding ``block`` (None if absent)."""
        line = self._index.pop(block, None)
        if line is not None:
            self._sets[self.set_of(block)].remove(line)
        return line

    # ------------------------------------------------------------------
    def lines(self):
        """Iterate over all resident lines (unordered)."""
        return self._index.values()

    def set_lines(self, index: int) -> List[LineT]:
        """The lines of set ``index`` in LRU-to-MRU order (read-only use)."""
        return self._sets[index]
