"""Cache line records and coherence states.

Data contents are modeled as monotonically increasing *versions*: every
committed store creates a fresh version number, and a shadow memory records
the latest version of every block. A protocol is data-correct exactly when
every load observes the latest version -- which the simulator asserts on
every access when ``check_data`` is enabled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime caches <-> coherence import cycle
    from repro.coherence.entry import DirectoryEntry


class MESI(enum.Enum):
    """Private-cache coherence states (directory merges M and E)."""

    M = "M"
    E = "E"
    S = "S"

    @property
    def is_owner(self) -> bool:
        """True for the states in which a core owns the only valid copy."""
        return self is not MESI.S


@dataclass
class L1Line:
    """One L1 (instruction or data) line: a pure presence filter.

    Coherence state and the data version live at the L2; the L1 only
    shortens hit latency. L2 is inclusive of both L1s, so an L2 eviction
    back-invalidates these lines.
    """

    block: int


@dataclass
class L2Line:
    """One private L2 line, the coherence endpoint of a core."""

    block: int
    state: MESI
    version: int
    dirty: bool = False
    is_code: bool = False


class LineKind(enum.Enum):
    """LLC line kinds, encoding the paper's (V, D, b0) states.

    ========  =====  =====  ====
    kind      V      D      b0
    ========  =====  =====  ====
    DATA      1      d      --    ordinary code/data block
    SPILLED   0      1      1     full block holds a directory entry
    FUSED     0      1      0     data block with an entry in its low bits
    ========  =====  =====  ====
    """

    DATA = "data"
    SPILLED = "spilled"
    FUSED = "fused"


@dataclass
class LLCLine:
    """One LLC frame: a data block, a spilled entry, or a fused block."""

    block: int
    kind: LineKind
    dirty: bool = False               # data dirtiness (b1 when fused)
    version: int = 0                  # shadow data version (DATA/FUSED)
    entry: Optional["DirectoryEntry"] = field(default=None, repr=False)

    @property
    def holds_data(self) -> bool:
        """True when the frame carries (possibly corrupted) block data."""
        return self.kind is not LineKind.SPILLED

    @property
    def is_entry(self) -> bool:
        """True for the (V=0, D=1) states holding a directory entry."""
        return self.kind is not LineKind.DATA
