"""Cache structures: private hierarchy, shared LLC, replacement policies."""

from repro.caches.block import L1Line, L2Line, LLCLine, LineKind, MESI
from repro.caches.llc import LLCBank
from repro.caches.private_cache import EvictionNotice, PrivateHierarchy
from repro.caches.set_assoc import SetAssocCache

__all__ = [
    "EvictionNotice",
    "L1Line",
    "L2Line",
    "LLCBank",
    "LLCLine",
    "LineKind",
    "MESI",
    "PrivateHierarchy",
    "SetAssocCache",
]
