"""One LLC bank, including ZeroDEV's spilled/fused directory-entry frames.

An LLC set may simultaneously hold a data block B (``V=1``) and B's spilled
directory entry (``V=0, D=1, b0=1``) under the same tag -- the "two tag
matches" case of Section III-C. Fused entries occupy no extra frame: the
block's own frame is re-marked ``V=0, D=1, b0=0`` and the entry rides in
its low-order bits.

The bank implements the three replacement policies of the study:

* ``LRU``     -- baseline true LRU.
* ``spLRU``   -- on a data access, the block is touched first and its
  spilled entry is then moved to MRU, so the block always ages out first.
* ``dataLRU`` -- the LRU *ordinary* (``V=1``) block is evicted before any
  spilled or fused entry in the set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.caches.block import LLCLine, LineKind
from repro.coherence.entry import DirectoryEntry, EntryLocation
from repro.common.config import LLCReplacement
from repro.common.errors import ProtocolInvariantError, SimulationError
from repro.obs.events import EventKind


class LLCBank:
    """Set-associative LLC bank with entry-aware replacement."""

    #: Observability seam (repro.obs): None = tracing disabled.
    obs = None
    #: Seeded-mutation seam (repro.verify.mutations): names of armed
    #: protocol mutations. Empty on every real run; the verify layer
    #: arms these to prove its checkers catch the seeded bug.
    mutations: frozenset = frozenset()

    def __init__(self, bank_id: int, sets: int, ways: int,
                 replacement: LLCReplacement, n_banks: int) -> None:
        self.bank_id = bank_id
        self.sets = sets
        self.ways = ways
        self.replacement = replacement
        self._bank_bits = n_banks.bit_length() - 1
        self._frames: List[List[LLCLine]] = [[] for _ in range(sets)]
        self._data_index: Dict[int, LLCLine] = {}   # DATA or FUSED frames
        self._spill_index: Dict[int, LLCLine] = {}  # SPILLED frames

    # ------------------------------------------------------------------
    def set_of(self, block: int) -> int:
        return (block >> self._bank_bits) & (self.sets - 1)

    def _index_for(self, line: LLCLine) -> Dict[int, LLCLine]:
        if line.kind is LineKind.SPILLED:
            return self._spill_index
        return self._data_index

    # ------------------------------------------------------------------
    # Lookup / recency
    # ------------------------------------------------------------------
    def lookup_data(self, block: int, touch: bool = True
                    ) -> Optional[LLCLine]:
        """The DATA or FUSED frame of ``block``, with policy-aware touch."""
        line = self._data_index.get(block)
        if line is not None and touch:
            self._touch(line)
            if self.replacement is LLCReplacement.SP_LRU:
                spill = self._spill_index.get(block)
                if spill is not None:
                    self._touch(spill)  # entry ends above its block
        return line

    def lookup_spill(self, block: int, touch: bool = True
                     ) -> Optional[LLCLine]:
        line = self._spill_index.get(block)
        if line is not None and touch:
            self._touch(line)
        return line

    def _touch(self, line: LLCLine) -> None:
        frames = self._frames[self.set_of(line.block)]
        frames.remove(line)
        frames.append(line)

    def peek_data(self, block: int) -> Optional[LLCLine]:
        """The DATA/FUSED frame of ``block`` without touching recency."""
        return self._data_index.get(block)

    def peek_spill(self, block: int) -> Optional[LLCLine]:
        """The SPILLED frame of ``block`` without touching recency."""
        return self._spill_index.get(block)

    # ------------------------------------------------------------------
    # Insertion / eviction
    # ------------------------------------------------------------------
    def set_full(self, set_idx: int) -> bool:
        return len(self._frames[set_idx]) >= self.ways

    def choose_victim(self, set_idx: int,
                      protect_block: Optional[int] = None) -> LLCLine:
        """Pick the replacement victim of ``set_idx`` per the policy.

        ``protect_block`` shields every frame of that block (the block a
        transaction is currently working on, held busy in hardware):
        evicting a block's own spilled entry while installing the block
        would recreate the case-(iiib) hazard of Section III-D2, and
        evicting the block itself while spilling its entry would, in an
        inclusive LLC, invalidate the very copies the entry tracks.

        The selection order is deterministic at every tier (``frames``
        is kept in LRU-to-MRU order, never iterated through a dict):

        1. dataLRU only: the least-recent unprotected *ordinary* (DATA)
           frame.
        2. The least-recent unprotected frame of any kind -- under
           dataLRU this is the all-protected-data fallback where the
           set holds nothing but spilled/fused entry frames (plus,
           possibly, the protected block), and the oldest *entry* frame
           is sacrificed (its directory entry escalates to WB_DE).
        3. Every frame belongs to ``protect_block`` (at most its data
           frame plus its spilled-entry frame, so only reachable in a
           2-way set): the overall LRU frame, as a last resort --
           callers installing a frame always have room in this case
           because insert() only evicts from a *full* set, which a
           2-frame protected set cannot be while inserting a third
           frame of the same block is banned by the duplicate check.
        """
        frames = self._frames[set_idx]
        if not frames:
            raise SimulationError(f"victim requested from empty set "
                                  f"{set_idx} of bank {self.bank_id}")

        def protected(line: LLCLine) -> bool:
            return (protect_block is not None
                    and line.block == protect_block)

        if self.replacement is LLCReplacement.DATA_LRU:
            for line in frames:                 # LRU-to-MRU order
                if line.kind is LineKind.DATA and not protected(line):
                    return line
        for line in frames:                     # LRU-to-MRU order
            if not protected(line):
                return line
        return frames[0]                        # overall LRU, last resort

    def insert(self, line: LLCLine,
               protect_block: Optional[int] = None) -> Optional[LLCLine]:
        """Insert ``line`` at MRU; returns the policy victim if one was
        displaced. The caller handles the victim (writeback / WB_DE).

        The inserted line's own block is always protected from victim
        selection (its other frame may be in the same set)."""
        index = self._index_for(line)
        if line.block in index:
            raise SimulationError(
                f"bank {self.bank_id}: duplicate {line.kind.value} frame "
                f"for block {line.block:#x}")
        set_idx = self.set_of(line.block)
        victim: Optional[LLCLine] = None
        if self.set_full(set_idx):
            victim = self.choose_victim(
                set_idx, protect_block if protect_block is not None
                else line.block)
            self.remove(victim)
        self._frames[set_idx].append(line)
        index[line.block] = line
        if (self.replacement is LLCReplacement.SP_LRU
                and line.kind is not LineKind.SPILLED):
            # spLRU orders a block's spilled entry *above* the block so
            # the block ages out first; a (re)inserted data frame lands
            # at MRU and would invert that, letting replacement evict
            # the live entry while its block stays resident (the
            # case-(iiib) hazard). Restore the entry-above-block order.
            spill = self._spill_index.get(line.block)
            if spill is not None and \
                    "drop-splru-reorder" not in self.mutations:
                self._touch(spill)
        if self.obs is not None:
            if line.kind is LineKind.SPILLED:
                self.obs.emit(EventKind.ENTRY_SPILL, block=line.block)
            if victim is not None:
                self.obs.emit(EventKind.LLC_EVICT, block=victim.block,
                              cause=victim.kind.value)
        return victim

    def remove(self, line: LLCLine) -> None:
        self._frames[self.set_of(line.block)].remove(line)
        del self._index_for(line)[line.block]

    def load_set(self, set_idx: int, lines: List[LLCLine]) -> None:
        """Replace set ``set_idx`` with ``lines`` (LRU-to-MRU order).

        The restore half of the columnar sync-point contract
        (:mod:`repro.kernel.columnar`): existing frames of the set are
        unindexed and the set rebuilt, with the same duplicate check
        that guards :meth:`insert`.
        """
        if len(lines) > self.ways:
            raise SimulationError(
                f"{len(lines)} frames for a {self.ways}-way set")
        for line in self._frames[set_idx]:
            del self._index_for(line)[line.block]
        self._frames[set_idx] = list(lines)
        for line in lines:
            if self.set_of(line.block) != set_idx:
                raise SimulationError(
                    f"block {line.block:#x} does not map to set "
                    f"{set_idx} of bank {self.bank_id}")
            index = self._index_for(line)
            if line.block in index:
                raise SimulationError(
                    f"bank {self.bank_id}: duplicate "
                    f"{line.kind.value} frame for block "
                    f"{line.block:#x}")
            index[line.block] = line

    def columns(self):
        """Columnar (SoA) image of the bank -- frame arrays plus the
        aligned directory-entry occupancy columns (see
        :mod:`repro.kernel.columnar`)."""
        from repro.kernel.columnar import LLCColumns
        return LLCColumns.capture(self)

    def load_columns(self, columns) -> None:
        """Restore the bank from a columnar image (the inverse of
        :meth:`columns`; entries are rebuilt field-equal)."""
        columns.restore(self)

    # ------------------------------------------------------------------
    # ZeroDEV entry management on existing frames
    # ------------------------------------------------------------------
    def fuse(self, block: int, entry: DirectoryEntry) -> bool:
        """Fuse ``entry`` into the resident data frame of its block.

        Returns False when the block is not in this bank (the caller then
        spills instead). Fusing costs no extra frame; the frame becomes
        (V=0, D=1, b0=0) with the block's dirtiness preserved in b1.
        """
        line = self._data_index.get(block)
        if line is None or line.kind is not LineKind.DATA:
            return False
        line.kind = LineKind.FUSED
        line.entry = entry
        entry.location = EntryLocation.LLC_FUSED
        if self.obs is not None:
            self.obs.emit(EventKind.ENTRY_FUSE, block=block)
        return True

    def unfuse(self, block: int) -> DirectoryEntry:
        """Detach the fused entry, restoring the frame to an ordinary
        block (the reconstruction step of Section III-C2)."""
        line = self._data_index.get(block)
        if line is None or line.kind is not LineKind.FUSED:
            raise ProtocolInvariantError(
                f"no fused entry for block {block:#x} in bank "
                f"{self.bank_id}")
        entry = line.entry
        assert entry is not None
        line.kind = LineKind.DATA
        line.entry = None
        if self.obs is not None:
            self.obs.emit(EventKind.ENTRY_UNFUSE, block=block)
        return entry

    def free_spill(self, block: int) -> DirectoryEntry:
        """Free the spilled-entry frame of ``block`` (entry freed/moved)."""
        line = self._spill_index.get(block)
        if line is None:
            raise ProtocolInvariantError(
                f"no spilled entry for block {block:#x} in bank "
                f"{self.bank_id}")
        self.remove(line)
        entry = line.entry
        assert entry is not None
        return entry

    # ------------------------------------------------------------------
    # Introspection (occupancy probes, invariant checks, tests)
    # ------------------------------------------------------------------
    def frames_in_set(self, set_idx: int) -> List[LLCLine]:
        return self._frames[set_idx]

    def all_frames(self):
        for frames in self._frames:
            yield from frames

    def entry_frame_count(self) -> int:
        """Number of frames consumed by spilled entries (LLC pressure)."""
        return len(self._spill_index) and sum(
            1 for line in self._spill_index.values())

    def spilled_count(self) -> int:
        return len(self._spill_index)

    def fused_count(self) -> int:
        return sum(1 for line in self._data_index.values()
                   if line.kind is LineKind.FUSED)

    def data_block_count(self) -> int:
        return len(self._data_index)
