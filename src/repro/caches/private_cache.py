"""Per-core private cache hierarchy: split L1I/L1D over a unified L2.

The L2 is the coherence endpoint of a core (the sparse directory tracks L2
contents) and is inclusive of both L1s, so an L2 eviction back-invalidates
the L1 copy silently while the L2 eviction itself is notified to the
directory -- matching Section III-A: "All evictions from the private cache
hierarchy are notified to the sparse directory".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.caches.block import L1Line, L2Line, MESI
from repro.caches.set_assoc import SetAssocCache
from repro.common.config import CacheGeometry
from repro.common.errors import ProtocolInvariantError
from repro.obs.events import EventKind


@dataclass
class EvictionNotice:
    """An L2 eviction to be reported to the home directory slice.

    ``state`` is the coherence state at eviction time; M-state notices
    carry the block data (a full writeback), E/S notices are dataless
    (ZeroDEV's E notices additionally carry the fused-block low bits).
    """

    core: int
    block: int
    state: MESI
    version: int
    is_code: bool


class PrivateHierarchy:
    """One core's L1I + L1D + L2 stack."""

    #: Observability seam (repro.obs): None = tracing disabled.
    obs = None

    def __init__(self, core: int, l1i: CacheGeometry, l1d: CacheGeometry,
                 l2: CacheGeometry) -> None:
        self.core = core
        self._l1i: SetAssocCache[L1Line] = SetAssocCache(l1i)
        self._l1d: SetAssocCache[L1Line] = SetAssocCache(l1d)
        self._l2: SetAssocCache[L2Line] = SetAssocCache(l2)
        #: Safety-shrink journal for the batched kernel (repro.kernel):
        #: ``epoch`` is bumped and the affected block appended to
        #: ``shrink_log`` by every mutation that can make a previously
        #: safe hit unsafe (invalidation, downgrade, re-state to S, and
        #: the L2 *victim* of a fill).  Mutations that only extend
        #: safety -- the fill itself, the upgrade grant to E, the
        #: silent E->M of commit_write -- deliberately do not, because
        #: the kernel's cached classification is allowed to
        #: under-approximate (an unclassified hit just takes the scalar
        #: hit path).  The kernel is the journal's single consumer and
        #: clears it as it reconciles.
        self.epoch = 0
        self.shrink_log: List[int] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def probe(self, block: int) -> Optional[MESI]:
        """Coherence state of ``block`` in this core, or None."""
        line = self._l2.peek(block)
        return line.state if line else None

    def line_of(self, block: int) -> Optional[L2Line]:
        return self._l2.peek(block)

    def cached_blocks(self):
        """All blocks resident in the L2 (the directory-visible set)."""
        return [line.block for line in self._l2.lines()]

    def __contains__(self, block: int) -> bool:
        return block in self._l2

    def columns(self):
        """Columnar (SoA) image of both L1s and the L2: contiguous
        block/state/version arrays in set-major LRU-to-MRU order (see
        :mod:`repro.kernel.columnar` for the sync-point contract)."""
        from repro.kernel.columnar import HierarchyColumns
        return HierarchyColumns.capture(self)

    def load_columns(self, columns) -> None:
        """Restore the hierarchy from a columnar image (the inverse of
        :meth:`columns`; property-tested to round-trip losslessly)."""
        columns.restore(self)

    # ------------------------------------------------------------------
    # Lookups from the core
    # ------------------------------------------------------------------
    def read_hit_level(self, block: int, code: bool) -> Optional[str]:
        """Service a read/ifetch locally if possible.

        Returns ``"l1"`` or ``"l2"`` on a hit (filling the L1 on an L2
        hit), or None on a core-cache miss.
        """
        l1 = self._l1i if code else self._l1d
        if l1.lookup(block) is not None:
            self._l2.lookup(block)      # keep L2 recency in sync
            return "l1"
        line = self._l2.lookup(block)
        if line is None:
            return None
        l1.insert(L1Line(block))        # L1 victim needs no action
        return "l2"

    def write_hit_state(self, block: int) -> Optional[MESI]:
        """Current state for a store to ``block`` (touches, fills L1D)."""
        line = self._l2.lookup(block)
        if line is None:
            return None
        if self._l1d.lookup(block) is None:
            self._l1d.insert(L1Line(block))
        return line.state

    def commit_write(self, block: int, version: int) -> None:
        """Commit a store: requires M or E; E upgrades to M silently."""
        line = self._l2.peek(block)
        if line is None or line.state is MESI.S:
            raise ProtocolInvariantError(
                f"core {self.core} writing block {block:#x} without "
                f"ownership (state={line.state if line else None})")
        line.state = MESI.M
        line.dirty = True
        line.version = version

    # ------------------------------------------------------------------
    # Fills and coherence actions from the uncore
    # ------------------------------------------------------------------
    def fill(self, block: int, state: MESI, version: int,
             code: bool) -> List[EvictionNotice]:
        """Install ``block`` after a miss; returns L2 eviction notices."""
        if block in self._l2:
            raise ProtocolInvariantError(
                f"double fill of block {block:#x} in core {self.core}")
        notices: List[EvictionNotice] = []
        victim = self._l2.insert(
            L2Line(block, state, version, dirty=state is MESI.M,
                   is_code=code))
        if victim is not None:
            self.epoch += 1
            self.shrink_log.append(victim.block)
            self._back_invalidate_l1(victim.block)
            if self.obs is not None:
                self.obs.emit(EventKind.L2_EVICT, block=victim.block,
                              core=self.core, cause=victim.state.name)
            notices.append(EvictionNotice(self.core, victim.block,
                                          victim.state, victim.version,
                                          victim.is_code))
        l1 = self._l1i if code else self._l1d
        l1.insert(L1Line(block))
        return notices

    def invalidate(self, block: int, cause: str = "") -> Optional[L2Line]:
        """Remove ``block`` everywhere; returns the L2 line if present.

        ``cause`` tags the resulting PRIV_INV trace event with what made
        the copy die (``dev`` / ``getx`` / ``inclusion`` / ``socket`` --
        see :class:`repro.obs.events.InvCause`).
        """
        self.epoch += 1
        self.shrink_log.append(block)
        self._back_invalidate_l1(block)
        line = self._l2.remove(block)
        if line is not None and self.obs is not None:
            self.obs.emit(EventKind.PRIV_INV, block=block,
                          core=self.core, cause=cause)
        return line

    def downgrade_to_s(self, block: int) -> L2Line:
        """Owner response to a forwarded GETS: M/E -> S, supply data."""
        line = self._l2.peek(block)
        if line is None or line.state is MESI.S:
            raise ProtocolInvariantError(
                f"core {self.core} asked to downgrade block {block:#x} "
                f"it does not own")
        self.epoch += 1
        self.shrink_log.append(block)
        line.state = MESI.S
        line.dirty = False
        return line

    def refresh_version(self, block: int, version: int) -> None:
        """Apply a hybrid UPDATE push: refresh an S copy's data in place.

        The line stays S (the update protocol keeps every sharer
        readable, nobody gains ownership) and stays clean -- the writer
        writes the new version through to the LLC, so the pushed copy
        never needs writing back.  No journal entry: safety shrinks only
        when membership or S-ness changes, and a version refresh changes
        neither (S writes are already classified unsafe).
        """
        line = self._l2.peek(block)
        if line is None or line.state is not MESI.S:
            raise ProtocolInvariantError(
                f"core {self.core} received an update for block "
                f"{block:#x} it does not share "
                f"(state={line.state if line else None})")
        line.version = version

    def set_state(self, block: int, state: MESI) -> None:
        line = self._l2.peek(block)
        if line is None:
            raise ProtocolInvariantError(
                f"core {self.core} has no block {block:#x} to re-state")
        if state is MESI.S:
            # Losing ownership shrinks store safety; gaining it (the
            # upgrade grant to E) only extends safety and needs no
            # journal entry.
            self.epoch += 1
            self.shrink_log.append(block)
        line.state = state

    # ------------------------------------------------------------------
    def _back_invalidate_l1(self, block: int) -> None:
        self._l1i.remove(block)
        self._l1d.remove(block)
