"""Workload generation: synthetic traces with per-application profiles."""

from repro.workloads.trace import CoreTrace, Op, TraceEvent, Workload
from repro.workloads.synthetic import AppProfile, SharingPattern, generate
from repro.workloads.suites import (
    SUITES,
    suite_profiles,
    make_multithreaded,
    make_rate_workload,
    make_heterogeneous_mixes,
    make_server_workload,
)

__all__ = [
    "AppProfile",
    "CoreTrace",
    "Op",
    "SUITES",
    "SharingPattern",
    "TraceEvent",
    "Workload",
    "generate",
    "make_heterogeneous_mixes",
    "make_multithreaded",
    "make_rate_workload",
    "make_server_workload",
    "suite_profiles",
]
