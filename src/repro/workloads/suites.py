"""Application-suite profiles (Table II) and workload-mix builders.

Each named profile is a synthetic stand-in for the corresponding benchmark
in the paper's evaluation, characterized by the quantities that drive the
figures: working-set sizes relative to the cache hierarchy, sharing
fraction and pattern, write intensity, code footprint, and locality. The
suite averages for the fraction of directory entries tracking shared
blocks (Section III-C2: PARSEC ~10%, SPLASH2X ~19%, SPEC OMP ~0.5%, FFTW
~0, CPU2017-rate ~9% -- from shared code) anchor the calibration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.config import SystemConfig
from repro.workloads.synthetic import AppProfile, SharingPattern, generate
from repro.workloads.trace import CoreTrace, Workload

_P = AppProfile
_SP = SharingPattern


def _parsec() -> List[AppProfile]:
    return [
        _P("blackscholes", ws_private_x_l2=0.8, ws_shared_x_llc=0.01,
           shared_fraction=0.03, locality=0.85),
        _P("canneal", ws_private_x_l2=8.0, ws_shared_x_llc=0.30,
           shared_fraction=0.18, locality=0.35, write_fraction=0.15,
           pattern=_SP.READ_SHARED),
        _P("dedup", ws_private_x_l2=3.0, ws_shared_x_llc=0.10,
           shared_fraction=0.15, pattern=_SP.PRODUCER_CONSUMER,
           shared_write_fraction=0.3),
        _P("facesim", ws_private_x_l2=5.0, ws_shared_x_llc=0.08,
           shared_fraction=0.08, locality=0.6),
        _P("ferret", ws_private_x_l2=3.5, ws_shared_x_llc=0.08,
           shared_fraction=0.12, pattern=_SP.PRODUCER_CONSUMER),
        _P("fluidanimate", ws_private_x_l2=2.5, ws_shared_x_llc=0.06,
           shared_fraction=0.10, pattern=_SP.MIXED,
           shared_write_fraction=0.25),
        _P("freqmine", ws_private_x_l2=1.2, ws_shared_x_llc=0.15,
           shared_fraction=0.30, pattern=_SP.MIGRATORY,
           migratory_run=4, locality=0.75),
        _P("streamcluster", ws_private_x_l2=1.5, ws_shared_x_llc=0.25,
           shared_fraction=0.35, pattern=_SP.READ_SHARED,
           shared_write_fraction=0.02, locality=0.5),
        _P("swaptions", ws_private_x_l2=0.6, ws_shared_x_llc=0.01,
           shared_fraction=0.02, locality=0.9),
        # vips streams a working set that just fits the 16-way LLC:
        # the most LLC-capacity-sensitive PARSEC app (Figure 6: -14%
        # with two ways removed).
        _P("vips", ws_private_x_l2=4.0, ws_shared_x_llc=0.04,
           shared_fraction=0.05, locality=0.5, hot_fraction=0.85,
           write_fraction=0.35),
    ]


def _splash2x() -> List[AppProfile]:
    return [
        _P("fft", ws_private_x_l2=4.0, ws_shared_x_llc=0.30,
           shared_fraction=0.35, pattern=_SP.READ_SHARED,
           shared_write_fraction=0.15, locality=0.5),
        _P("lu_cb", ws_private_x_l2=2.0, ws_shared_x_llc=0.25,
           shared_fraction=0.30, pattern=_SP.READ_SHARED,
           shared_write_fraction=0.08, locality=0.7),
        # lu_ncb (no blocking): LLC-capacity sensitive (Figure 6:
        # -9% at 14 ways, -17% at 12 ways).
        _P("lu_ncb", ws_private_x_l2=4.5, ws_shared_x_llc=0.25,
           shared_fraction=0.25, pattern=_SP.READ_SHARED,
           shared_write_fraction=0.10, locality=0.5,
           hot_fraction=0.65),
        _P("radix", ws_private_x_l2=6.0, ws_shared_x_llc=0.25,
           shared_fraction=0.25, pattern=_SP.PRODUCER_CONSUMER,
           locality=0.35, write_fraction=0.4),
        _P("ocean_cp", ws_private_x_l2=8.0, ws_shared_x_llc=0.45,
           shared_fraction=0.32, pattern=_SP.READ_SHARED,
           shared_write_fraction=0.2, locality=0.4),
        _P("radiosity", ws_private_x_l2=2.5, ws_shared_x_llc=0.20,
           shared_fraction=0.30, pattern=_SP.MIXED),
        _P("raytrace", ws_private_x_l2=2.0, ws_shared_x_llc=0.30,
           shared_fraction=0.40, pattern=_SP.READ_SHARED,
           shared_write_fraction=0.03, locality=0.6),
        _P("water_nsquared", ws_private_x_l2=1.5, ws_shared_x_llc=0.18,
           shared_fraction=0.35, pattern=_SP.MIGRATORY, migratory_run=8),
        _P("water_spatial", ws_private_x_l2=1.5, ws_shared_x_llc=0.15,
           shared_fraction=0.28, pattern=_SP.MIXED),
    ]


def _specomp() -> List[AppProfile]:
    # OpenMP codes partition their grids: almost all accesses private.
    return [
        _P("312.swim", ws_private_x_l2=8.0, ws_shared_x_llc=0.02,
           shared_fraction=0.01, locality=0.3, write_fraction=0.35),
        _P("314.mgrid", ws_private_x_l2=6.0, ws_shared_x_llc=0.02,
           shared_fraction=0.01, locality=0.45),
        _P("316.applu", ws_private_x_l2=5.0, ws_shared_x_llc=0.02,
           shared_fraction=0.015, locality=0.5),
        _P("320.equake", ws_private_x_l2=4.0, ws_shared_x_llc=0.03,
           shared_fraction=0.02, locality=0.55),
        _P("324.apsi", ws_private_x_l2=3.0, ws_shared_x_llc=0.02,
           shared_fraction=0.01, locality=0.6),
        # 330.art: the LLC-sensitive SPEC OMP code (Figure 6: -6%
        # at 14 ways, -14% at 12 ways).
        _P("330.art", ws_private_x_l2=4.5, ws_shared_x_llc=0.03,
           shared_fraction=0.02, locality=0.5, hot_fraction=0.55,
           write_fraction=0.2),
    ]


def _fftw() -> List[AppProfile]:
    # FFTW alternates butterfly-compute phases (good locality) with
    # transpose phases (streaming, low locality, write-heavy) -- the
    # structure that makes it LLC-capacity sensitive (Figure 22).
    return [
        _P("fftw", ws_private_x_l2=6.0, ws_shared_x_llc=0.02,
           shared_fraction=0.005, locality=0.45, write_fraction=0.4,
           phases=(
               (3, {"locality": 0.7, "write_fraction": 0.3}),
               (1, {"locality": 0.25, "write_fraction": 0.55}),
               (3, {"locality": 0.7, "write_fraction": 0.3}),
               (1, {"locality": 0.25, "write_fraction": 0.55}),
           )),
    ]


def _cpu2017() -> List[AppProfile]:
    """SPEC CPU 2017 profiles (single-threaded; run in rate/het mixes)."""
    return [
        _P("blender", ws_private_x_l2=3.0, code_x_l1i=3.0, locality=0.6),
        _P("bwaves.1", ws_private_x_l2=7.0, locality=0.35,
           write_fraction=0.25),
        _P("bwaves.2", ws_private_x_l2=7.0, locality=0.37,
           write_fraction=0.25),
        _P("bwaves.3", ws_private_x_l2=6.5, locality=0.36,
           write_fraction=0.25),
        _P("bwaves.4", ws_private_x_l2=6.8, locality=0.34,
           write_fraction=0.25),
        _P("cactuBSSN", ws_private_x_l2=5.0, locality=0.5),
        _P("cam4", ws_private_x_l2=4.0, code_x_l1i=4.0, locality=0.55),
        _P("deepsjeng", ws_private_x_l2=2.0, code_x_l1i=1.5,
           locality=0.75),
        _P("exchange2", ws_private_x_l2=0.5, code_x_l1i=1.2,
           locality=0.92),
        _P("fotonik3d", ws_private_x_l2=7.5, locality=0.3,
           write_fraction=0.3),
        _P("gcc.pp", ws_private_x_l2=3.0, code_x_l1i=5.0, locality=0.6),
        # gcc.ppO2: the LLC-sensitive rate workload (Figure 6: -5%
        # at 14 ways, -9% at 12 ways).
        _P("gcc.ppO2", ws_private_x_l2=3.8, code_x_l1i=5.0,
           locality=0.52, hot_fraction=0.5),
        _P("gcc.ref32", ws_private_x_l2=3.2, code_x_l1i=5.0,
           locality=0.58),
        _P("gcc.ref32O5", ws_private_x_l2=3.5, code_x_l1i=5.0,
           locality=0.55),
        _P("gcc.smaller", ws_private_x_l2=2.5, code_x_l1i=4.5,
           locality=0.62),
        _P("imagick", ws_private_x_l2=1.0, locality=0.85),
        _P("lbm", ws_private_x_l2=8.0, locality=0.3, write_fraction=0.45),
        _P("leela", ws_private_x_l2=1.2, locality=0.8),
        _P("mcf", ws_private_x_l2=9.0, locality=0.3, write_fraction=0.3),
        _P("nab", ws_private_x_l2=1.5, locality=0.75),
        _P("namd", ws_private_x_l2=1.8, locality=0.72),
        _P("omnetpp", ws_private_x_l2=6.0, code_x_l1i=2.5, locality=0.4),
        _P("parest", ws_private_x_l2=4.0, locality=0.55),
        _P("perl.check", ws_private_x_l2=2.0, code_x_l1i=4.0,
           locality=0.68),
        _P("perl.diff", ws_private_x_l2=2.2, code_x_l1i=4.0,
           locality=0.66),
        _P("perl.split", ws_private_x_l2=2.1, code_x_l1i=4.0,
           locality=0.67),
        _P("povray", ws_private_x_l2=0.8, code_x_l1i=2.0, locality=0.88),
        _P("roms", ws_private_x_l2=5.5, locality=0.42),
        _P("wrf", ws_private_x_l2=4.5, code_x_l1i=3.5, locality=0.5),
        _P("x264.pass1", ws_private_x_l2=2.0, locality=0.7),
        _P("x264.pass2", ws_private_x_l2=2.2, locality=0.68),
        _P("x264.seek500", ws_private_x_l2=2.4, locality=0.66),
        _P("xalancbmk", ws_private_x_l2=5.0, code_x_l1i=4.5,
           locality=0.38, write_fraction=0.25),
        _P("xz.cld", ws_private_x_l2=3.5, locality=0.5),
        _P("xz.docs", ws_private_x_l2=3.0, locality=0.55),
        _P("xz.combined", ws_private_x_l2=3.8, locality=0.48),
    ]


def _server() -> List[AppProfile]:
    """Throughput server workloads: huge code, big heaps, real sharing."""
    common = dict(code_fraction=0.30, code_x_l1i=8.0,
                  pattern=_SP.PRODUCER_CONSUMER,
                  shared_write_fraction=0.2)
    return [
        _P("SPECjbb", ws_private_x_l2=4.0, ws_shared_x_llc=0.20,
           shared_fraction=0.15, locality=0.5, **common),
        _P("SPECWeb-B", ws_private_x_l2=3.0, ws_shared_x_llc=0.15,
           shared_fraction=0.12, locality=0.55, **common),
        _P("SPECWeb-E", ws_private_x_l2=3.2, ws_shared_x_llc=0.15,
           shared_fraction=0.13, locality=0.53, **common),
        _P("SPECWeb-S", ws_private_x_l2=3.5, ws_shared_x_llc=0.18,
           shared_fraction=0.14, locality=0.5, **common),
        _P("TPC-C", ws_private_x_l2=5.0, ws_shared_x_llc=0.25,
           shared_fraction=0.18, locality=0.45, **common),
        _P("TPC-E", ws_private_x_l2=5.5, ws_shared_x_llc=0.22,
           shared_fraction=0.16, locality=0.47, **common),
        _P("TPC-H", ws_private_x_l2=7.0, ws_shared_x_llc=0.30,
           shared_fraction=0.20, locality=0.35, **common),
    ]


SUITES: Dict[str, List[AppProfile]] = {
    "PARSEC": _parsec(),
    "SPLASH2X": _splash2x(),
    "SPECOMP": _specomp(),
    "FFTW": _fftw(),
    "CPU2017": _cpu2017(),
    "SERVER": _server(),
}


def suite_profiles(suite: str) -> List[AppProfile]:
    """The profiles of one suite, by name (KeyError-checked)."""
    try:
        return SUITES[suite]
    except KeyError:
        raise KeyError(f"unknown suite {suite!r}; "
                       f"choose from {sorted(SUITES)}") from None


def find_profile(name: str) -> AppProfile:
    """Locate a profile by application name across all suites."""
    for profiles in SUITES.values():
        for profile in profiles:
            if profile.name == name:
                return profile
    raise KeyError(f"unknown application {name!r}")


# ----------------------------------------------------------------------
# Workload-mix builders
# ----------------------------------------------------------------------
def make_multithreaded(profile: AppProfile, config: SystemConfig,
                       accesses_per_core: int, seed: int = 0) -> Workload:
    """One multi-threaded application on every core of the socket."""
    traces = generate(profile, config, accesses_per_core, seed)
    return Workload(profile.name, traces)


def make_rate_workload(profile: AppProfile, config: SystemConfig,
                       accesses_per_core: int, seed: int = 0) -> Workload:
    """Homogeneous (rate) multi-programming: one copy per core.

    Data spaces are disjoint per copy; the *code* region is shared across
    the copies (same binary), which is what populates the directory with
    S-state entries for SPEC-rate workloads (Section III-C2).
    """
    traces: List[CoreTrace] = []
    for core in range(config.n_cores):
        traces.extend(generate(profile, config, accesses_per_core,
                               seed=seed, single_thread_core=core,
                               instance=core))
    return Workload(f"{profile.name}.rate", traces)


def make_heterogeneous_mixes(config: SystemConfig, n_mixes: int,
                             accesses_per_core: int,
                             seed: int = 0) -> List[Workload]:
    """Heterogeneous multi-programmed mixes W1..Wn over CPU2017 apps.

    Applications are dealt round-robin from a shuffled deck so every app
    has equal representation across the mixes (Section IV).
    """
    apps = suite_profiles("CPU2017")
    rng = np.random.default_rng(seed)
    deck: List[AppProfile] = []
    mixes: List[Workload] = []
    for index in range(n_mixes):
        chosen: List[AppProfile] = []
        while len(chosen) < config.n_cores:
            if not deck:
                deck = list(apps)
                rng.shuffle(deck)  # type: ignore[arg-type]
            candidate = deck.pop()
            if candidate not in chosen:
                chosen.append(candidate)
        traces = []
        for core, profile in enumerate(chosen):
            traces.extend(generate(
                profile, config, accesses_per_core, seed=seed + index,
                single_thread_core=core, instance=core))
        mixes.append(Workload(f"W{index + 1}", traces))
    return mixes


def make_server_workload(profile: AppProfile, config: SystemConfig,
                         accesses_per_core: int, seed: int = 0
                         ) -> Workload:
    """A throughput server workload across all cores of a big socket."""
    traces = generate(profile, config, accesses_per_core, seed)
    return Workload(profile.name, traces)
