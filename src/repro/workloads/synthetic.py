"""Synthetic address-stream generation with per-application profiles.

The paper's figures are driven by the *sharing structure* of the memory
streams -- working-set sizes relative to the caches, the fraction of
accesses to shared data, the sharing pattern (read-shared, migratory,
producer-consumer), write intensity, and the code footprint (code fills in
S state and is what makes SPEC-rate workloads populate the directory with
shared entries). :class:`AppProfile` captures exactly those quantities,
sized *relative to the cache geometry* so the same profile is meaningful
for the paper-scale and the runtime-scaled system alike.

Generation is vectorized with numpy and fully deterministic per
``(profile, seed, core)``.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import SystemConfig
from repro.workloads.trace import CoreTrace, Op, Workload

#: Blocks per OS page (4 KB pages of 64-byte blocks).
PAGE_BLOCKS_SHIFT = 6
#: Physical page-frame number width after scattering.
FRAME_BITS = 34


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, vectorized over uint64 (wraps silently)."""
    z = values + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ z >> np.uint64(30)) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ z >> np.uint64(27)) * np.uint64(0x94D049BB133111EB)
    return z ^ z >> np.uint64(31)


def scatter_pages(blocks: np.ndarray, salt: int) -> np.ndarray:
    """Map app-local blocks to scattered physical blocks, page by page.

    Models OS physical-page allocation: virtually contiguous regions land
    on effectively random page frames, which is what spreads an
    application over cache/directory sets in a real machine. Instances
    with the same ``salt`` share a mapping (e.g. the code pages of the
    copies in a SPEC-rate workload); different salts give disjoint*
    layouts (*up to birthday collisions in a 2^34-frame space).
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    pages = (blocks >> PAGE_BLOCKS_SHIFT).astype(np.uint64)
    offsets = blocks & (1 << PAGE_BLOCKS_SHIFT) - 1
    with np.errstate(over="ignore"):
        frames = _splitmix64(pages ^ np.uint64(salt))
    frames &= np.uint64((1 << FRAME_BITS) - 1)
    return (frames.astype(np.int64) << PAGE_BLOCKS_SHIFT) | offsets


class SharingPattern(enum.Enum):
    """How the shared region of a multi-threaded application behaves."""

    READ_SHARED = "read-shared"          # read-mostly shared data
    MIGRATORY = "migratory"              # objects bounce between writers
    PRODUCER_CONSUMER = "producer-consumer"
    MIXED = "mixed"                      # half read-shared, half migratory


@dataclass(frozen=True)
class AppProfile:
    """A synthetic application, sized relative to the cache hierarchy.

    Attributes
    ----------
    ws_private_x_l2:
        Per-thread private working set as a multiple of one L2 capacity.
    ws_shared_x_llc:
        Shared-region size as a fraction of the LLC capacity.
    code_x_l1i:
        Code footprint as a multiple of one L1I capacity.
    shared_fraction:
        Fraction of *data* accesses that target the shared region.
    write_fraction:
        Store fraction among private-data accesses.
    shared_write_fraction:
        Store fraction among shared-data accesses (pattern-dependent
        defaults apply for migratory/producer-consumer).
    code_fraction:
        Instruction-fetch fraction of all accesses.
    locality:
        Probability that an access targets the hot subset of its region.
    hot_fraction:
        Size of the hot subset relative to its region.
    pattern:
        Sharing behaviour of the shared region.
    migratory_run:
        Accesses a core performs on a migratory object before it moves.
    """

    name: str
    ws_private_x_l2: float = 2.0
    ws_shared_x_llc: float = 0.05
    code_x_l1i: float = 1.0
    shared_fraction: float = 0.1
    write_fraction: float = 0.3
    shared_write_fraction: float = 0.1
    code_fraction: float = 0.25
    locality: float = 0.7
    hot_fraction: float = 0.03
    #: Size of the L2/LLC-resident warm tier relative to the region; the
    #: lever that makes an application LLC-capacity sensitive (vips,
    #: lu_ncb, 330.art, gcc.ppO2 in Figure 6).
    warm_fraction: float = 0.25
    pattern: SharingPattern = SharingPattern.READ_SHARED
    migratory_run: int = 6
    #: Optional program phases: a tuple of (weight, {field: value})
    #: pairs. The access stream is split proportionally to the weights
    #: and each segment is generated with the overridden profile fields
    #: (e.g. FFTW's compute vs transpose phases). Empty = single phase.
    phases: tuple = ()

    def with_(self, **changes) -> "AppProfile":
        return replace(self, **changes)

    def phase_profiles(self, total: int):
        """Expand ``phases`` into (accesses, profile) segments."""
        if not self.phases:
            return [(total, self)]
        weights = [weight for weight, _ in self.phases]
        scale = total / sum(weights)
        segments = []
        allocated = 0
        for index, (weight, overrides) in enumerate(self.phases):
            count = (total - allocated if index == len(self.phases) - 1
                     else int(weight * scale))
            allocated += count
            segments.append(
                (count, self.with_(phases=(), **overrides)))
        return segments


def _region_addresses(rng: np.random.Generator, count: int, size: int,
                      locality: float, hot_fraction: float,
                      warm_fraction: float = 0.25) -> np.ndarray:
    """Three-tier block offsets inside a region of ``size`` blocks.

    ``locality`` of the accesses hit a tiny *hot* subset (L1-resident),
    most of the rest hit a *warm* subset (L2-resident), and the remainder
    roam the whole region (the cold tail that drives core-cache misses
    and directory churn). This shape gives the realistic hit-rate pyramid
    real applications show.
    """
    if count == 0:
        return np.empty(0, dtype=np.int64)
    size = max(size, 1)
    hot_size = max(1, int(size * hot_fraction))
    warm_size = max(hot_size, int(size * warm_fraction))
    # ``locality`` is a relative cache-friendliness knob in [0, 1]; real
    # applications keep L1 hit rates high, so it is mapped onto a hot-tier
    # probability of 0.80..0.95 and a cold-tail probability of 0..0.08.
    p_hot = 0.80 + 0.15 * locality
    p_cold = (1.0 - locality) * 0.08
    draw = rng.random(count)
    hot = draw < p_hot
    cold = draw >= 1.0 - p_cold
    warm = ~hot & ~cold
    offsets = np.empty(count, dtype=np.int64)
    offsets[hot] = rng.integers(0, hot_size, int(hot.sum()))
    offsets[warm] = rng.integers(0, warm_size, int(warm.sum()))
    offsets[cold] = rng.integers(0, size, int(cold.sum()))
    return offsets


def _shared_offsets(profile: AppProfile, rng: np.random.Generator,
                    positions: np.ndarray, core: int, n_cores: int,
                    shared_blocks: int) -> tuple:
    """Offsets and store mask for the shared-region accesses of one core.

    ``positions`` are the event indices of the shared accesses within the
    core's stream; migratory rotation uses them as a time proxy so that
    objects genuinely bounce from writer to writer.
    """
    count = len(positions)
    pattern = profile.pattern
    shared_blocks = max(shared_blocks, n_cores)
    if pattern is SharingPattern.MIXED and count:
        half = rng.random(count) < 0.5
        off_a, wr_a = _shared_offsets(
            profile.with_(pattern=SharingPattern.READ_SHARED), rng,
            positions[half], core, n_cores, shared_blocks)
        off_b, wr_b = _shared_offsets(
            profile.with_(pattern=SharingPattern.MIGRATORY), rng,
            positions[~half], core, n_cores, shared_blocks)
        offsets = np.empty(count, dtype=np.int64)
        writes = np.empty(count, dtype=bool)
        offsets[half], writes[half] = off_a, wr_a
        offsets[~half], writes[~half] = off_b, wr_b
        return offsets, writes

    if pattern is SharingPattern.MIGRATORY:
        # The shared region is divided into multi-block objects; at any
        # time an object is worked on by exactly one rotating core, which
        # reads and writes it for ``migratory_run`` accesses before it
        # moves on -- the classic migratory dirty pattern. The rotation
        # is keyed to the core's shared-access count so each object is
        # genuinely reused before it migrates.
        object_blocks = 4
        n_objects = max(1, shared_blocks // object_blocks)
        shared_index = np.arange(count, dtype=np.int64)
        turn = shared_index // max(1, profile.migratory_run)
        objects = (turn * n_cores + core) % n_objects
        offsets = (objects * object_blocks
                   + rng.integers(0, object_blocks, count))
        writes = rng.random(count) < 0.5
        return offsets, writes

    if pattern is SharingPattern.PRODUCER_CONSUMER:
        # Each block has a producer core (block % n_cores); a core's
        # stores hit its own slice, loads roam the whole region.
        writes = rng.random(count) < max(profile.shared_write_fraction,
                                         0.25)
        offsets = _region_addresses(rng, count, shared_blocks,
                                    profile.locality,
                                    profile.hot_fraction)
        n_writes = int(writes.sum())
        own = rng.integers(0, max(1, shared_blocks // n_cores), n_writes)
        offsets[writes] = own * n_cores + core % n_cores
        np.minimum(offsets, shared_blocks - 1, out=offsets)
        return offsets, writes

    # READ_SHARED
    offsets = _region_addresses(rng, count, shared_blocks,
                                profile.locality, profile.hot_fraction,
                                profile.warm_fraction)
    writes = rng.random(count) < profile.shared_write_fraction
    return offsets, writes


def generate(profile: AppProfile, config: SystemConfig,
             accesses_per_core: int, seed: int = 0,
             cores: Optional[Sequence[int]] = None,
             single_thread_core: Optional[int] = None,
             instance: int = 0) -> List[CoreTrace]:
    """Generate per-core traces for ``profile`` on ``config``'s caches.

    ``cores`` selects which cores run the application (default: all).
    ``single_thread_core`` generates a one-thread instance for that core
    (rate/heterogeneous mixes); ``instance`` distinguishes the data
    address spaces of co-scheduled copies while the *code* pages of every
    instance of the same binary share one mapping -- the mechanism that
    gives SPEC-rate workloads their S-state directory population.
    """
    if single_thread_core is not None:
        cores = [single_thread_core]
        app_cores = [0]
    else:
        cores = list(cores) if cores is not None else list(
            range(config.n_cores))
        app_cores = list(range(len(cores)))

    l2_blocks = config.l2.blocks
    llc_blocks = config.llc.blocks
    l1i_blocks = config.l1i.blocks
    segments = profile.phase_profiles(accesses_per_core)

    def sizes_of(p: AppProfile):
        return (max(8, int(p.code_x_l1i * l1i_blocks)),
                max(len(cores), int(p.ws_shared_x_llc * llc_blocks)),
                max(64, int(p.ws_private_x_l2 * l2_blocks)))

    # One address-space layout for all phases, sized by the largest
    # region any phase uses, so phases genuinely revisit the same data.
    all_sizes = [sizes_of(p) for _, p in segments]
    code_blocks = max(s[0] for s in all_sizes)
    shared_blocks = max(s[1] for s in all_sizes)
    private_blocks = max(s[2] for s in all_sizes)

    name_tag = zlib.crc32(profile.name.encode())
    code_salt = zlib.crc32(f"{profile.name}/{seed}/code".encode())
    data_salt = zlib.crc32(
        f"{profile.name}/{seed}/data/{instance}".encode())

    code_base = 0
    shared_base = code_blocks
    private_base = shared_base + shared_blocks

    traces = []
    for app_core, core in zip(app_cores, cores):
        # Full 32-bit tag: truncating to the low 16 bits made any two
        # profiles whose names collide mod 2^16 draw identical streams
        # for the same (seed, instance, core).
        rng = np.random.default_rng((seed, name_tag, instance, core))
        phase_ops, phase_blocks = [], []
        for (n, phase), sizes in zip(segments, all_sizes):
            ops, blocks = _core_segment(
                phase, rng, n, app_core, len(cores), sizes,
                (code_base, shared_base,
                 private_base + app_core * private_blocks))
            phase_ops.append(ops)
            phase_blocks.append(blocks)
        ops = np.concatenate(phase_ops)
        blocks = np.concatenate(phase_blocks)

        # OS-page scattering: code pages shared by every instance of the
        # binary, data pages private to this instance.
        is_code = ops == Op.IFETCH.value
        blocks[is_code] = scatter_pages(blocks[is_code], code_salt)
        data_mask = ~is_code
        blocks[data_mask] = scatter_pages(blocks[data_mask], data_salt)

        traces.append(CoreTrace(core, ops, blocks << BLOCK_SHIFT))
    return traces


def _core_segment(profile: AppProfile, rng: np.random.Generator, n: int,
                  app_core: int, n_cores: int, sizes, bases):
    """Generate one phase segment for one core (app-local blocks)."""
    code_blocks, shared_blocks, private_blocks = sizes
    code_base, shared_base, private_base = bases
    kinds = rng.random(n)
    is_code = kinds < profile.code_fraction
    is_shared = ~is_code & (kinds < profile.code_fraction
                            + (1 - profile.code_fraction)
                            * profile.shared_fraction)
    is_private = ~is_code & ~is_shared

    blocks = np.empty(n, dtype=np.int64)
    ops = np.zeros(n, dtype=np.int8)

    # Instruction fetches over the (possibly shared) code region. Code
    # keeps a large resident footprint (warm tier 50%): this is what
    # populates the directory with S-state entries for rate workloads
    # (the Section III-C2 anchor for SPEC CPU2017).
    n_code = int(is_code.sum())
    blocks[is_code] = code_base + _region_addresses(
        rng, n_code, code_blocks, 0.85, 0.10, warm_fraction=0.5)
    ops[is_code] = Op.IFETCH.value

    # Shared-region accesses.
    positions = np.nonzero(is_shared)[0]
    offsets, writes = _shared_offsets(profile, rng, positions,
                                      app_core, n_cores, shared_blocks)
    blocks[is_shared] = shared_base + offsets
    ops[is_shared] = np.where(writes, Op.WRITE.value, Op.READ.value)

    # Private accesses.
    n_priv = int(is_private.sum())
    blocks[is_private] = private_base + _region_addresses(
        rng, n_priv, private_blocks, profile.locality,
        profile.hot_fraction, profile.warm_fraction)
    priv_writes = rng.random(n_priv) < profile.write_fraction
    ops[is_private] = np.where(priv_writes, Op.WRITE.value,
                               Op.READ.value)
    return ops, blocks


def make_workload(profile: AppProfile, config: SystemConfig,
                  accesses_per_core: int, seed: int = 0) -> Workload:
    """A multi-threaded workload: one application on every core."""
    traces = generate(profile, config, accesses_per_core, seed)
    return Workload(profile.name, traces)
