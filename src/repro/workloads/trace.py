"""Memory-access trace primitives.

A workload is a set of per-core access streams. For speed the streams are
stored as parallel numpy arrays (op codes and byte addresses); the runner
consumes the arrays directly, while :class:`TraceEvent` offers a friendly
per-event view for tests and examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np


class Op(enum.Enum):
    """Memory operations issued by a core."""

    READ = 0
    WRITE = 1
    IFETCH = 2


#: Op lookup by integer code (the array representation).
OP_BY_CODE = (Op.READ, Op.WRITE, Op.IFETCH)


@dataclass(frozen=True)
class TraceEvent:
    """One memory reference."""

    op: Op
    address: int


class CoreTrace:
    """The ordered reference stream of a single core (array-backed)."""

    def __init__(self, core: int, ops: np.ndarray,
                 addresses: np.ndarray) -> None:
        if len(ops) != len(addresses):
            raise ValueError("ops and addresses lengths differ")
        self.core = core
        self.ops = np.asarray(ops, dtype=np.int8)
        self.addresses = np.asarray(addresses, dtype=np.int64)

    @classmethod
    def from_events(cls, core: int,
                    events: Iterable[TraceEvent]) -> "CoreTrace":
        events = list(events)
        ops = np.array([e.op.value for e in events], dtype=np.int8)
        addresses = np.array([e.address for e in events], dtype=np.int64)
        return cls(core, ops, addresses)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceEvent]:
        for code, address in zip(self.ops, self.addresses):
            yield TraceEvent(OP_BY_CODE[code], int(address))

    def event(self, index: int) -> TraceEvent:
        return TraceEvent(OP_BY_CODE[self.ops[index]],
                          int(self.addresses[index]))


class Workload:
    """A named bundle of per-core traces."""

    def __init__(self, name: str, traces: Sequence[CoreTrace]) -> None:
        self.name = name
        self.traces: List[CoreTrace] = list(traces)

    @property
    def n_cores(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def __repr__(self) -> str:
        return (f"Workload({self.name!r}, cores={self.n_cores}, "
                f"accesses={self.total_accesses})")

    # ------------------------------------------------------------------
    # Persistence: exchangeable .npz trace bundles
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize the workload to an ``.npz`` trace bundle."""
        arrays = {"name": np.array(self.name),
                  "cores": np.array([t.core for t in self.traces])}
        for index, trace in enumerate(self.traces):
            arrays[f"ops_{index}"] = trace.ops
            arrays[f"addresses_{index}"] = trace.addresses
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path) -> "Workload":
        """Load a workload previously written by :meth:`save`."""
        with np.load(path) as data:
            name = str(data["name"])
            cores = data["cores"]
            traces = [CoreTrace(int(core), data[f"ops_{index}"],
                                data[f"addresses_{index}"])
                      for index, core in enumerate(cores)]
        return cls(name, traces)
