"""ZeroDEV reproduction: unbounded coherence directory, zero DEVs.

Reproduction of M. Chaudhuri, "Zero Directory Eviction Victim: Unbounded
Coherence Directory and Core Cache Isolation", HPCA 2021.

Quickstart::

    from repro import scaled_socket, build_system, run_workload
    from repro.common.config import Protocol, DirectoryConfig, LLCReplacement
    from repro.workloads import suite_profiles, make_multithreaded

    config = scaled_socket()                       # Table I socket, scaled
    app = suite_profiles("PARSEC")[0]
    workload = make_multithreaded(app, config, accesses_per_core=20_000)

    base = build_system(config)
    run_workload(base, workload)

    zdev = build_system(config.with_(
        protocol=Protocol.ZERODEV,
        directory=DirectoryConfig(ratio=None),     # no directory at all
        llc_replacement=LLCReplacement.DATA_LRU))
    run_workload(zdev, workload)
    assert zdev.stats.dev_invalidations == 0       # the paper's guarantee
"""

from repro.common.config import (
    CacheGeometry,
    DirCachingPolicy,
    DirectoryConfig,
    LLCDesign,
    LLCReplacement,
    Protocol,
    SystemConfig,
    scaled_socket,
    table1_socket,
)
from repro.harness.runner import RunResult, run_workload
from repro.harness.system_builder import build_system
from repro.workloads.trace import Op, Workload

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "DirCachingPolicy",
    "DirectoryConfig",
    "LLCDesign",
    "LLCReplacement",
    "Op",
    "Protocol",
    "RunResult",
    "SystemConfig",
    "Workload",
    "build_system",
    "run_workload",
    "scaled_socket",
    "table1_socket",
    "__version__",
]
