"""Content-addressed memoization of simulation runs.

A run is fully determined by its inputs: the simulator is deterministic,
so ``(SystemConfig, Workload)`` -> ``SystemStats`` is a pure function.
The cache keys runs by a stable SHA-256 over the canonicalized config
(every dataclass field, enums by name) and the exact trace content
(op-code and address array bytes per core). Workload *names* do not
participate in the key -- two identically generated workloads hit the
same entry even if labelled differently -- and any knob that changes the
run (``REPRO_ACCESSES`` via trace length, ``REPRO_SCALE`` via the config
capacities) changes the key automatically.

Two tiers:

* in-process memoization (always on), so the reference/baseline
  configurations shared by fig17-fig27 are simulated once per session;
* an optional persistent tier behind a pluggable
  :class:`~repro.service.store.ResultStore` backend -- a local-disk
  directory (``REPRO_CACHE_DIR``, the historical layout) or any
  ``REPRO_STORE`` spelling (``sqlite:<path>`` for a fleet-shared
  single-file database) -- that persists detached
  :class:`~repro.harness.runner.RunResult` payloads across sessions and
  across users submitting through :mod:`repro.service`.
"""

from __future__ import annotations

import enum
import hashlib
import os
import warnings
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.common.config import SystemConfig, resolve_kernel
from repro.harness.runner import RunResult
from repro.service.store import (DiskResultStore, ResultStore,
                                 store_from_env)
from repro.workloads.trace import Workload

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _canonical(value):
    """A stable, hashable-by-repr form of configuration values."""
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,
                tuple((f.name, _canonical(getattr(value, f.name)))
                      for f in fields(value)))
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


def run_key(config: SystemConfig, workload: Workload, **extra) -> str:
    """Stable content hash identifying one run.

    The *resolved* access kernel enters the key (on top of the
    ``config.kernel`` field, which the config hash already covers) so a
    ``REPRO_KERNEL`` environment override can never replay a cached
    result produced under the other kernel.
    """
    digest = hashlib.sha256()
    digest.update(repr(_canonical(config)).encode())
    digest.update(resolve_kernel(config).encode())
    digest.update(repr(_canonical(extra)).encode())
    digest.update(str(workload.n_cores).encode())
    for trace in workload.traces:
        digest.update(str(trace.core).encode())
        digest.update(trace.ops.tobytes())
        digest.update(trace.addresses.tobytes())
    return digest.hexdigest()


class ResultCache:
    """Memoizes detached run results in memory and optionally in a
    persistent :class:`~repro.service.store.ResultStore` backend.

    ``directory`` keeps the historical constructor: it selects the
    local-disk backend with the layout ``REPRO_CACHE_DIR`` has always
    used. ``store`` accepts any backend directly (the service passes a
    shared sqlite or disk store here).
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 store: Optional[ResultStore] = None) -> None:
        if store is None and directory is not None:
            store = DiskResultStore(directory)
        self._memo: Dict[str, RunResult] = {}
        self.store = store
        self.directory = (Path(directory) if directory
                          else getattr(store, "directory", None))
        self.hits = 0
        self.misses = 0
        #: Store publishes dropped by OSError (disk full, permissions,
        #: a locked database). The in-memory tier still memoizes; a
        #: nonzero count means the campaign is running without
        #: cross-session persistence.
        self.dropped_puts = 0
        self._warned_dropped = False

    def __len__(self) -> int:
        return len(self._memo)

    def get(self, key: str) -> Optional[RunResult]:
        result = self._memo.get(key)
        if result is None and self.store is not None:
            result = self.store.get(key)
            if not isinstance(result, RunResult):
                # A damaged entry can decode "successfully" into the
                # wrong object; treat that as a miss too.
                result = None
            else:
                self._memo[key] = result
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return RunResult(result.workload, result.stats, None,
                         result.wall_seconds, cached=True,
                         trace_path=getattr(result, "trace_path", None))

    def put(self, key: str, result: RunResult) -> None:
        detached = result.detached()
        self._memo[key] = detached
        if self.store is not None:
            try:
                self.store.put(key, detached)
            except OSError as exc:
                # A full disk (or wedged database) must not kill the
                # campaign, but it must not be silent either: without
                # store publishes every future session re-simulates
                # from scratch.
                self.dropped_puts += 1
                if not self._warned_dropped:
                    self._warned_dropped = True
                    warnings.warn(
                        f"result cache cannot write to "
                        f"{self.store.describe()}: {exc!r}; persistent "
                        f"memoization is disabled for the affected "
                        f"entries (further drops counted in "
                        f"dropped_puts)",
                        RuntimeWarning, stacklevel=2)

    def clear(self) -> None:
        self._memo.clear()
        self.hits = 0
        self.misses = 0
        self.dropped_puts = 0
        self._warned_dropped = False


_session: Optional[ResultCache] = None
_session_spec: Optional[str] = None


def _env_spec() -> Optional[str]:
    """The persistent-backend spelling the environment selects."""
    store = os.environ.get("REPRO_STORE")
    if store and store.strip():
        return store.strip()
    return os.environ.get(_CACHE_DIR_ENV) or None


def session_cache() -> ResultCache:
    """The process-wide cache.

    Persistent iff the environment names a backend: ``REPRO_STORE``
    (``sqlite:<path>`` or a directory) takes precedence over the
    historical ``REPRO_CACHE_DIR`` (always a local-disk directory).
    """
    global _session, _session_spec
    spec = _env_spec()
    if _session is None or _session_spec != spec:
        store = store_from_env()
        if store is None and spec is not None:
            _session = ResultCache(spec)
        else:
            _session = ResultCache(store=store)
        _session_spec = spec
    return _session


def reset_session_cache() -> None:
    """Drop the process-wide cache (tests, scale changes mid-process)."""
    global _session, _session_spec
    _session = None
    _session_spec = None
