"""Drive a workload through a simulated socket.

The runner interleaves the per-core streams by simulated time: at each
step the core with the smallest local clock issues its next reference.
This gives a deterministic, contention-realistic global order without a
cycle-by-cycle event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.coherence.protocol import CMPSystem
from repro.common.stats import SystemStats
from repro.workloads.trace import OP_BY_CODE, Workload


@dataclass
class RunResult:
    """Outcome of one workload run."""

    workload: str
    stats: SystemStats
    system: CMPSystem

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def per_core_cycles(self):
        return list(self.stats.cycles)


def run_workload(system: CMPSystem, workload: Workload,
                 check_invariants_every: int = 0,
                 sample_every: int = 0,
                 sample_fn: Optional[Callable[[CMPSystem], None]] = None,
                 warmup: int = 0) -> RunResult:
    """Run ``workload`` to completion on ``system``.

    ``check_invariants_every`` triggers a full invariant sweep every N
    accesses (tests); ``sample_every``/``sample_fn`` support periodic
    probes such as the directory-occupancy measurement of Figure 5;
    ``warmup`` executes that many accesses to warm the caches and then
    resets all statistics (the region-of-interest boundary).
    """
    traces = workload.traces
    n = len(traces)
    if n > system.config.n_cores:
        raise ValueError(f"workload has {n} traces for "
                         f"{system.config.n_cores} cores")
    positions = [0] * n
    lengths = [len(trace) for trace in traces]
    remaining = sum(lengths)
    if warmup >= remaining:
        raise ValueError("warm-up longer than the workload")
    cycles = system.stats.cycles
    access = system.access
    step = 0
    while remaining:
        if warmup and step == warmup:
            system.stats.reset()
            cycles = system.stats.cycles
        core, best = -1, None
        for i in range(n):
            if positions[i] < lengths[i] and (best is None
                                              or cycles[i] < best):
                core, best = i, cycles[i]
        trace = traces[core]
        index = positions[core]
        access(core, OP_BY_CODE[trace.ops[index]],
               int(trace.addresses[index]))
        positions[core] = index + 1
        remaining -= 1
        step += 1
        if check_invariants_every and step % check_invariants_every == 0:
            system.check_invariants()
        if sample_every and sample_fn and step % sample_every == 0:
            sample_fn(system)
    if check_invariants_every:
        system.check_invariants()
    return RunResult(workload.name, system.stats, system)


def run_multisocket_workload(system, workload: Workload,
                             check_invariants_every: int = 0):
    """Run a workload across every core of a multi-socket system.

    Trace ``i`` maps to socket ``i // cores_per_socket``, core
    ``i % cores_per_socket``. Returns the per-socket stats list.
    """
    per_socket = system.config.n_cores
    traces = workload.traces
    n = len(traces)
    if n > per_socket * system.n_sockets:
        raise ValueError("workload larger than the multi-socket system")
    positions = [0] * n
    lengths = [len(trace) for trace in traces]
    clocks = [0] * n
    remaining = sum(lengths)
    step = 0
    while remaining:
        slot, best = -1, None
        for i in range(n):
            if positions[i] < lengths[i] and (best is None
                                              or clocks[i] < best):
                slot, best = i, clocks[i]
        trace = traces[slot]
        index = positions[slot]
        socket, core = divmod(slot, per_socket)
        system.access(socket, core, OP_BY_CODE[trace.ops[index]],
                      int(trace.addresses[index]))
        clocks[slot] = system.sockets[socket].stats.cycles[core]
        positions[slot] = index + 1
        remaining -= 1
        step += 1
        if check_invariants_every and step % check_invariants_every == 0:
            system.check_invariants()
    if check_invariants_every:
        system.check_invariants()
    return system.stats
