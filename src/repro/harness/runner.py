"""Drive a workload through a simulated socket.

The runner interleaves the per-core streams by simulated time: at each
step the core with the smallest local clock issues its next reference.
This gives a deterministic, contention-realistic global order without a
cycle-by-cycle event loop.

Scheduling is implemented once, in :func:`_drive_interleaved`, and shared
by the single-socket and multi-socket entry points. The ready set is a
binary heap keyed by ``(local_clock, slot)`` -- because an access only
advances the issuing core's clock, popping the heap minimum selects
exactly the core the previous O(n_cores) linear scan selected (ties break
toward the lower core index in both), at O(log n) per access.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional

from repro.coherence.protocol import CMPSystem
from repro.common.config import resolve_kernel
from repro.common.stats import SystemStats
from repro.workloads.trace import OP_BY_CODE, Workload


@dataclass
class RunResult:
    """Outcome of one workload run.

    ``system`` is only populated for in-process serial runs; results that
    crossed a process boundary or came from the result cache carry the
    stats alone (see :mod:`repro.harness.parallel`).
    """

    workload: str
    stats: SystemStats
    system: Optional[CMPSystem] = None
    wall_seconds: float = 0.0
    cached: bool = False
    trace_path: Optional[str] = None

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def per_core_cycles(self):
        return list(self.stats.cycles)

    def detached(self) -> "RunResult":
        """A copy without the live system (picklable, cache-friendly)."""
        return RunResult(self.workload, self.stats, None,
                         self.wall_seconds, self.cached, self.trace_path)


def _decode_traces(traces):
    """Pre-decode op enums and convert addresses to Python ints.

    The per-access ``OP_BY_CODE[...]``/``int(np.int64)`` conversions are
    hoisted out of the hot loop: ``tolist()`` converts each numpy array
    once, in C.
    """
    ops = [[OP_BY_CODE[code] for code in trace.ops.tolist()]
           for trace in traces]
    addresses = [trace.addresses.tolist() for trace in traces]
    return ops, addresses


def _drive_interleaved(lengths: List[int],
                       issue: Callable[[int, int], int],
                       check: Optional[Callable[[], None]] = None,
                       check_every: int = 0,
                       sample: Optional[Callable[[], None]] = None,
                       sample_every: int = 0,
                       warmup: int = 0,
                       on_warmup: Optional[Callable[[], None]] = None
                       ) -> int:
    """Issue every slot's references in global simulated-time order.

    ``issue(slot, index)`` performs one access and returns the slot's new
    local clock. Returns the number of accesses issued.
    """
    n = len(lengths)
    positions = [0] * n
    heap = [(0, slot) for slot in range(n) if lengths[slot]]
    heapq.heapify(heap)
    heapreplace = heapq.heapreplace
    heappop = heapq.heappop
    step = 0
    while heap:
        if warmup and step == warmup:
            if on_warmup is not None:
                on_warmup()
            # All local clocks restart at zero after the ROI boundary.
            heap = [(0, slot) for slot in range(n)
                    if positions[slot] < lengths[slot]]
            heapq.heapify(heap)
        slot = heap[0][1]
        index = positions[slot]
        clock = issue(slot, index)
        positions[slot] = index + 1
        step += 1
        if index + 1 < lengths[slot]:
            heapreplace(heap, (clock, slot))
        else:
            heappop(heap)
        if check_every and step % check_every == 0:
            check()
        if sample_every and sample is not None and step % sample_every == 0:
            sample()
    return step


def run_workload(system: CMPSystem, workload: Workload,
                 check_invariants_every: int = 0,
                 sample_every: int = 0,
                 sample_fn: Optional[Callable[[CMPSystem], None]] = None,
                 warmup: int = 0,
                 profiler=None) -> RunResult:
    """Run ``workload`` to completion on ``system``.

    ``check_invariants_every`` triggers a full invariant sweep every N
    accesses (tests); ``sample_every``/``sample_fn`` support periodic
    probes such as the directory-occupancy measurement of Figure 5;
    ``warmup`` executes that many accesses to warm the caches and then
    resets all statistics (the region-of-interest boundary);
    ``profiler`` (a :class:`repro.obs.PhaseProfiler`) times the decode /
    drive / final-check phases.
    """
    traces = workload.traces
    n = len(traces)
    if n > system.config.n_cores:
        raise ValueError(f"workload has {n} traces for "
                         f"{system.config.n_cores} cores")
    lengths = [len(trace) for trace in traces]
    if warmup >= sum(lengths):
        raise ValueError("warm-up longer than the workload")
    started = perf_counter()
    if profiler is not None:
        with profiler.phase("decode"):
            ops, addresses = _decode_traces(traces)
    else:
        ops, addresses = _decode_traces(traces)
    access = system.access
    stats = system.stats
    cycles = stats.cycles

    def issue(core: int, index: int) -> int:
        access(core, ops[core][index], addresses[core][index])
        return cycles[core]

    obs = getattr(system, "obs", None)
    if obs is not None:
        # Tracing enabled: advance the event-bus step clock once per
        # issued access so every event carries its global access index.
        # Built only on this branch; the disabled path keeps the plain
        # closure above untouched.
        plain_issue = issue

        def issue(core: int, index: int,
                  _issue=plain_issue, _obs=obs) -> int:
            _obs.step += 1
            return _issue(core, index)

    def on_warmup() -> None:
        nonlocal cycles
        stats.reset()
        cycles = stats.cycles

    # Gauge sampling observes intermediate states, which are schedule-
    # dependent: the batched kernel retires safe hits of different
    # cores out of global order (final state identical, mid-run states
    # not), so instrumented runs keep the scalar driver.
    kernel = resolve_kernel(system.config)
    if sample_fn is not None:
        kernel = "scalar"

    def drive() -> None:
        sample = (None if sample_fn is None
                  else lambda: sample_fn(system))
        if kernel in ("batched", "vectorized"):
            from repro.kernel import (ColumnarSlotKernel, SlotKernel,
                                      drive_batched)
            slot_cls = (ColumnarSlotKernel if kernel == "vectorized"
                        else SlotKernel)
            slots = [slot_cls(core, system.cores[core], stats,
                              system.shadow, system.config.latency,
                              trace.ops, trace.addresses)
                     for core, trace in enumerate(traces)]
            drive_batched(slots, issue,
                          check=system.check_invariants,
                          check_every=check_invariants_every,
                          warmup=warmup, on_warmup=on_warmup, obs=obs)
            return
        _drive_interleaved(
            lengths, issue,
            check=system.check_invariants,
            check_every=check_invariants_every,
            sample=sample,
            sample_every=sample_every,
            warmup=warmup, on_warmup=on_warmup)

    if profiler is not None:
        with profiler.phase("drive"):
            drive()
    else:
        drive()
    if check_invariants_every:
        if profiler is not None:
            with profiler.phase("final_check"):
                system.check_invariants()
        else:
            system.check_invariants()
    return RunResult(workload.name, system.stats, system,
                     wall_seconds=perf_counter() - started)


def run_multisocket_workload(system, workload: Workload,
                             check_invariants_every: int = 0):
    """Run a workload across every core of a multi-socket system.

    Trace ``i`` maps to socket ``i // cores_per_socket``, core
    ``i % cores_per_socket``. Returns the per-socket stats list. Shares
    the scheduling engine with :func:`run_workload`; each slot's clock is
    its core's clock within its socket's stats.
    """
    per_socket = system.config.n_cores
    traces = workload.traces
    n = len(traces)
    if n > per_socket * system.n_sockets:
        raise ValueError("workload larger than the multi-socket system")
    lengths = [len(trace) for trace in traces]
    ops, addresses = _decode_traces(traces)
    homes = [divmod(slot, per_socket) for slot in range(n)]
    sockets = system.sockets
    access = system.access

    def issue(slot: int, index: int) -> int:
        socket, core = homes[slot]
        access(socket, core, ops[slot][index], addresses[slot][index])
        return sockets[socket].stats.cycles[core]

    kernel = resolve_kernel(system.config)
    if kernel in ("batched", "vectorized"):
        from repro.kernel import (ColumnarSlotKernel, SlotKernel,
                                  drive_batched)
        slot_cls = (ColumnarSlotKernel if kernel == "vectorized"
                    else SlotKernel)
        slots = []
        for slot, trace in enumerate(traces):
            socket, core = homes[slot]
            slots.append(slot_cls(
                core, sockets[socket].cores[core],
                sockets[socket].stats, sockets[socket].shadow,
                system.config.latency, trace.ops, trace.addresses))
        drive_batched(slots, issue,
                      check=system.check_invariants,
                      check_every=check_invariants_every)
    else:
        _drive_interleaved(lengths, issue,
                           check=system.check_invariants,
                           check_every=check_invariants_every)
    if check_invariants_every:
        system.check_invariants()
    return system.stats
