"""Experiment harness: system construction, trace running, parallel
fan-out, result caching, and reporting."""

from repro.harness.system_builder import build_system
from repro.harness.runner import RunResult, run_workload
from repro.harness.parallel import ParallelMapError, run_many
from repro.harness.campaign import (CampaignError, CampaignJournal,
                                    CampaignPolicy, CampaignResult,
                                    RunFailure, RunSuccess, campaign_map,
                                    run_specs)
from repro.harness.result_cache import (ResultCache, run_key,
                                        session_cache)
from repro.harness.reporting import Row, Table, geomean
from repro.harness.energy import EnergyModel, estimate_energy

__all__ = [
    "CampaignError",
    "CampaignJournal",
    "CampaignPolicy",
    "CampaignResult",
    "EnergyModel",
    "ParallelMapError",
    "ResultCache",
    "Row",
    "RunFailure",
    "RunResult",
    "RunSuccess",
    "Table",
    "build_system",
    "campaign_map",
    "estimate_energy",
    "geomean",
    "run_key",
    "run_many",
    "run_specs",
    "run_workload",
    "session_cache",
]
