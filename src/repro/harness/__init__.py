"""Experiment harness: system construction, trace running, reporting."""

from repro.harness.system_builder import build_system
from repro.harness.runner import RunResult, run_workload
from repro.harness.reporting import Row, Table, geomean
from repro.harness.energy import EnergyModel, estimate_energy

__all__ = [
    "EnergyModel",
    "Row",
    "RunResult",
    "Table",
    "build_system",
    "estimate_energy",
    "geomean",
    "run_workload",
]
