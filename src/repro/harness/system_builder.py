"""Construct a simulated socket from a :class:`SystemConfig`.

Dispatches on ``config.protocol`` and right-sizes the mesh when the core
and bank count outgrow the Table I default (the 128-core server socket).
"""

from __future__ import annotations

import math

from repro.coherence.protocol import CMPSystem
from repro.common.config import MeshConfig, Protocol, SystemConfig


def _mesh_for(config: SystemConfig) -> MeshConfig:
    needed = config.n_cores + config.llc_banks
    mesh = config.mesh
    if mesh.width * mesh.height >= needed:
        return mesh
    width = math.ceil(math.sqrt(needed))
    height = math.ceil(needed / width)
    return MeshConfig(width=width, height=height)


def build_system(config: SystemConfig) -> CMPSystem:
    """Build the system implementing ``config.protocol``."""
    mesh = _mesh_for(config)
    if mesh is not config.mesh:
        # Only re-validate the config when the mesh actually resizes.
        config = config.with_(mesh=mesh)
    if config.protocol is Protocol.BASELINE:
        return CMPSystem(config)
    if config.protocol is Protocol.ZERODEV:
        from repro.core.protocol import ZeroDEVSystem
        return ZeroDEVSystem(config)
    if config.protocol is Protocol.SECDIR:
        from repro.baselines.secdir import SecDirSystem
        return SecDirSystem(config)
    if config.protocol is Protocol.MGD:
        from repro.baselines.mgd import MgDSystem
        return MgDSystem(config)
    if config.protocol is Protocol.DLS:
        from repro.baselines.dls import DLSSystem
        return DLSSystem(config)
    if config.protocol is Protocol.HYBRID:
        from repro.baselines.hybrid import HybridSystem
        return HybridSystem(config)
    raise ValueError(f"unknown protocol {config.protocol!r}")
