"""Calibration probes: measure the quantities the paper anchors on.

Section III-C2 reports, per suite, the fraction of directory entries that
track *shared* (S-state) blocks -- the quantity that determines FPSS's
LLC pressure (fused M/E entries are free; spilled S entries occupy
frames): PARSEC ~10%, SPLASH2X ~19%, SPEC OMP ~0.5%, FFTW ~0, SPEC
CPU2017 rate ~9% (from code pages shared between the copies). These
probes measure the same quantities on the synthetic workloads, anchoring
the generator calibration to the paper's data rather than to guesswork.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.coherence.entry import DirState
from repro.coherence.protocol import CMPSystem
from repro.common.config import DirectoryConfig, SystemConfig
from repro.harness.runner import run_workload
from repro.harness.system_builder import build_system
from repro.workloads.trace import Workload

#: The Section III-C2 anchors (suite -> shared-entry fraction).
PAPER_SHARED_ENTRY_FRACTION = {
    "PARSEC": 0.10,
    "SPLASH2X": 0.19,
    "SPECOMP": 0.005,
    "FFTW": 0.0,
    "CPU2017": 0.09,
}


def shared_entry_fraction(system: CMPSystem) -> float:
    """Fraction of live directory entries in S state, sampled now."""
    assert system.directory is not None
    entries = list(system.directory.entries())
    if not entries:
        return 0.0
    shared = sum(1 for entry in entries
                 if entry.state is DirState.S)
    return shared / len(entries)


def measure_shared_fraction(config: SystemConfig, workload: Workload,
                            samples: int = 20) -> float:
    """Average S-entry fraction over a run (unbounded directory so the
    directory contents mirror exactly what is privately cached)."""
    probe_config = config.with_(
        directory=DirectoryConfig(unbounded=True))
    system = build_system(probe_config)
    observations: List[float] = []
    interval = max(1, workload.total_accesses // samples)

    def probe(sys_) -> None:
        observations.append(shared_entry_fraction(sys_))

    run_workload(system, workload, sample_every=interval,
                 sample_fn=probe)
    observations.append(shared_entry_fraction(system))
    # Skip the cold-start samples (everything starts exclusive).
    steady = observations[len(observations) // 4:]
    return sum(steady) / len(steady)


def suite_shared_fractions(config: SystemConfig,
                           workloads_by_suite: Dict[str, List[Workload]]
                           ) -> Dict[str, Tuple[float, float]]:
    """Measured vs paper shared-entry fraction per suite."""
    results = {}
    for suite, workloads in workloads_by_suite.items():
        measured = [measure_shared_fraction(config, workload)
                    for workload in workloads]
        results[suite] = (sum(measured) / len(measured),
                          PAPER_SHARED_ENTRY_FRACTION.get(suite, 0.0))
    return results
