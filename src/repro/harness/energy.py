"""Energy accounting for the sparse directory and the LLC.

Section V's energy paragraph: using CACTI, ZeroDEV running with no sparse
directory saves about 9% of the combined sparse-directory + LLC energy --
the directory's area/leakage and its per-miss lookups disappear, partially
offset by extra LLC reads/writes to the directory entries cached there.

The constants below are CACTI-flavoured per-access energies (nJ) and
leakage powers (W per MB) for a ~22 nm node; they are stand-ins for the
authors' CACTI runs (see DESIGN.md Section 2) and are only used for this
one relative comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.stats import SystemStats

#: Core frequency used to convert cycles to seconds.
CLOCK_HZ = 4.0e9


@dataclass(frozen=True)
class EnergyModel:
    """Per-structure energy constants."""

    llc_tag_nj: float = 0.12          # one bank tag lookup
    llc_data_nj: float = 0.55         # one 64-byte data-array access
    dir_lookup_nj: float = 0.042      # 8-way associative directory search
    dir_update_nj: float = 0.028
    llc_leak_w_per_mb: float = 0.020
    dir_leak_w_per_mb: float = 0.035  # highly associative, CAM-assisted

    def directory_mb(self, config: SystemConfig) -> float:
        """Directory storage in MB: tag (~26 bits) + N+1 state bits."""
        entries = config.directory_entries
        bits_per_entry = 26 + config.n_cores + 1
        return entries * bits_per_entry / 8 / (1 << 20)

    def llc_mb(self, config: SystemConfig) -> float:
        return config.llc.size_bytes / (1 << 20)


def estimate_energy(config: SystemConfig, stats: SystemStats,
                    model: EnergyModel = EnergyModel()) -> dict:
    """Directory + LLC energy (J) for one finished run."""
    seconds = stats.total_cycles / CLOCK_HZ
    uncore_lookups = stats.core_cache_misses + stats.upgrades

    llc_dynamic = (uncore_lookups * model.llc_tag_nj
                   + (stats.llc_data_hits + stats.llc_data_misses
                      + stats.llc_evictions) * model.llc_data_nj
                   # Directory entries cached in the LLC: spilled entries
                   # cost their own data-array accesses; fused entries
                   # ride the block's accesses (their bits are written
                   # together with the block) and cost nothing extra.
                   + (stats.entries_spilled + stats.fuse_to_spill
                      + stats.extra_data_array_reads) * model.llc_data_nj
                   ) * 1e-9
    dir_present = config.directory.present and not config.directory.unbounded
    if dir_present:
        dir_dynamic = (uncore_lookups * model.dir_lookup_nj
                       + (stats.dir_allocations + stats.dir_evictions)
                       * model.dir_update_nj) * 1e-9
        dir_leak = (model.directory_mb(config) * model.dir_leak_w_per_mb
                    * seconds)
    else:
        dir_dynamic = 0.0
        dir_leak = 0.0
    llc_leak = model.llc_mb(config) * model.llc_leak_w_per_mb * seconds
    total = llc_dynamic + dir_dynamic + llc_leak + dir_leak
    return {
        "llc_dynamic_j": llc_dynamic,
        "dir_dynamic_j": dir_dynamic,
        "llc_leakage_j": llc_leak,
        "dir_leakage_j": dir_leak,
        "total_j": total,
    }
