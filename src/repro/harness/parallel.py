"""Parallel fan-out of independent simulation runs.

Trace-driven coherence simulation is embarrassingly parallel across
independent ``(SystemConfig, Workload)`` runs: no state is shared, and
every run is deterministic. :func:`run_many` exploits that by fanning a
batch of runs over a ``multiprocessing`` pool. Workers rebuild the system
from the (picklable) config, run the workload, and ship back a *detached*
:class:`~repro.harness.runner.RunResult` -- stats only, never a live
``CMPSystem``.

Guarantees:

* **Deterministic ordering** -- results are returned in request order
  regardless of worker completion order.
* **Bit-identical to serial** -- the simulator is deterministic, so the
  parallel path produces exactly the stats the ``jobs=1`` serial
  fallback produces (asserted by ``tests/test_parallel_cache.py``).
* **Run-once memoization** -- duplicate requests in a batch are executed
  once, and the session :class:`~repro.harness.result_cache.ResultCache`
  memoizes across batches (so figure after figure reuses the shared
  baseline runs).
* **No work lost to one bad run** -- a raising worker no longer nukes
  the batch: every item is drained, completed results are published to
  the cache, and only then is :class:`ParallelMapError` raised naming
  the failing spec. (For retries, timeouts, and checkpoint/resume on
  top of that, see :mod:`repro.harness.campaign`.)

``jobs`` defaults to ``REPRO_JOBS`` (see the ``--jobs`` CLI flag);
``jobs=1`` runs serially in-process with no pool at all. An explicit
``jobs`` above ``os.cpu_count()`` is honored -- oversubscription is the
user's call -- and the effective worker count of the last batch is
reported in :func:`telemetry_snapshot` instead of being clamped.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.harness.result_cache import ResultCache, run_key, session_cache
from repro.harness.runner import RunResult, run_workload
from repro.harness.system_builder import build_system
from repro.workloads.trace import Workload

#: One requested run: (config, workload).
RunSpec = Tuple[SystemConfig, Workload]

#: Sentinel distinguishing "use the session cache" from "no cache".
USE_SESSION_CACHE = object()

#: Session telemetry: totals over every run_many() call in this process.
#: ``effective_jobs`` is the worker count of the most recent batch (a
#: gauge, not a running total); the campaign layer adds its retry /
#: resume / failure counters here too.
_telemetry = {"runs": 0, "cache_hits": 0, "wall_seconds": 0.0,
              "accesses": 0, "cache_dropped_puts": 0, "effective_jobs": 0,
              "resume_skips": 0, "run_failures": 0, "run_retries": 0}


def telemetry_snapshot() -> Dict[str, float]:
    """Copy of the running totals (pair with :func:`telemetry_since`)."""
    return dict(_telemetry)


def telemetry_since(before: Dict[str, float]) -> Dict[str, float]:
    """Telemetry delta since a snapshot taken earlier."""
    return {key: _telemetry[key] - before.get(key, 0)
            for key in _telemetry}


def parse_jobs(value, source: str = "--jobs") -> int:
    """Validate a worker count from the CLI or the environment.

    Accepts a positive integer (as int or decimal string); anything else
    -- zero, negatives, floats, or non-numeric text -- raises
    :class:`~repro.common.errors.ConfigError` naming ``source`` so the
    CLI can fail with a one-line message instead of a traceback.
    """
    try:
        jobs = int(str(value).strip())
    except (TypeError, ValueError):
        raise ConfigError(
            f"{source} must be a positive integer, got {value!r}") from None
    if jobs < 1:
        raise ConfigError(
            f"{source} must be a positive integer, got {value!r}")
    return jobs


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1: serial)."""
    raw = os.environ.get("REPRO_JOBS")
    if raw is None or not raw.strip():
        return 1
    return parse_jobs(raw, source="REPRO_JOBS")


def execute_run(spec: RunSpec,
                trace_path: Optional[str] = None) -> RunResult:
    """Build the system for ``spec`` and run it (detached result).

    With ``trace_path`` the run executes under a
    :class:`~repro.obs.trace.TraceSession`: events stream to that JSONL
    file and the aggregated time series lands next to it.
    """
    config, workload = spec
    system = build_system(config)
    if trace_path is None:
        return run_workload(system, workload).detached()
    from repro.obs.trace import TraceSession
    with TraceSession(system, jsonl=trace_path) as session:
        return session.run(workload).detached()


def _pool_worker(job: Tuple[int, RunSpec, Optional[str]]
                 ) -> Tuple[int, RunResult]:
    index, spec, trace_path = job
    return index, execute_run(spec, trace_path)


def _pool_context():
    # fork shares the already-imported interpreter image (cheap startup
    # and no re-import of numpy per worker); fall back where unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def fork_available() -> bool:
    """True when fork-start workers (sharing module globals set before
    the pool is created) are available on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class ParallelMapError(RuntimeError):
    """One or more items of a :func:`parallel_map` batch raised.

    Raised only after the whole batch has drained, so sibling items'
    work is never discarded mid-flight: ``partial`` holds the completed
    results (``None`` at every failed position) and callers are expected
    to publish them (``run_many`` caches completed runs before
    re-raising with the failing spec's identity attached).
    """

    def __init__(self, message: str, item_index: int, error_type: str,
                 error: str, traceback_text: str = "",
                 partial: Optional[list] = None) -> None:
        super().__init__(message)
        self.item_index = item_index
        self.error_type = error_type
        self.error = error
        self.traceback_text = traceback_text
        self.partial = partial if partial is not None else []


def _guarded_call(fn, item):
    """Per-item crash isolation: never let one item poison the batch."""
    try:
        return ("ok", fn(item))
    except Exception as exc:           # noqa: BLE001 - reported to caller
        return ("err", type(exc).__name__, str(exc),
                traceback.format_exc())


def parallel_map(fn, items, jobs: int = 1, chunksize: int = 1,
                 require_fork: bool = False):
    """Order-preserving map of ``fn`` over ``items`` on a worker pool.

    The shared fan-out primitive behind :func:`run_many`, the sampled
    protocol explorer, and ``repro fuzz`` campaigns. ``fn`` must be a
    module-level (picklable) callable; callers whose per-item context
    cannot be pickled set a module global before calling and pass
    ``require_fork=True`` -- forked workers inherit the global, and the
    call degrades to the serial path when fork is unavailable (results
    are identical either way; only wall-clock differs).

    Exceptions are caught per item: the whole batch drains before
    :class:`ParallelMapError` is raised for the first failure, with the
    surviving results attached as ``partial``.
    """
    items = list(items)
    effective = min(jobs, len(items)) if items else 0
    if effective > 1 and require_fork and not fork_available():
        effective = 1
    _telemetry["effective_jobs"] = max(effective, 1)
    guarded = functools.partial(_guarded_call, fn)
    if effective <= 1:
        wrapped = [guarded(item) for item in items]
    else:
        context = _pool_context()
        with context.Pool(effective) as pool:
            wrapped = list(pool.imap(guarded, items, chunksize=chunksize))
    results = [entry[1] if entry[0] == "ok" else None
               for entry in wrapped]
    for index, entry in enumerate(wrapped):
        if entry[0] != "ok":
            _tag, error_type, error, tb = entry
            raise ParallelMapError(
                f"parallel_map item {index} raised {error_type}: {error}",
                item_index=index, error_type=error_type, error=error,
                traceback_text=tb, partial=results)
    return results


def _trace_path_for(trace_dir, index: int, spec: RunSpec) -> str:
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    return str(directory / f"run{index:04d}_{spec[1].name}.jsonl")


@dataclass
class BatchPlan:
    """The execution plan for one batch of specs.

    ``results`` starts with the cache hits filled in; ``pending`` holds
    the ``(index, spec, trace_path)`` jobs that actually need to
    execute; ``aliases`` maps duplicate indices to the first request of
    the same key.
    """

    specs: List[RunSpec]
    results: List[Optional[RunResult]]
    pending: List[Tuple[int, RunSpec, Optional[str]]]
    keys: Dict[int, str] = field(default_factory=dict)
    aliases: Dict[int, int] = field(default_factory=dict)


def plan_batch(specs: Sequence[RunSpec], cache, trace_dir,
               want_keys: bool = False) -> BatchPlan:
    """Resolve cache hits and collapse duplicates into a 'BatchPlan'.

    Trace paths are resolved *only* for runs that will execute, so a
    fully-cached batch neither creates the trace directory nor
    fabricates ``run<NNNN>_*.jsonl`` paths that no run will ever write.
    ``want_keys`` forces key computation even without a cache (the
    campaign journal needs them).
    """
    specs = list(specs)
    results: List[Optional[RunResult]] = [None] * len(specs)
    pending: List[Tuple[int, RunSpec, Optional[str]]] = []
    keys: Dict[int, str] = {}
    first_index_for_key: Dict[str, int] = {}
    aliases: Dict[int, int] = {}
    for index, spec in enumerate(specs):
        if cache is not None or want_keys:
            keys[index] = run_key(spec[0], spec[1])
        if cache is not None:
            hit = cache.get(keys[index])
            if hit is not None:
                results[index] = hit
                continue
            first = first_index_for_key.setdefault(keys[index], index)
            if first != index:
                aliases[index] = first
                continue
        trace_path = (None if trace_dir is None
                      else _trace_path_for(trace_dir, index, spec))
        pending.append((index, spec, trace_path))
    return BatchPlan(specs, results, pending, keys, aliases)


def resolve_aliases(plan: BatchPlan) -> None:
    """Fill duplicate-spec slots from their executed first occurrence."""
    for index, first in plan.aliases.items():
        source = plan.results[first]
        if source is None:             # the shared execution failed
            continue
        plan.results[index] = RunResult(
            source.workload, source.stats, None, source.wall_seconds,
            cached=True, trace_path=source.trace_path)


def record_batch_telemetry(plan: BatchPlan, executed: int,
                           dropped_puts: int = 0) -> None:
    """Fold one batch's totals into the session telemetry."""
    _telemetry["runs"] += executed
    _telemetry["cache_hits"] += len(plan.specs) - len(plan.pending)
    _telemetry["cache_dropped_puts"] += dropped_puts
    completed = [plan.results[index] for index, *_ in plan.pending
                 if plan.results[index] is not None]
    _telemetry["wall_seconds"] += sum(result.wall_seconds
                                      for result in completed)
    _telemetry["accesses"] += sum(result.stats.total_accesses
                                  for result in completed)


def run_many(specs: Sequence[RunSpec], jobs: Optional[int] = None,
             cache=USE_SESSION_CACHE,
             trace_dir=None) -> List[RunResult]:
    """Run every ``(config, workload)`` spec; results in request order.

    ``jobs=None`` reads ``REPRO_JOBS``; ``jobs=1`` is the serial
    fallback. ``cache=None`` disables memoization (every spec is
    executed); by default the session cache is consulted and filled.
    ``trace_dir`` enables event tracing on every *executed* run: each
    writes ``run<NNNN>_<workload>.jsonl`` (plus its time-series sibling)
    into that directory, and the result's ``trace_path`` points at it.
    Cache hits keep whatever trace path their original execution stored.

    A raising run no longer discards the batch: every other spec still
    executes, completed results are published to the cache, and the
    :class:`ParallelMapError` re-raised afterwards names the failing
    spec's index and workload. Campaigns that need typed failures,
    retries, or resume use :func:`repro.harness.campaign.run_specs`.
    """
    jobs = default_jobs() if jobs is None else parse_jobs(jobs, "jobs")
    if cache is USE_SESSION_CACHE:
        cache = session_cache()
    plan = plan_batch(specs, cache, trace_dir)

    executed = 0
    failure: Optional[ParallelMapError] = None
    if plan.pending:
        try:
            mapped = parallel_map(_pool_worker, plan.pending, jobs=jobs)
        except ParallelMapError as exc:
            failure = exc
            mapped = [entry for entry in exc.partial if entry is not None]
        dropped_before = cache.dropped_puts if cache is not None else 0
        for index, result in mapped:
            plan.results[index] = result
            if cache is not None:
                cache.put(plan.keys[index], result)
        executed = len(mapped)
        resolve_aliases(plan)
        record_batch_telemetry(
            plan, executed,
            dropped_puts=(cache.dropped_puts - dropped_before
                          if cache is not None else 0))
        if failure is not None:
            bad_index, bad_spec, _trace = plan.pending[failure.item_index]
            raise ParallelMapError(
                f"run {bad_index} ({bad_spec[1].name}) raised "
                f"{failure.error_type}: {failure.error} "
                f"({executed} completed runs were kept in the cache)",
                item_index=bad_index, error_type=failure.error_type,
                error=failure.error,
                traceback_text=failure.traceback_text,
                partial=plan.results) from failure
    else:
        record_batch_telemetry(plan, 0)
    return plan.results  # type: ignore[return-value]
