"""Parallel fan-out of independent simulation runs.

Trace-driven coherence simulation is embarrassingly parallel across
independent ``(SystemConfig, Workload)`` runs: no state is shared, and
every run is deterministic. :func:`run_many` exploits that by fanning a
batch of runs over a ``multiprocessing`` pool. Workers rebuild the system
from the (picklable) config, run the workload, and ship back a *detached*
:class:`~repro.harness.runner.RunResult` -- stats only, never a live
``CMPSystem``.

Guarantees:

* **Deterministic ordering** -- results are returned in request order
  regardless of worker completion order.
* **Bit-identical to serial** -- the simulator is deterministic, so the
  parallel path produces exactly the stats the ``jobs=1`` serial
  fallback produces (asserted by ``tests/test_parallel_cache.py``).
* **Run-once memoization** -- duplicate requests in a batch are executed
  once, and the session :class:`~repro.harness.result_cache.ResultCache`
  memoizes across batches (so figure after figure reuses the shared
  baseline runs).

``jobs`` defaults to ``REPRO_JOBS`` (see the ``--jobs`` CLI flag);
``jobs=1`` runs serially in-process with no pool at all.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.harness.result_cache import ResultCache, run_key, session_cache
from repro.harness.runner import RunResult, run_workload
from repro.harness.system_builder import build_system
from repro.workloads.trace import Workload

#: One requested run: (config, workload).
RunSpec = Tuple[SystemConfig, Workload]

#: Sentinel distinguishing "use the session cache" from "no cache".
USE_SESSION_CACHE = object()

#: Session telemetry: totals over every run_many() call in this process.
_telemetry = {"runs": 0, "cache_hits": 0, "wall_seconds": 0.0,
              "accesses": 0}


def telemetry_snapshot() -> Dict[str, float]:
    """Copy of the running totals (pair with :func:`telemetry_since`)."""
    return dict(_telemetry)


def telemetry_since(before: Dict[str, float]) -> Dict[str, float]:
    """Telemetry delta since a snapshot taken earlier."""
    return {key: _telemetry[key] - before[key] for key in _telemetry}


def parse_jobs(value, source: str = "--jobs") -> int:
    """Validate a worker count from the CLI or the environment.

    Accepts a positive integer (as int or decimal string); anything else
    -- zero, negatives, floats, or non-numeric text -- raises
    :class:`~repro.common.errors.ConfigError` naming ``source`` so the
    CLI can fail with a one-line message instead of a traceback.
    """
    try:
        jobs = int(str(value).strip())
    except (TypeError, ValueError):
        raise ConfigError(
            f"{source} must be a positive integer, got {value!r}") from None
    if jobs < 1:
        raise ConfigError(
            f"{source} must be a positive integer, got {value!r}")
    return jobs


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1: serial)."""
    raw = os.environ.get("REPRO_JOBS")
    if raw is None or not raw.strip():
        return 1
    return parse_jobs(raw, source="REPRO_JOBS")


def execute_run(spec: RunSpec,
                trace_path: Optional[str] = None) -> RunResult:
    """Build the system for ``spec`` and run it (detached result).

    With ``trace_path`` the run executes under a
    :class:`~repro.obs.trace.TraceSession`: events stream to that JSONL
    file and the aggregated time series lands next to it.
    """
    config, workload = spec
    system = build_system(config)
    if trace_path is None:
        return run_workload(system, workload).detached()
    from repro.obs.trace import TraceSession
    with TraceSession(system, jsonl=trace_path) as session:
        return session.run(workload).detached()


def _pool_worker(job: Tuple[int, RunSpec, Optional[str]]
                 ) -> Tuple[int, RunResult]:
    index, spec, trace_path = job
    return index, execute_run(spec, trace_path)


def _pool_context():
    # fork shares the already-imported interpreter image (cheap startup
    # and no re-import of numpy per worker); fall back where unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def fork_available() -> bool:
    """True when fork-start workers (sharing module globals set before
    the pool is created) are available on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(fn, items, jobs: int = 1, chunksize: int = 1,
                 require_fork: bool = False):
    """Order-preserving map of ``fn`` over ``items`` on a worker pool.

    The shared fan-out primitive behind :func:`run_many`, the sampled
    protocol explorer, and ``repro fuzz`` campaigns. ``fn`` must be a
    module-level (picklable) callable; callers whose per-item context
    cannot be pickled set a module global before calling and pass
    ``require_fork=True`` -- forked workers inherit the global, and the
    call degrades to the serial path when fork is unavailable (results
    are identical either way; only wall-clock differs).
    """
    items = list(items)
    effective = min(jobs, len(items), os.cpu_count() or 1)
    if effective > 1 and require_fork and not fork_available():
        effective = 1
    if effective <= 1:
        return [fn(item) for item in items]
    context = _pool_context()
    with context.Pool(effective) as pool:
        return list(pool.imap(fn, items, chunksize=chunksize))


def _trace_path_for(trace_dir, index: int, spec: RunSpec) -> str:
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    return str(directory / f"run{index:04d}_{spec[1].name}.jsonl")


def run_many(specs: Sequence[RunSpec], jobs: Optional[int] = None,
             cache=USE_SESSION_CACHE,
             trace_dir=None) -> List[RunResult]:
    """Run every ``(config, workload)`` spec; results in request order.

    ``jobs=None`` reads ``REPRO_JOBS``; ``jobs=1`` is the serial
    fallback. ``cache=None`` disables memoization (every spec is
    executed); by default the session cache is consulted and filled.
    ``trace_dir`` enables event tracing on every *executed* run: each
    writes ``run<NNNN>_<workload>.jsonl`` (plus its time-series sibling)
    into that directory, and the result's ``trace_path`` points at it.
    Cache hits keep whatever trace path their original execution stored.
    """
    specs = list(specs)
    jobs = default_jobs() if jobs is None else parse_jobs(jobs, "jobs")
    if cache is USE_SESSION_CACHE:
        cache = session_cache()
    results: List[Optional[RunResult]] = [None] * len(specs)

    # Resolve cache hits and collapse duplicate specs to one execution.
    pending: List[Tuple[int, RunSpec, Optional[str]]] = []
    keys: Dict[int, str] = {}
    first_index_for_key: Dict[str, int] = {}
    aliases: Dict[int, int] = {}
    for index, spec in enumerate(specs):
        trace_path = (None if trace_dir is None
                      else _trace_path_for(trace_dir, index, spec))
        if cache is None:
            pending.append((index, spec, trace_path))
            continue
        key = run_key(spec[0], spec[1])
        keys[index] = key
        hit = cache.get(key)
        if hit is not None:
            results[index] = hit
            continue
        first = first_index_for_key.setdefault(key, index)
        if first != index:
            aliases[index] = first
        else:
            pending.append((index, spec, trace_path))

    executed = 0
    if pending:
        for index, result in parallel_map(_pool_worker, pending,
                                          jobs=jobs):
            results[index] = result
        executed = len(pending)
        if cache is not None:
            for index, _spec, _trace in pending:
                cache.put(keys[index], results[index])
            for index, first in aliases.items():
                results[index] = RunResult(
                    results[first].workload, results[first].stats, None,
                    results[first].wall_seconds, cached=True,
                    trace_path=results[first].trace_path)

    _telemetry["runs"] += executed
    _telemetry["cache_hits"] += len(specs) - executed
    _telemetry["wall_seconds"] += sum(
        results[index].wall_seconds for index, *_ in pending)
    _telemetry["accesses"] += sum(
        results[index].stats.total_accesses for index, *_ in pending)
    return results  # type: ignore[return-value]
