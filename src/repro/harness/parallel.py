"""Parallel fan-out of independent simulation runs.

Trace-driven coherence simulation is embarrassingly parallel across
independent ``(SystemConfig, Workload)`` runs: no state is shared, and
every run is deterministic. :func:`run_many` exploits that by fanning a
batch of runs over a ``multiprocessing`` pool. Workers rebuild the system
from the (picklable) config, run the workload, and ship back a *detached*
:class:`~repro.harness.runner.RunResult` -- stats only, never a live
``CMPSystem``.

Guarantees:

* **Deterministic ordering** -- results are returned in request order
  regardless of worker completion order.
* **Bit-identical to serial** -- the simulator is deterministic, so the
  parallel path produces exactly the stats the ``jobs=1`` serial
  fallback produces (asserted by ``tests/test_parallel_cache.py``).
* **Run-once memoization** -- duplicate requests in a batch are executed
  once, and the session :class:`~repro.harness.result_cache.ResultCache`
  memoizes across batches (so figure after figure reuses the shared
  baseline runs).

``jobs`` defaults to ``REPRO_JOBS`` (see the ``--jobs`` CLI flag);
``jobs=1`` runs serially in-process with no pool at all.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.result_cache import ResultCache, run_key, session_cache
from repro.harness.runner import RunResult, run_workload
from repro.harness.system_builder import build_system
from repro.workloads.trace import Workload

#: One requested run: (config, workload).
RunSpec = Tuple[SystemConfig, Workload]

#: Sentinel distinguishing "use the session cache" from "no cache".
USE_SESSION_CACHE = object()

#: Session telemetry: totals over every run_many() call in this process.
_telemetry = {"runs": 0, "cache_hits": 0, "wall_seconds": 0.0,
              "accesses": 0}


def telemetry_snapshot() -> Dict[str, float]:
    """Copy of the running totals (pair with :func:`telemetry_since`)."""
    return dict(_telemetry)


def telemetry_since(before: Dict[str, float]) -> Dict[str, float]:
    """Telemetry delta since a snapshot taken earlier."""
    return {key: _telemetry[key] - before[key] for key in _telemetry}


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1: serial)."""
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def execute_run(spec: RunSpec) -> RunResult:
    """Build the system for ``spec`` and run it (detached result)."""
    config, workload = spec
    return run_workload(build_system(config), workload).detached()


def _pool_worker(job: Tuple[int, RunSpec]) -> Tuple[int, RunResult]:
    index, spec = job
    return index, execute_run(spec)


def _pool_context():
    # fork shares the already-imported interpreter image (cheap startup
    # and no re-import of numpy per worker); fall back where unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def run_many(specs: Sequence[RunSpec], jobs: Optional[int] = None,
             cache=USE_SESSION_CACHE) -> List[RunResult]:
    """Run every ``(config, workload)`` spec; results in request order.

    ``jobs=None`` reads ``REPRO_JOBS``; ``jobs=1`` is the serial
    fallback. ``cache=None`` disables memoization (every spec is
    executed); by default the session cache is consulted and filled.
    """
    specs = list(specs)
    if jobs is None:
        jobs = default_jobs()
    if cache is USE_SESSION_CACHE:
        cache = session_cache()
    results: List[Optional[RunResult]] = [None] * len(specs)

    # Resolve cache hits and collapse duplicate specs to one execution.
    pending: List[Tuple[int, RunSpec]] = []
    keys: Dict[int, str] = {}
    first_index_for_key: Dict[str, int] = {}
    aliases: Dict[int, int] = {}
    for index, spec in enumerate(specs):
        if cache is None:
            pending.append((index, spec))
            continue
        key = run_key(spec[0], spec[1])
        keys[index] = key
        hit = cache.get(key)
        if hit is not None:
            results[index] = hit
            continue
        first = first_index_for_key.setdefault(key, index)
        if first != index:
            aliases[index] = first
        else:
            pending.append((index, spec))

    executed = 0
    if pending:
        effective = min(jobs, len(pending), os.cpu_count() or 1)
        if effective > 1:
            context = _pool_context()
            with context.Pool(effective) as pool:
                for index, result in pool.imap_unordered(
                        _pool_worker, pending, chunksize=1):
                    results[index] = result
        else:
            for index, spec in pending:
                results[index] = execute_run(spec)
        executed = len(pending)
        if cache is not None:
            for index, _spec in pending:
                cache.put(keys[index], results[index])
            for index, first in aliases.items():
                results[index] = RunResult(
                    results[first].workload, results[first].stats, None,
                    results[first].wall_seconds, cached=True)

    _telemetry["runs"] += executed
    _telemetry["cache_hits"] += len(specs) - executed
    _telemetry["wall_seconds"] += sum(
        results[index].wall_seconds for index, _ in pending)
    _telemetry["accesses"] += sum(
        results[index].stats.total_accesses for index, _ in pending)
    return results  # type: ignore[return-value]
