"""Result tables with paper-versus-measured rows.

Every benchmark prints a :class:`Table`; EXPERIMENTS.md is assembled from
the same rows, so the console output and the document never diverge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregation the paper's GEOMEAN bars use)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Row:
    """One line of a result table."""

    label: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""
    note: str = ""

    def formatted(self, width: int) -> str:
        paper = f"{self.paper:10.3f}" if self.paper is not None else (
            " " * 10)
        note = f"  {self.note}" if self.note else ""
        return (f"  {self.label:<{width}} {self.measured:10.3f} "
                f"{paper} {self.unit}{note}")


@dataclass
class Table:
    """A titled collection of rows, printable and diffable.

    ``metadata`` carries run telemetry (wall-clock, simulated accesses
    per second, cache hits, worker count) so future perf work has an
    archived baseline to regress against; it is included in
    :meth:`to_dict` and therefore in every ``results/*.json`` artifact.
    """

    title: str
    rows: List[Row] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add(self, label: str, measured: float,
            paper: Optional[float] = None, unit: str = "",
            note: str = "") -> None:
        self.rows.append(Row(label, measured, paper, unit, note))

    def render(self) -> str:
        width = max([len(r.label) for r in self.rows] + [8])
        header = (f"{self.title}\n  {'':<{width}} {'measured':>10} "
                  f"{'paper':>10}")
        body = "\n".join(row.formatted(width) for row in self.rows)
        return f"{header}\n{body}"

    def show(self) -> None:
        print()
        print(self.render())

    def to_dict(self) -> dict:
        """Machine-readable form (archived as JSON next to the text)."""
        return {
            "title": self.title,
            "rows": [
                {"label": row.label, "measured": row.measured,
                 "paper": row.paper, "unit": row.unit, "note": row.note}
                for row in self.rows
            ],
            "metadata": dict(self.metadata),
        }


def traffic_breakdown(stats, top: int = 12) -> str:
    """Per-message-type interconnect traffic table for one run."""
    from repro.common.messages import message_bytes
    rows = []
    for kind, count in stats.messages.items():
        rows.append((message_bytes(kind) * count, count, kind.name))
    rows.sort(reverse=True)
    total = max(stats.traffic_bytes, 1)
    lines = [f"  {'message':<20} {'count':>10} {'bytes':>12} {'share':>7}"]
    for nbytes, count, name in rows[:top]:
        lines.append(f"  {name:<20} {count:>10,} {nbytes:>12,} "
                     f"{nbytes / total:>6.1%}")
    return "\n".join(lines)


def ascii_bars(values, labels, width: int = 46, lo: float = None,
               hi: float = None) -> str:
    """Render values as a horizontal ASCII bar chart (terminal reports).

    The bar range defaults to [min, max] padded slightly so small
    speedup differences remain visible.
    """
    values = list(values)
    labels = list(labels)
    if not values:
        return "(no data)"
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        hi = lo + 1e-9
    span = hi - lo
    lo -= 0.05 * span
    hi += 0.05 * span
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round((value - lo) / (hi - lo) * width))
        bar = "#" * max(filled, 1)
        lines.append(f"  {str(label):<{label_width}} |{bar:<{width}}| "
                     f"{value:.3f}")
    return "\n".join(lines)
