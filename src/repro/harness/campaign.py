"""Fault-tolerant campaign execution over independent runs.

:mod:`repro.harness.parallel` gives the harness *fast* fan-out; this
module gives it *durable* fan-out. A campaign is a batch of independent
runs that must survive the failure modes long unattended executions
actually hit:

* **Crash isolation** -- a run that raises (or whose worker process is
  killed outright) becomes a typed :class:`RunFailure` carrying the run
  key, error, traceback, and attempt count; every other run's result is
  kept.
* **Per-run timeouts** -- each worker self-arms ``SIGALRM`` (via
  ``signal.setitimer``) around its run, so a wedged simulation turns
  into a ``timeout`` failure instead of hanging the batch. The parent
  additionally enforces a grace deadline with ``SIGKILL`` as a backstop
  for workers stuck in uninterruptible code.
* **Retry with exponential backoff** -- transient failures (a dead
  worker, any ``OSError``) are re-executed up to
  :attr:`CampaignPolicy.retries` times, with capped exponential delays.
* **Checkpoint/resume** -- a :class:`CampaignJournal` appends one JSONL
  record per committed run (key + pickled payload, flushed and fsynced)
  and keeps an atomic sibling checkpoint file via
  :mod:`repro.common.ioutil`. Re-running the same campaign with the same
  journal skips every committed run and replays its recorded payload,
  so the resumed campaign's aggregate statistics are bit-identical to an
  uninterrupted one.

Workers are one process per attempt (started from the same fork/spawn
context the pool layer uses). That costs one ``fork`` per run -- noise
for the multi-second simulations campaigns are made of -- and buys exact
failure attribution: a worker's death can only ever lose the single run
it was bound to at spawn time.

The journal doubles as an observability trace: retry, timeout,
worker-death, and resume-skip records use the matching
:class:`~repro.obs.events.EventKind` values, so ``repro report
<journal>`` renders a campaign-health section.
"""

from __future__ import annotations

import base64
import heapq
import json
import math
import os
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import (Any, Dict, List, Optional, Sequence, Tuple, Union)

from repro.common.errors import ConfigError
from repro.common.ioutil import atomic_write_text
from repro.obs.events import EventKind

__all__ = [
    "CampaignError", "CampaignJournal", "CampaignPolicy",
    "CampaignResult", "RunFailure", "RunSuccess", "campaign_map",
    "execute_guarded", "journal_summary", "policy_from_env", "run_specs",
]

#: Failure kinds a campaign distinguishes (``RunFailure.kind``).
EXCEPTION = "exception"
TIMEOUT = "timeout"
WORKER_DEATH = "worker-death"

#: Seconds the parent grants past ``run_timeout`` before it stops
#: trusting the worker's own alarm and kills it.
_TIMEOUT_GRACE = 5.0


@dataclass(frozen=True)
class CampaignPolicy:
    """Retry/timeout policy for one campaign.

    ``retries`` counts *re*-executions: ``retries=2`` allows three
    attempts total. Only transient failures are retried -- worker death
    always, ``OSError`` by default, timeouts only when
    ``retry_timeouts`` is set (a deterministic simulation that timed
    out once will usually time out again).
    """

    retries: int = 2
    run_timeout: Optional[float] = None
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    retry_timeouts: bool = False

    def backoff(self, attempt: int) -> float:
        """Delay before re-executing after the ``attempt``-th failure."""
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** max(0, attempt - 1)))


def policy_from_env() -> Optional[CampaignPolicy]:
    """Build a policy from ``REPRO_RUN_TIMEOUT`` / ``REPRO_RETRIES``.

    Returns ``None`` when neither is set (callers then keep the plain
    fail-fast path). Malformed values raise
    :class:`~repro.common.errors.ConfigError` so the CLI reports one
    clean line instead of a traceback.
    """
    raw_timeout = (os.environ.get("REPRO_RUN_TIMEOUT") or "").strip()
    raw_retries = (os.environ.get("REPRO_RETRIES") or "").strip()
    if not raw_timeout and not raw_retries:
        return None
    timeout = None
    if raw_timeout:
        try:
            timeout = float(raw_timeout)
        except ValueError:
            raise ConfigError("REPRO_RUN_TIMEOUT must be a number of "
                              f"seconds, got {raw_timeout!r}") from None
        if not math.isfinite(timeout):
            # float() happily parses "inf" and "nan"; a NaN deadline
            # would silently disable the parent's SIGKILL backstop.
            raise ConfigError("REPRO_RUN_TIMEOUT must be a finite number "
                              f"of seconds, got {raw_timeout!r}")
        if timeout <= 0:
            raise ConfigError("REPRO_RUN_TIMEOUT must be positive, got "
                              f"{raw_timeout!r}")
    retries = 0
    if raw_retries:
        try:
            retries = int(raw_retries)
        except ValueError:
            raise ConfigError("REPRO_RETRIES must be a non-negative "
                              f"integer, got {raw_retries!r}") from None
        if retries < 0:
            raise ConfigError("REPRO_RETRIES must be a non-negative "
                              f"integer, got {raw_retries!r}")
    return CampaignPolicy(retries=retries, run_timeout=timeout)


# ----------------------------------------------------------------------
# Typed outcomes
# ----------------------------------------------------------------------
@dataclass
class RunSuccess:
    """One completed run (live, retried, or replayed from a journal)."""

    index: int
    key: str
    value: Any
    attempts: int = 1
    resumed: bool = False

    ok = True


@dataclass
class RunFailure:
    """One run that did not produce a result after every attempt."""

    index: int
    key: str
    kind: str                       # exception | timeout | worker-death
    error_type: str = ""
    error: str = ""
    traceback: str = ""
    attempts: int = 1

    ok = False

    def __str__(self) -> str:
        detail = f": {self.error_type}: {self.error}" if self.error_type \
            else ""
        return (f"{self.key}: {self.kind} after {self.attempts} "
                f"attempt(s){detail}")


RunOutcome = Union[RunSuccess, RunFailure]


class CampaignError(RuntimeError):
    """A campaign finished with unresolved :class:`RunFailure` records."""

    def __init__(self, failures: Sequence[RunFailure],
                 journal_path: Optional[str] = None) -> None:
        self.failures = list(failures)
        self.journal_path = journal_path
        hint = (f"; resume with the journal at {journal_path}"
                if journal_path else "")
        super().__init__(
            f"{len(self.failures)} of the campaign's runs failed "
            f"(first: {self.failures[0]}){hint}")


# ----------------------------------------------------------------------
# Journal: append-only JSONL + atomic checkpoint
# ----------------------------------------------------------------------
_MISS = object()


class CampaignJournal:
    """Append-only JSONL journal of committed runs.

    One ``run_ok`` record per committed run (key + base64-pickled
    payload), flushed and fsynced before the commit is acknowledged;
    retry/timeout/worker-death/resume-skip notes ride along as
    event-style records. A sibling ``<name>.checkpoint.json`` summary is
    republished atomically after every commit. A torn trailing line
    (the writer died mid-append) is ignored on load, so a journal is
    always resumable.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.meta: Dict[str, Any] = {}
        self._committed: Dict[str, Any] = {}
        self.counts: Dict[str, int] = {}
        if self.path.exists():
            self._load()
        self._handle = self.path.open("a", encoding="utf-8")

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break               # torn tail: ignore, stay resumable
                kind = record.get("kind")
                if kind == "meta":
                    self.meta.update(record)
                    continue
                self.counts[kind] = self.counts.get(kind, 0) + 1
                if kind == "run_ok":
                    try:
                        payload = pickle.loads(base64.b64decode(
                            record["payload"]))
                    except Exception:   # noqa: BLE001 - damaged record
                        continue        # treat as uncommitted
                    self._committed[record["key"]] = payload

    # -- identity ------------------------------------------------------
    def ensure_meta(self, **meta) -> None:
        """Pin (or verify) the campaign identity this journal belongs to.

        A journal written by one campaign must not silently resume a
        different one: any already-recorded field that disagrees raises
        :class:`~repro.common.errors.ConfigError`.
        """
        stale = {key: self.meta[key] for key, value in meta.items()
                 if key in self.meta and self.meta[key] != value}
        if stale:
            detail = ", ".join(
                f"{key}: journal={self.meta[key]!r} requested={meta[key]!r}"
                for key in stale)
            raise ConfigError(
                f"journal {self.path} belongs to a different campaign "
                f"({detail})")
        fresh = {key: value for key, value in meta.items()
                 if key not in self.meta}
        if fresh:
            self.meta.update(fresh)
            self._append({"kind": "meta", **fresh}, durable=True)

    # -- writes --------------------------------------------------------
    def _append(self, record: dict, durable: bool = False) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        if durable:
            os.fsync(self._handle.fileno())

    def commit(self, key: str, payload: Any) -> None:
        """Durably record one completed run and its result payload."""
        encoded = base64.b64encode(
            pickle.dumps(payload,
                         protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
        self._append({"kind": "run_ok", "key": key, "payload": encoded},
                     durable=True)
        self._committed[key] = payload
        self.counts["run_ok"] = self.counts.get("run_ok", 0) + 1
        self._checkpoint()

    def note(self, kind: str, step: int = -1, cause: str = "",
             **extra) -> None:
        """Record a non-commit campaign event (retry, timeout, ...)."""
        record: Dict[str, Any] = {"kind": kind}
        if step >= 0:
            record["step"] = step
        if cause:
            record["cause"] = cause
        record.update(extra)
        self._append(record)
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def _checkpoint(self) -> None:
        checkpoint = {
            "journal": self.path.name,
            "committed": self.counts.get("run_ok", 0),
            "counts": dict(self.counts),
            "meta": {key: value for key, value in self.meta.items()
                     if key != "kind"},
        }
        atomic_write_text(self.checkpoint_path(),
                          json.dumps(checkpoint, indent=1) + "\n")

    def checkpoint_path(self) -> Path:
        return self.path.with_name(self.path.name + ".checkpoint.json")

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> Any:
        """The committed payload for ``key``, or the ``_MISS`` sentinel."""
        return self._committed.get(key, _MISS)

    def __contains__(self, key: str) -> bool:
        return key in self._committed

    def __len__(self) -> int:
        return len(self._committed)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def journal_summary(journal_path) -> Dict[str, Any]:
    """Progress summary for a journal, torn-checkpoint tolerant.

    Prefers the atomic ``<name>.checkpoint.json`` sibling (cheap: no
    payload decoding); a checkpoint that is missing, truncated mid-write
    (copied while being replaced, or damaged by the filesystem), or
    decodes to the wrong shape falls back to replaying the journal --
    the same guard the journal itself applies to a torn trailing line.
    The fallback marks the summary with ``"recovered": True``.
    """
    journal_path = Path(journal_path)
    checkpoint = journal_path.with_name(
        journal_path.name + ".checkpoint.json")
    try:
        summary = json.loads(checkpoint.read_text(encoding="utf-8"))
        if isinstance(summary, dict) and "committed" in summary:
            return summary
    except (OSError, ValueError):
        pass                            # torn/corrupt: replay instead
    counts: Dict[str, int] = {}
    meta: Dict[str, Any] = {}
    if journal_path.exists():
        with journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break               # torn tail: same rule as _load
                kind = record.get("kind")
                if kind == "meta":
                    meta.update({key: value
                                 for key, value in record.items()
                                 if key != "kind"})
                    continue
                counts[kind] = counts.get(kind, 0) + 1
    return {
        "journal": journal_path.name,
        "committed": counts.get("run_ok", 0),
        "counts": counts,
        "meta": meta,
        "recovered": True,
    }


# ----------------------------------------------------------------------
# Guarded execution (shared by the serial path and the workers)
# ----------------------------------------------------------------------
class _RunTimeout(BaseException):
    # BaseException deliberately: the run under execution (oracle,
    # runner) may catch-and-record ``Exception`` as part of its own
    # contract, and a timeout must never be swallowed into a result --
    # only ``execute_guarded`` may catch it.
    pass


def _raise_timeout(_signum, _frame):
    raise _RunTimeout()


def _alarm_available() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def execute_guarded(fn, item, timeout: Optional[float]) -> tuple:
    """Run ``fn(item)`` with a self-armed deadline; never raises.

    Returns ``("ok", value)`` or
    ``("err", kind, error_type, message, traceback, transient)``.
    Shared by the campaign executor's serial path, its one-attempt
    workers, and the service worker fleet (:mod:`repro.service.worker`).
    """
    armed = False
    if timeout and _alarm_available():
        previous = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        armed = True
    try:
        return ("ok", fn(item))
    except _RunTimeout:
        return ("err", TIMEOUT, "TimeoutError",
                f"run exceeded {timeout:.3f}s", "", False)
    except Exception as exc:           # noqa: BLE001 - crash isolation
        return ("err", EXCEPTION, type(exc).__name__, str(exc),
                traceback.format_exc(), isinstance(exc, OSError))
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def _task_entry(fn, item, index: int, attempt: int,
                timeout: Optional[float], queue) -> None:
    """Worker body: one attempt of one run, result shipped by queue."""
    queue.put((index, attempt, execute_guarded(fn, item, timeout)))


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
def campaign_map(fn, items, *, keys: Optional[Sequence[str]] = None,
                 jobs: int = 1, policy: Optional[CampaignPolicy] = None,
                 journal: Optional[CampaignJournal] = None,
                 bus=None, require_fork: bool = False
                 ) -> List[RunOutcome]:
    """Fault-tolerantly map ``fn`` over ``items``; one outcome per item.

    The resilient sibling of
    :func:`repro.harness.parallel.parallel_map`: order-preserving and
    deterministic in its *results* (retries change wall-clock, never
    values), but an item that ultimately fails yields a
    :class:`RunFailure` instead of poisoning the batch. With a
    ``journal``, items whose key is already committed are skipped and
    replayed from the journal; live completions are committed as they
    finish. ``bus`` (an :class:`~repro.obs.bus.EventBus`) receives
    retry/timeout/worker-death/resume-skip events.
    """
    from repro.harness.parallel import fork_available

    items = list(items)
    policy = policy or CampaignPolicy()
    if keys is None:
        keys = [f"item{index:06d}" for index in range(len(items))]
    else:
        keys = [str(key) for key in keys]
        if len(keys) != len(items):
            raise ConfigError(f"campaign_map got {len(items)} items but "
                              f"{len(keys)} keys")

    outcomes: List[Optional[RunOutcome]] = [None] * len(items)
    pending: List[int] = []
    for index in range(len(items)):
        if journal is not None:
            payload = journal.get(keys[index])
            if payload is not _MISS:
                outcomes[index] = RunSuccess(index, keys[index], payload,
                                             attempts=0, resumed=True)
                _note(journal, bus, EventKind.RESUME_SKIP.value, index,
                      keys[index])
                continue
        pending.append(index)

    effective = min(jobs, len(pending)) if pending else 0
    if effective > 1 and require_fork and not fork_available():
        effective = 1
    if effective > 1:
        _run_pooled(fn, items, keys, pending, effective, policy,
                    journal, bus, outcomes)
    else:
        _run_serial(fn, items, keys, pending, policy, journal, bus,
                    outcomes)
    _record_campaign_telemetry(outcomes, effective or 1)
    return outcomes  # type: ignore[return-value]


def _note(journal: Optional[CampaignJournal], bus, kind: str,
          index: int, cause: str) -> None:
    if journal is not None:
        journal.note(kind, step=index, cause=cause)
    if bus is not None:
        bus.step = index
        bus.emit(EventKind(kind), cause=cause)


def _finalize(outcomes, journal, bus, keys, index: int,
              outcome: RunOutcome) -> None:
    outcomes[index] = outcome
    if isinstance(outcome, RunSuccess):
        if journal is not None:
            journal.commit(keys[index], outcome.value)
        return
    if journal is not None:
        journal.note("run_failure", step=index, cause=outcome.kind,
                     error_type=outcome.error_type, error=outcome.error,
                     attempts=outcome.attempts, key=outcome.key)
    if outcome.kind == TIMEOUT:
        _note(journal, bus, EventKind.RUN_TIMEOUT.value, index,
              outcome.key)


def _should_retry(policy: CampaignPolicy, kind: str, transient: bool,
                  attempt: int) -> bool:
    if attempt > policy.retries:
        return False
    if kind == WORKER_DEATH:
        return True
    if kind == TIMEOUT:
        return policy.retry_timeouts
    return transient


def _failure_from(keys, index: int, attempt: int, err: tuple
                  ) -> RunFailure:
    _tag, kind, error_type, message, tb = err[:5]
    return RunFailure(index, keys[index], kind, error_type, message, tb,
                      attempts=attempt)


def _run_serial(fn, items, keys, pending, policy, journal, bus,
                outcomes) -> None:
    """In-process fallback: same semantics minus worker-death isolation
    (a hard crash here kills the campaign -- the journal still bounds
    the loss to the current run)."""
    for index in pending:
        attempt = 0
        while True:
            attempt += 1
            result = execute_guarded(fn, items[index],
                                      policy.run_timeout)
            if result[0] == "ok":
                _finalize(outcomes, journal, bus, keys, index,
                          RunSuccess(index, keys[index], result[1],
                                     attempts=attempt))
                break
            kind, transient = result[1], result[5]
            if kind == TIMEOUT:
                _note(journal, bus, EventKind.RUN_TIMEOUT.value, index,
                      keys[index])
            if _should_retry(policy, kind, transient, attempt):
                _note(journal, bus, EventKind.RUN_RETRY.value, index,
                      kind)
                time.sleep(policy.backoff(attempt))
                continue
            _finalize(outcomes, journal, bus, keys, index,
                      _failure_from(keys, index, attempt, result))
            break


@dataclass
class _Active:
    process: Any
    index: int
    attempt: int
    deadline: Optional[float]


def _run_pooled(fn, items, keys, pending, jobs, policy, journal, bus,
                outcomes) -> None:
    """Process-per-attempt execution with claim-free death detection.

    Each worker process is bound to exactly one (item, attempt) at spawn
    time, so a dead worker unambiguously identifies the single run it
    lost -- there is no task queue a crash could silently swallow from.
    """
    from repro.harness.parallel import _pool_context

    context = _pool_context()
    result_queue = context.Queue()
    waiting: deque = deque(pending)
    retry_heap: List[Tuple[float, int, int]] = []   # (ready, index, att)
    attempts: Dict[int, int] = {index: 0 for index in pending}
    active: List[_Active] = []
    received: Dict[Tuple[int, int], tuple] = {}
    remaining = len(pending)

    def drain() -> None:
        while True:
            try:
                index, attempt, payload = result_queue.get_nowait()
            except Empty:
                return
            received[(index, attempt)] = payload

    def fail_or_retry(slot: _Active, err: tuple) -> None:
        nonlocal remaining
        kind, transient = err[1], err[5]
        if kind == TIMEOUT:
            _note(journal, bus, EventKind.RUN_TIMEOUT.value, slot.index,
                  keys[slot.index])
        if _should_retry(policy, kind, transient, slot.attempt):
            _note(journal, bus, EventKind.RUN_RETRY.value, slot.index,
                  kind)
            heapq.heappush(retry_heap,
                           (time.monotonic()
                            + policy.backoff(slot.attempt),
                            slot.index, slot.attempt))
            return
        _finalize(outcomes, journal, bus, keys, slot.index,
                  _failure_from(keys, slot.index, slot.attempt, err))
        remaining -= 1

    def finish(slot: _Active, payload: tuple) -> None:
        nonlocal remaining
        active.remove(slot)
        slot.process.join()
        if payload[0] == "ok":
            _finalize(outcomes, journal, bus, keys, slot.index,
                      RunSuccess(slot.index, keys[slot.index],
                                 payload[1], attempts=slot.attempt))
            remaining -= 1
        else:
            fail_or_retry(slot, payload)

    try:
        while remaining > 0:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _ready, index, _attempt = heapq.heappop(retry_heap)
                waiting.append(index)
            while waiting and len(active) < jobs:
                index = waiting.popleft()
                attempts[index] += 1
                attempt = attempts[index]
                deadline = (None if policy.run_timeout is None else
                            time.monotonic() + policy.run_timeout
                            + _TIMEOUT_GRACE)
                process = context.Process(
                    target=_task_entry,
                    args=(fn, items[index], index, attempt,
                          policy.run_timeout, result_queue),
                    daemon=True)
                process.start()
                active.append(_Active(process, index, attempt, deadline))
            # Block briefly on the queue, then sweep the active set.
            try:
                index, attempt, payload = result_queue.get(timeout=0.05)
                received[(index, attempt)] = payload
            except Empty:
                pass
            drain()
            now = time.monotonic()
            for slot in list(active):
                payload = received.pop((slot.index, slot.attempt), None)
                if payload is not None:
                    finish(slot, payload)
                elif not slot.process.is_alive():
                    # Killed worker: drain once more in case the result
                    # landed between the last sweep and its death.
                    drain()
                    payload = received.pop((slot.index, slot.attempt),
                                           None)
                    if payload is not None:
                        finish(slot, payload)
                        continue
                    active.remove(slot)
                    slot.process.join()
                    _note(journal, bus, EventKind.WORKER_DEATH.value,
                          slot.index, keys[slot.index])
                    fail_or_retry(slot, ("err", WORKER_DEATH,
                                         "WorkerDeath",
                                         f"worker exited with code "
                                         f"{slot.process.exitcode} before"
                                         f" delivering a result", "",
                                         True))
                elif slot.deadline is not None and now > slot.deadline:
                    slot.process.kill()
                    slot.process.join()
                    active.remove(slot)
                    fail_or_retry(slot, ("err", TIMEOUT, "TimeoutError",
                                         f"run exceeded "
                                         f"{policy.run_timeout:.3f}s "
                                         f"(parent-enforced)", "",
                                         False))
    finally:
        for slot in active:
            slot.process.kill()
            slot.process.join()
        result_queue.close()
        result_queue.join_thread()


def _record_campaign_telemetry(outcomes, effective: int) -> None:
    from repro.harness import parallel

    telemetry = parallel._telemetry
    telemetry["effective_jobs"] = effective
    for outcome in outcomes:
        if outcome is None:
            continue
        if isinstance(outcome, RunFailure):
            telemetry["run_failures"] += 1
        elif outcome.resumed:
            telemetry["resume_skips"] += 1
        if outcome.attempts > 1:
            telemetry["run_retries"] += outcome.attempts - 1


# ----------------------------------------------------------------------
# Spec-level campaigns (the fault-tolerant run_many)
# ----------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Everything a ``run_specs`` campaign produced.

    ``results`` is aligned with the requested specs (``None`` where the
    run ultimately failed); ``outcomes`` is aligned with the *executed*
    subset, in plan order.
    """

    results: List[Optional[Any]]
    outcomes: List[RunOutcome] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    resumed: int = 0
    executed: int = 0
    cache_hits: int = 0
    journal_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def require_complete(self) -> List[Any]:
        """The full results list, or :class:`CampaignError` if any run
        failed (completed results stay cached/journaled for resume)."""
        if self.failures:
            raise CampaignError(self.failures, self.journal_path)
        return self.results


def _spec_task(job):
    from repro.harness.parallel import execute_run

    _index, spec, trace_path = job
    return execute_run(spec, trace_path)


def run_specs(specs, jobs: Optional[int] = None, cache=_MISS,
              trace_dir=None, policy: Optional[CampaignPolicy] = None,
              journal: Optional[CampaignJournal] = None,
              bus=None) -> CampaignResult:
    """Fault-tolerant :func:`~repro.harness.parallel.run_many`.

    Same planning (session cache consultation, duplicate collapsing,
    lazy trace paths) but pending runs execute under
    :func:`campaign_map`: failures become :class:`RunFailure` records
    instead of exceptions, completed results are cached *and* journaled
    as they finish, and a resume replays journaled payloads without
    re-simulating. ``cache`` follows :func:`run_many`'s convention:
    the session cache by default, ``None`` to disable memoization.
    """
    from repro.harness import parallel

    specs = list(specs)
    jobs = (parallel.default_jobs() if jobs is None
            else parallel.parse_jobs(jobs, "jobs"))
    if cache is _MISS:
        cache = parallel.session_cache()
    plan = parallel.plan_batch(specs, cache, trace_dir, want_keys=True)
    dropped_before = cache.dropped_puts if cache is not None else 0

    outcomes = campaign_map(
        _spec_task, plan.pending,
        keys=[plan.keys[index] for index, _spec, _trace in plan.pending],
        jobs=jobs, policy=policy, journal=journal, bus=bus)

    executed = 0
    for (index, _spec, _trace), outcome in zip(plan.pending, outcomes):
        if isinstance(outcome, RunSuccess):
            plan.results[index] = outcome.value
            if not outcome.resumed:
                executed += 1
            if cache is not None:
                cache.put(plan.keys[index], outcome.value)
    parallel.resolve_aliases(plan)
    parallel.record_batch_telemetry(
        plan, executed,
        dropped_puts=(cache.dropped_puts - dropped_before
                      if cache is not None else 0))

    failures = [outcome for outcome in outcomes
                if isinstance(outcome, RunFailure)]
    return CampaignResult(
        results=plan.results, outcomes=list(outcomes), failures=failures,
        resumed=sum(1 for outcome in outcomes
                    if isinstance(outcome, RunSuccess)
                    and outcome.resumed),
        executed=executed,
        cache_hits=len(specs) - len(plan.pending),
        journal_path=str(journal.path) if journal is not None else None)
