"""Per-figure experiment definitions.

Each ``fig*`` function reproduces one figure of the paper's evaluation:
it builds the systems, runs the workloads, and returns a
:class:`~repro.harness.reporting.Table` whose rows carry both the measured
value and the paper's value (where the paper states one). The benchmarks
in ``benchmarks/`` are thin wrappers that execute these functions under
pytest-benchmark and assert the qualitative *shape* (who wins, direction
of trends) rather than absolute numbers -- the substrate is a trace-driven
simulator, not the authors' Multi2Sim testbed (see DESIGN.md).

Execution goes through :func:`repro.harness.parallel.run_many`: each
figure assembles its full list of ``(config, workload)`` runs and issues
them as one batch, which (a) fans out over ``REPRO_JOBS`` worker
processes and (b) deduplicates against the session result cache, so the
baseline runs shared by fig17-fig27 are simulated exactly once per
session. Results are bit-identical to the serial path (the simulator is
deterministic); every table carries run telemetry in ``Table.metadata``.

Scaling knobs (environment variables):

``REPRO_ACCESSES``  accesses per core per run (default 6000)
``REPRO_FULL``      set to 1 to run every application instead of the
                    representative subset
``REPRO_SCALE``     capacity scale divisor (default 16; 1 = paper-sized)
``REPRO_JOBS``      worker processes for independent runs (default 1)
``REPRO_CACHE_DIR`` persist run results on disk across sessions
``REPRO_RUN_TIMEOUT`` per-run deadline in seconds; routes figure batches
                    through the fault-tolerant campaign layer
``REPRO_RETRIES``   retry budget for transient failures (worker death,
                    OSError); also enables the campaign layer
"""

from __future__ import annotations

import functools
import os
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import (DirCachingPolicy, DirectoryConfig,
                                 LLCDesign, LLCReplacement, Protocol,
                                 SystemConfig, CacheGeometry,
                                 scaled_socket)
from repro.common.stats import weighted_speedup
from repro.harness.campaign import policy_from_env, run_specs
from repro.harness.energy import estimate_energy
from repro.harness.parallel import (run_many, telemetry_since,
                                    telemetry_snapshot)
from repro.harness.reporting import Table, geomean
from repro.harness.runner import RunResult, run_workload
from repro.harness.system_builder import build_system
from repro.workloads.suites import (SUITES, make_heterogeneous_mixes,
                                    make_multithreaded, make_rate_workload,
                                    make_server_workload, suite_profiles)
from repro.workloads.trace import Workload


def accesses_per_core(default: int = 6000) -> int:
    return int(os.environ.get("REPRO_ACCESSES", default))


def capacity_scale() -> int:
    return int(os.environ.get("REPRO_SCALE", 16))


def run_full() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def jobs() -> int:
    """Worker processes for independent runs (``REPRO_JOBS``)."""
    from repro.harness.parallel import default_jobs
    return default_jobs()


def default_config(**overrides) -> SystemConfig:
    return scaled_socket(capacity_scale(), **overrides)


def _instrumented(fn):
    """Record wall-clock and run telemetry into the returned table.

    Every figure's ``results/*.json`` artifact then carries the number
    of simulated runs, cache hits, per-run wall time, and simulated
    accesses per second -- the baseline future perf PRs regress against.
    """
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        before = telemetry_snapshot()
        started = time.perf_counter()
        table, results = fn(*args, **kwargs)
        elapsed = time.perf_counter() - started
        delta = telemetry_since(before)
        run_wall = delta["wall_seconds"]
        table.metadata.update({
            "experiment_wall_seconds": round(elapsed, 3),
            "runs_executed": int(delta["runs"]),
            "cache_hits": int(delta["cache_hits"]),
            "run_wall_seconds": round(run_wall, 3),
            "simulated_accesses": int(delta["accesses"]),
            "accesses_per_second": (
                int(delta["accesses"] / run_wall) if run_wall else 0),
            "jobs": jobs(),
            "effective_jobs": int(
                telemetry_snapshot()["effective_jobs"]),
            "cache_dropped_puts": int(delta["cache_dropped_puts"]),
            "run_retries": int(delta["run_retries"]),
            "run_failures": int(delta["run_failures"]),
        })
        return table, results
    return wrapper


#: Representative per-suite subsets: always include the applications the
#: paper calls out by name (freqmine, vips, lu_ncb, 330.art, xalancbmk,
#: gcc.ppO2, cam4, ...).
REPRESENTATIVE: Dict[str, List[str]] = {
    "PARSEC": ["blackscholes", "canneal", "freqmine", "streamcluster",
               "vips"],
    "SPLASH2X": ["fft", "lu_ncb", "ocean_cp", "raytrace",
                 "water_nsquared"],
    "SPECOMP": ["312.swim", "330.art"],
    "FFTW": ["fftw"],
    "CPU2017": ["xalancbmk", "mcf", "gcc.ppO2", "leela", "lbm", "cam4",
                "omnetpp", "povray"],
    "SERVER": ["SPECjbb", "SPECWeb-S", "TPC-C", "TPC-H"],
}

MT_SUITES = ("PARSEC", "SPLASH2X", "SPECOMP", "FFTW")


def apps_of(suite: str):
    profiles = suite_profiles(suite)
    if run_full():
        return profiles
    chosen = set(REPRESENTATIVE[suite])
    return [p for p in profiles if p.name in chosen]


def workload_for(profile, suite: str, config: SystemConfig,
                 seed: int = 11) -> Workload:
    n = accesses_per_core()
    if suite == "CPU2017":
        return make_rate_workload(profile, config, n, seed=seed)
    if suite == "SERVER":
        return make_server_workload(profile, config, n, seed=seed)
    return make_multithreaded(profile, config, n, seed=seed)


def run_config(config: SystemConfig, workload: Workload) -> RunResult:
    """One cached run (serial; use :func:`run_configs` to batch)."""
    return run_many([(config, workload)], jobs=1)[0]


def run_configs(pairs) -> List[RunResult]:
    """Run a batch of (config, workload) pairs under the figure-level
    parallelism/cache policy; results in request order.

    With ``REPRO_RUN_TIMEOUT`` / ``REPRO_RETRIES`` set, the batch runs
    under the fault-tolerant campaign layer: crashed or wedged runs are
    retried per the policy, completed runs stay in the session cache,
    and only then does an unrecoverable failure raise (so a re-run
    resumes from the cache instead of starting over).
    """
    policy = policy_from_env()
    if policy is None:
        return run_many(pairs, jobs=jobs())
    return run_specs(pairs, jobs=jobs(), policy=policy).require_complete()


def speedup_of(base: RunResult, new: RunResult, suite: str) -> float:
    if suite in ("CPU2017", "CPU-HET"):
        return weighted_speedup(base.per_core_cycles, new.per_core_cycles)
    return base.cycles / new.cycles if new.cycles else 1.0


_AGGREGATE_FIELDS = ("dram_writes", "dram_writes_entry_eviction",
                     "llc_read_misses", "corrupted_block_reads",
                     "dev_invalidations", "wb_de_messages",
                     "get_de_messages", "inclusion_invalidations",
                     "update_pushes", "updates_sent")


def compare_suites(base_config: SystemConfig,
                   new_configs: Dict[str, SystemConfig],
                   suites: Iterable[str], seed: int = 11
                   ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run every app of ``suites`` under base and each new config.

    Returns results[config_label][suite][app] = speedup vs base, plus
    results["_aggregates"][config_label] = summed counters (the Section
    III-D3 statistics are derived from these). All runs of all configs
    are issued as one ``run_many`` batch.
    """
    suites = list(suites)
    labels = list(new_configs)
    work = [(suite, profile,
             workload_for(profile, suite, base_config, seed))
            for suite in suites for profile in apps_of(suite)]
    pairs = [(base_config, workload) for _, _, workload in work]
    for label in labels:
        pairs.extend((new_configs[label], workload)
                     for _, _, workload in work)
    runs = run_configs(pairs)
    base_runs = runs[:len(work)]
    results = {label: {suite: {} for suite in suites}
               for label in labels}
    aggregates = {label: {field: 0 for field in _AGGREGATE_FIELDS}
                  for label in labels}
    for offset, label in enumerate(labels):
        new_runs = runs[(offset + 1) * len(work):(offset + 2) * len(work)]
        for (suite, profile, _), base, new in zip(work, base_runs,
                                                  new_runs):
            results[label][suite][profile.name] = speedup_of(
                base, new, suite)
            for field in _AGGREGATE_FIELDS:
                aggregates[label][field] += getattr(new.stats, field)
    results["_aggregates"] = aggregates
    return results


def zerodev_config(base: SystemConfig, ratio: Optional[float] = None,
                   policy: DirCachingPolicy = DirCachingPolicy.FPSS,
                   replacement: LLCReplacement = LLCReplacement.DATA_LRU,
                   **overrides) -> SystemConfig:
    return base.with_(protocol=Protocol.ZERODEV,
                      directory=DirectoryConfig(ratio=ratio),
                      dir_caching=policy,
                      llc_replacement=replacement, **overrides)


# ----------------------------------------------------------------------
# Figures 2 and 3: 1x versus unbounded directory
# ----------------------------------------------------------------------
@_instrumented
def fig2_unbounded_rate() -> Tuple[Table, dict]:
    """Figure 2: traffic / core-cache misses / weighted speedup of rate
    workloads with an unbounded directory, normalized to the 1x baseline.
    """
    base_config = default_config()
    unbounded = base_config.with_(
        directory=DirectoryConfig(unbounded=True))
    table = Table("Figure 2: unbounded vs 1x directory (CPU2017 rate), "
                  "normalized to baseline")
    speedups, traffics, misses = [], [], []
    paper = {"xalancbmk": 1.04}
    profiles = apps_of("CPU2017")
    workloads = [workload_for(p, "CPU2017", base_config)
                 for p in profiles]
    runs = run_configs([(base_config, w) for w in workloads]
                       + [(unbounded, w) for w in workloads])
    for profile, base, unbd in zip(profiles, runs[:len(workloads)],
                                   runs[len(workloads):]):
        s = speedup_of(base, unbd, "CPU2017")
        t = unbd.stats.traffic_bytes / max(base.stats.traffic_bytes, 1)
        m = (unbd.stats.core_cache_misses
             / max(base.stats.core_cache_misses, 1))
        speedups.append(s)
        traffics.append(t)
        misses.append(m)
        table.add(f"{profile.name}.speedup", s,
                  paper=paper.get(profile.name))
        table.add(f"{profile.name}.traffic", t)
        table.add(f"{profile.name}.miss", m)
    table.add("AVG speedup", geomean(speedups), paper=1.005,
              note="paper: under 1% average speedup")
    table.add("AVG traffic", sum(traffics) / len(traffics), paper=0.90,
              note="paper: ~10% traffic saved")
    table.add("AVG core-cache miss", sum(misses) / len(misses),
              paper=0.85, note="paper: ~15% misses saved")
    return table, {"speedups": speedups, "traffic": traffics,
                   "misses": misses}


@_instrumented
def fig3_unbounded_multithreaded() -> Tuple[Table, dict]:
    """Figure 3: the same comparison for the multi-threaded suites."""
    base_config = default_config()
    unbounded = base_config.with_(
        directory=DirectoryConfig(unbounded=True))
    table = Table("Figure 3: unbounded vs 1x directory (multi-threaded)")
    paper = {"freqmine": 0.96}   # forwarded reads make unbounded slower
    work = [(suite, profile, workload_for(profile, suite, base_config))
            for suite in MT_SUITES for profile in apps_of(suite)]
    runs = run_configs([(base_config, w) for _, _, w in work]
                       + [(unbounded, w) for _, _, w in work])
    all_speedups: Dict[str, List[float]] = {suite: [] for suite in
                                            MT_SUITES}
    for (suite, profile, _), base, unbd in zip(work, runs[:len(work)],
                                               runs[len(work):]):
        s = speedup_of(base, unbd, suite)
        all_speedups[suite].append(s)
        if suite == "PARSEC" or profile.name == "fftw":
            table.add(f"{profile.name}.speedup", s,
                      paper=paper.get(profile.name))
    for suite in MT_SUITES:
        table.add(f"{suite}-AVG speedup", geomean(all_speedups[suite]),
                  paper=1.0, note="paper: 1x is adequate")
    return table, all_speedups


@_instrumented
def fig4_directory_sizes() -> Tuple[Table, dict]:
    """Figure 4: baseline speedup versus sparse-directory size."""
    base_config = default_config()
    ratios = [0.5, 0.125, 1 / 32]
    sized = [base_config.with_(directory=DirectoryConfig(ratio=ratio))
             for ratio in ratios]
    table = Table("Figure 4: speedup vs directory size "
                  "(normalized to 1x)")
    suites = list(MT_SUITES) + ["CPU2017"]
    work = [(suite, profile, workload_for(profile, suite, base_config))
            for suite in suites for profile in apps_of(suite)]
    pairs = [(base_config, w) for _, _, w in work]
    for config in sized:
        pairs.extend((config, w) for _, _, w in work)
    runs = run_configs(pairs)
    results = {}
    for si, suite in enumerate(suites):
        indices = [i for i, (s, _, _) in enumerate(work) if s == suite]
        per_ratio = []
        for ri in range(len(ratios)):
            block = runs[(ri + 1) * len(work):(ri + 2) * len(work)]
            per_ratio.append(geomean([
                speedup_of(runs[i], block[i], suite) for i in indices]))
        results[suite] = per_ratio
        for ratio, value in zip(ratios, per_ratio):
            table.add(f"{suite} @ {ratio:.3f}x", value,
                      note="paper: gradual decline below 1x")
    return table, results


# ----------------------------------------------------------------------
# Figures 5 and 6: motivation for directory caching in the LLC
# ----------------------------------------------------------------------
@_instrumented
def fig5_llc_occupancy() -> Tuple[Table, dict]:
    """Figure 5: projected LLC occupancy of spilled directory entries.

    Measured as the peak unbounded-directory occupancy beyond the 1x
    capacity, expressed as a percentage of LLC blocks (one entry per
    block, as the paper projects). Runs serially: the periodic
    directory-occupancy probe needs the live system, which the parallel
    layer deliberately does not return.
    """
    table = Table("Figure 5: projected LLC occupancy of spilled "
                  "entries (% of LLC blocks)")
    base_config = default_config()
    unbounded = base_config.with_(
        directory=DirectoryConfig(unbounded=True))
    capacity_1x = base_config.directory_entries
    llc_blocks = base_config.llc.blocks
    results = {}
    for suite in list(MT_SUITES) + ["CPU2017"]:
        maxima = []
        for profile in apps_of(suite):
            workload = workload_for(profile, suite, unbounded)
            system = build_system(unbounded)
            peak = [0]

            def probe(sys_, peak=peak):
                peak[0] = max(peak[0], len(sys_.directory))

            run_workload(system, workload, sample_every=2000,
                         sample_fn=probe)
            peak[0] = max(peak[0], len(system.directory))
            overflow = max(0, peak[0] - capacity_1x)
            maxima.append(100.0 * overflow / llc_blocks)
        results[suite] = maxima
        table.add(f"{suite} max-of-max", max(maxima), paper=12.0,
                  note="paper: overall max ~12%")
        table.add(f"{suite} avg-of-max", sum(maxima) / len(maxima),
                  paper=10.0, note="paper: average at most 10%")
    return table, results


@_instrumented
def fig6_llc_ways() -> Tuple[Table, dict]:
    """Figure 6: baseline performance with reduced LLC associativity."""
    base_config = default_config()
    table = Table("Figure 6: speedup with 15/14/13/12-way LLC "
                  "(normalized to 16-way)")
    paper_min_12way = {"PARSEC": 0.78, "SPLASH2X": 0.83, "SPECOMP": 0.86,
                      "CPU2017": 0.91}
    all_ways = (15, 14, 13, 12)
    reduced = {ways: base_config.with_(llc=CacheGeometry(
        base_config.llc.size_bytes * ways // 16, ways))
        for ways in all_ways}
    suites = list(MT_SUITES) + ["CPU2017"]
    work = [(suite, profile, workload_for(profile, suite, base_config))
            for suite in suites for profile in apps_of(suite)]
    pairs = [(base_config, w) for _, _, w in work]
    for ways in all_ways:
        pairs.extend((reduced[ways], w) for _, _, w in work)
    runs = run_configs(pairs)
    results = {}
    for suite in suites:
        indices = [i for i, (s, _, _) in enumerate(work) if s == suite]
        per_ways = {}
        for wi, ways in enumerate(all_ways):
            block = runs[(wi + 1) * len(work):(wi + 2) * len(work)]
            speedups = [speedup_of(runs[i], block[i], suite)
                        for i in indices]
            per_ways[ways] = (geomean(speedups), min(speedups))
        results[suite] = per_ways
        avg14, _ = per_ways[14]
        avg12, min12 = per_ways[12]
        table.add(f"{suite} 14-way avg", avg14, paper=0.97,
                  note="paper: at most 3% loss for 2 ways")
        table.add(f"{suite} 12-way avg", avg12, paper=0.96)
        table.add(f"{suite} 12-way min", min12,
                  paper=paper_min_12way.get(suite))
    return table, results


# ----------------------------------------------------------------------
# Figures 17 and 18: policy selection
# ----------------------------------------------------------------------
@_instrumented
def fig17_policy_selection() -> Tuple[Table, dict]:
    """Figure 17: SpillAll vs FPSS vs FuseAll (no sparse directory,
    dataLRU), normalized to the 1x baseline."""
    base_config = default_config()
    policies = {
        "SpillAll": DirCachingPolicy.SPILL_ALL,
        "FPSS": DirCachingPolicy.FPSS,
        "FuseAll": DirCachingPolicy.FUSE_ALL,
    }
    paper_min = {     # minimum speedup within suite, per Figure 17
        ("PARSEC", "SpillAll"): 0.76, ("PARSEC", "FPSS"): 0.94,
        ("PARSEC", "FuseAll"): 0.91,
        ("SPLASH2X", "SpillAll"): 0.81, ("SPLASH2X", "FPSS"): 0.96,
        ("SPLASH2X", "FuseAll"): 0.90,
        ("SPECOMP", "SpillAll"): 0.84, ("SPECOMP", "FPSS"): 0.98,
        ("SPECOMP", "FuseAll"): 0.98,
        ("CPU2017", "SpillAll"): 0.87, ("CPU2017", "FPSS"): 0.98,
        ("CPU2017", "FuseAll"): 0.99,
    }
    table = Table("Figure 17: directory-entry caching policies "
                  "(ZeroDEV, no directory)")
    configs = {label: zerodev_config(base_config, policy=policy)
               for label, policy in policies.items()}
    suites = list(MT_SUITES) + ["CPU2017"]
    results = compare_suites(base_config, configs, suites)
    for suite in suites:
        for label in policies:
            values = list(results[label][suite].values())
            table.add(f"{suite} {label} avg", geomean(values))
            table.add(f"{suite} {label} min", min(values),
                      paper=paper_min.get((suite, label)))
    return table, results


@_instrumented
def fig18_replacement_selection() -> Tuple[Table, dict]:
    """Figure 18: spLRU vs dataLRU at full and half LLC capacity."""
    base_config = default_config()
    half_llc = CacheGeometry(base_config.llc.size_bytes // 2,
                             base_config.llc.ways)
    configs = {
        "sp-full": zerodev_config(base_config,
                                  replacement=LLCReplacement.SP_LRU),
        "data-full": zerodev_config(base_config),
        "base-half": base_config.with_(llc=half_llc),
        "sp-half": zerodev_config(base_config,
                                  replacement=LLCReplacement.SP_LRU,
                                  llc=half_llc),
        "data-half": zerodev_config(base_config, llc=half_llc),
    }
    suites = list(MT_SUITES) + ["CPU2017"]
    results = compare_suites(base_config, configs, suites)
    table = Table("Figure 18: spLRU vs dataLRU (normalized to full-size "
                  "baseline)")
    for suite in suites:
        for label in configs:
            table.add(f"{suite} {label}",
                      geomean(list(results[label][suite].values())),
                      note="paper: dataLRU higher across the board")
    return table, results


# ----------------------------------------------------------------------
# Figures 19-21: ZeroDEV vs directory size
# ----------------------------------------------------------------------
def zerodev_vs_directory_size(suites: Iterable[str]
                              ) -> Tuple[Table, dict]:
    base_config = default_config()
    configs = {
        "1x": zerodev_config(base_config, ratio=1.0),
        "1/8x": zerodev_config(base_config, ratio=0.125),
        "NoDir": zerodev_config(base_config, ratio=None),
    }
    suites = list(suites)
    results = compare_suites(base_config, configs, suites)
    table = Table("ZeroDEV speedup vs baseline (three directory sizes)")
    for suite in suites:
        for label in configs:
            values = results[label][suite]
            table.add(f"{suite} {label} GEOMEAN",
                      geomean(list(values.values())), paper=0.99,
                      note="paper: within ~1% for all three sizes")
            if label == "NoDir":
                for app, value in values.items():
                    table.add(f"  {suite}/{app} NoDir", value)
    # Section III-D3 statistics, over the NoDir runs.
    agg = results["_aggregates"]["NoDir"]
    entry_write_frac = (agg["dram_writes_entry_eviction"]
                        / max(agg["dram_writes"], 1))
    corrupted_frac = (agg["corrupted_block_reads"]
                      / max(agg["llc_read_misses"], 1))
    table.add("DRAM writes from entry eviction", entry_write_frac,
              paper=0.005, note="paper: below 0.5% (Section III-D3)")
    table.add("LLC read misses to corrupted blocks", corrupted_frac,
              paper=0.0005, note="paper: below 0.05%")
    table.add("DEV invalidations (ZeroDEV, any size)",
              sum(results["_aggregates"][l]["dev_invalidations"]
                  for l in configs), paper=0.0,
              note="zero by construction")
    return table, results


@_instrumented
def fig19_parsec() -> Tuple[Table, dict]:
    """Figure 19: ZeroDEV on PARSEC for 1x, 1/8x, and no directory."""
    return zerodev_vs_directory_size(["PARSEC"])


@_instrumented
def fig20_splash_omp_fftw() -> Tuple[Table, dict]:
    """Figure 20: ZeroDEV on SPLASH2X, SPEC OMP, FFTW."""
    return zerodev_vs_directory_size(["SPLASH2X", "SPECOMP", "FFTW"])


@_instrumented
def fig21_cpu2017_rate() -> Tuple[Table, dict]:
    """Figure 21: ZeroDEV on the SPEC CPU 2017 rate workloads."""
    return zerodev_vs_directory_size(["CPU2017"])


# ----------------------------------------------------------------------
# Figure 22: LLC capacity sensitivity
# ----------------------------------------------------------------------
@_instrumented
def fig22_llc_capacity() -> Tuple[Table, dict]:
    """Figure 22: ZeroDEV with half-size and double-size LLCs."""
    base_config = default_config()
    table = Table("Figure 22: LLC capacity sensitivity (normalized to "
                  "the default-capacity baseline)")
    suites = list(MT_SUITES) + ["CPU2017"]
    work = [(suite, profile, workload_for(profile, suite, base_config))
            for suite in suites for profile in apps_of(suite)]
    variants = []
    for label, factor in (("half", 0.5), ("double", 2.0)):
        llc = CacheGeometry(int(base_config.llc.size_bytes * factor),
                            base_config.llc.ways)
        sized_base = base_config.with_(llc=llc)
        variants.append((label, sized_base,
                         zerodev_config(sized_base, ratio=None),
                         zerodev_config(sized_base, ratio=0.25)))
    pairs = [(base_config, w) for _, _, w in work]
    for _, sized_base, znodir, zquarter in variants:
        for config in (sized_base, znodir, zquarter):
            pairs.extend((config, w) for _, _, w in work)
    runs = run_configs(pairs)
    references = runs[:len(work)]
    results = {}
    block = len(work)
    for vi, (label, _, _, _) in enumerate(variants):
        offset = (1 + 3 * vi) * block
        sized_runs = runs[offset:offset + block]
        nodir_runs = runs[offset + block:offset + 2 * block]
        quarter_runs = runs[offset + 2 * block:offset + 3 * block]
        for suite in suites:
            indices = [i for i, (s, _, _) in enumerate(work)
                       if s == suite]
            base_vals = [speedup_of(references[i], sized_runs[i], suite)
                         for i in indices]
            nodir_vals = [speedup_of(references[i], nodir_runs[i], suite)
                          for i in indices]
            quarter_vals = [speedup_of(references[i], quarter_runs[i],
                                       suite) for i in indices]
            results[(label, suite)] = (geomean(base_vals),
                                       geomean(nodir_vals),
                                       geomean(quarter_vals))
            table.add(f"{suite} Base-{label}", geomean(base_vals))
            table.add(f"{suite} ZeroDEV-NoDir-{label}",
                      geomean(nodir_vals),
                      note="paper: within 1% of same-size baseline "
                           "(16MB); 4MB may need a 1/4x directory")
            table.add(f"{suite} ZeroDEV-1/4x-{label}",
                      geomean(quarter_vals))
    return table, results


# ----------------------------------------------------------------------
# Figure 23: heterogeneous multi-programmed workloads
# ----------------------------------------------------------------------
@_instrumented
def fig23_heterogeneous(n_mixes: int = 6) -> Tuple[Table, dict]:
    """Figure 23: heterogeneous multi-programmed mixes W1..Wn."""
    base_config = default_config()
    if run_full():
        n_mixes = 36
    mixes = make_heterogeneous_mixes(base_config, n_mixes,
                                     accesses_per_core(), seed=17)
    configs = {
        "1x": zerodev_config(base_config, ratio=1.0),
        "1/8x": zerodev_config(base_config, ratio=0.125),
        "NoDir": zerodev_config(base_config, ratio=None),
    }
    table = Table("Figure 23: heterogeneous mixes, weighted speedup vs "
                  "baseline")
    labels = list(configs)
    pairs = [(base_config, mix) for mix in mixes]
    for label in labels:
        pairs.extend((configs[label], mix) for mix in mixes)
    runs = run_configs(pairs)
    base_runs = runs[:len(mixes)]
    results = {}
    for offset, label in enumerate(labels):
        new_runs = runs[(offset + 1) * len(mixes):
                        (offset + 2) * len(mixes)]
        results[label] = [
            weighted_speedup(base.per_core_cycles, new.per_core_cycles)
            for base, new in zip(base_runs, new_runs)]
    for label, values in results.items():
        table.add(f"{label} GEOMEAN", geomean(values), paper=0.99,
                  note="paper: within 1% on average")
        table.add(f"{label} worst mix", min(values), paper=0.98,
                  note="paper: at most 2% individual slowdown")
    return table, results


# ----------------------------------------------------------------------
# Figure 24: server workloads on a big socket
# ----------------------------------------------------------------------
@_instrumented
def fig24_server(n_cores: int = 32) -> Tuple[Table, dict]:
    """Figure 24 (scaled): the paper's socket has 128 cores with a 32 MB
    LLC and 128 KB L2s; we default to 32 cores for Python runtime, with
    the same per-core L2:LLC proportions. ``REPRO_FULL=1`` uses 128."""
    if run_full():
        n_cores = 128
    scale = capacity_scale()
    config = SystemConfig(
        n_cores=n_cores,
        l1i=CacheGeometry(max(32 * 1024 // scale, 512), 8),
        l1d=CacheGeometry(max(32 * 1024 // scale, 512), 8),
        l2=CacheGeometry(max(128 * 1024 // scale, 4096), 8),
        llc=CacheGeometry(
            max(32 * 1024 * 1024 // scale // (128 // n_cores), 64 * 1024),
            16),
        llc_banks=8,
    )
    configs = {
        "1x": zerodev_config(config, ratio=1.0),
        "1/8x": zerodev_config(config, ratio=0.125),
        "NoDir": zerodev_config(config, ratio=None),
    }
    table = Table(f"Figure 24: server workloads ({n_cores}-core socket)")
    paper = {"SPECWeb-S": 0.986}
    labels = list(configs)
    server_accesses = max(accesses_per_core() // 2, 1000)
    profiles = apps_of("SERVER")
    workloads = [make_server_workload(p, config, server_accesses,
                                      seed=23) for p in profiles]
    pairs = [(config, w) for w in workloads]
    for label in labels:
        pairs.extend((configs[label], w) for w in workloads)
    runs = run_configs(pairs)
    base_runs = runs[:len(workloads)]
    results = {label: {} for label in labels}
    for offset, label in enumerate(labels):
        new_runs = runs[(offset + 1) * len(workloads):
                        (offset + 2) * len(workloads)]
        for profile, base, new in zip(profiles, base_runs, new_runs):
            s = speedup_of(base, new, "SERVER")
            results[label][profile.name] = s
            if label == "NoDir":
                table.add(f"{profile.name} NoDir", s,
                          paper=paper.get(profile.name))
    for label in labels:
        table.add(f"{label} GEOMEAN",
                  geomean(list(results[label].values())), paper=0.99,
                  note="paper: within 1% avg; max slowdown 1.4%")
    return table, results


# ----------------------------------------------------------------------
# Figure 25: EPD and inclusive LLC designs
# ----------------------------------------------------------------------
@_instrumented
def fig25_epd_inclusive() -> Tuple[Table, dict]:
    base_config = default_config()
    epd = base_config.with_(llc_design=LLCDesign.EPD)
    inclusive = base_config.with_(llc_design=LLCDesign.INCLUSIVE)
    configs = {
        "BaseEPD-1x": epd,
        "BaseEPD-1/8x": epd.with_(directory=DirectoryConfig(ratio=0.125)),
        "ZDevEPD-NoDir": zerodev_config(epd, ratio=None),
        "ZDevEPD-1/2x": zerodev_config(epd, ratio=0.5),
        "ZDevEPD-1x": zerodev_config(epd, ratio=1.0),
        "BaseIncl-1x": inclusive,
        "ZDevIncl-NoDir": zerodev_config(inclusive, ratio=None),
    }
    suites = list(MT_SUITES) + ["CPU2017"]
    results = compare_suites(base_config, configs, suites)
    table = Table("Figure 25: EPD and inclusive LLCs (normalized to "
                  "non-inclusive 1x baseline)")
    for suite in suites:
        for label in configs:
            table.add(f"{suite} {label}",
                      geomean(list(results[label][suite].values())))
    # Forced-invalidation elimination in the inclusive design.
    profile = apps_of("PARSEC")[0]
    workload = workload_for(profile, "PARSEC", base_config)
    base_run, zdev_run = run_configs(
        [(inclusive, workload),
         (zerodev_config(inclusive, ratio=None), workload)])
    base_forced = (base_run.stats.inclusion_invalidations
                   + base_run.stats.dev_invalidations)
    zdev_forced = (zdev_run.stats.inclusion_invalidations
                   + zdev_run.stats.dev_invalidations)
    eliminated = 1.0 - zdev_forced / base_forced if base_forced else 1.0
    table.add("forced invalidations eliminated (inclusive)",
              eliminated, paper=0.95,
              note="paper: ZeroDEV eliminates 95%; the rest is inclusion")
    results["forced_eliminated"] = eliminated
    return table, results


# ----------------------------------------------------------------------
# Figures 26 and 27: comparisons with MgD and SecDir
# ----------------------------------------------------------------------
@_instrumented
def fig26_mgd() -> Tuple[Table, dict]:
    base_config = default_config()
    configs = {
        "MgD-1/8x": base_config.with_(
            protocol=Protocol.MGD, directory=DirectoryConfig(ratio=0.125)),
        "MgD-1/16x": base_config.with_(
            protocol=Protocol.MGD, directory=DirectoryConfig(ratio=1/16)),
        "MgD-1/32x": base_config.with_(
            protocol=Protocol.MGD, directory=DirectoryConfig(ratio=1/32)),
        "Base-1/32x": base_config.with_(
            directory=DirectoryConfig(ratio=1/32)),
        "ZDev-1/8x": zerodev_config(base_config, ratio=0.125),
        "ZDev-NoDir": zerodev_config(base_config, ratio=None),
    }
    suites = list(MT_SUITES) + ["CPU2017"]
    results = compare_suites(base_config, configs, suites)
    table = Table("Figure 26: Multi-grain Directory comparison "
                  "(normalized to 1x baseline)")
    for suite in suites:
        for label in configs:
            table.add(f"{suite} {label}",
                      geomean(list(results[label][suite].values())),
                      note="paper: MgD declines with size; ZeroDEV flat")
    return table, results


@_instrumented
def fig27_secdir() -> Tuple[Table, dict]:
    base_config = default_config()
    configs = {
        "SecDir-1x": base_config.with_(protocol=Protocol.SECDIR),
        "Base-1/8x": base_config.with_(
            directory=DirectoryConfig(ratio=0.125)),
        "SecDir-1/8x": base_config.with_(
            protocol=Protocol.SECDIR,
            directory=DirectoryConfig(ratio=0.125)),
        "ZDev-1x": zerodev_config(base_config, ratio=1.0),
        "ZDev-1/8x": zerodev_config(base_config, ratio=0.125),
        "ZDev-NoDir": zerodev_config(base_config, ratio=None),
    }
    paper_min = {   # minimum speedups atop the Figure 27 bars
        ("PARSEC", "SecDir-1x"): 0.98, ("PARSEC", "SecDir-1/8x"): 0.82,
        ("PARSEC", "ZDev-NoDir"): 0.94,
        ("SPLASH2X", "SecDir-1x"): 0.99,
        ("SPLASH2X", "SecDir-1/8x"): 0.86,
        ("SPLASH2X", "ZDev-NoDir"): 0.96,
        ("SPECOMP", "SecDir-1x"): 0.97,
        ("SPECOMP", "SecDir-1/8x"): 0.95,
        ("SPECOMP", "ZDev-NoDir"): 0.98,
        ("FFTW", "SecDir-1x"): 0.93, ("FFTW", "SecDir-1/8x"): 0.69,
        ("FFTW", "ZDev-NoDir"): 0.98,
        ("CPU2017", "SecDir-1x"): 0.99,
        ("CPU2017", "SecDir-1/8x"): 0.85,
        ("CPU2017", "ZDev-NoDir"): 0.98,
    }
    suites = list(MT_SUITES) + ["CPU2017"]
    results = compare_suites(base_config, configs, suites)
    table = Table("Figure 27: SecDir comparison (normalized to 1x "
                  "baseline)")
    for suite in suites:
        for label in configs:
            values = list(results[label][suite].values())
            table.add(f"{suite} {label} avg", geomean(values))
            table.add(f"{suite} {label} min", min(values),
                      paper=paper_min.get((suite, label)))
    return table, results


# ----------------------------------------------------------------------
# Contender study: DLS and hybrid update/invalidate
# ----------------------------------------------------------------------
@_instrumented
def fig_contenders() -> Tuple[Table, dict]:
    """Contender protocols versus ZeroDEV.

    DLS (arXiv:1206.4753) removes the directory by resolving coherence
    at an inclusive shared LLC -- zero DEVs by construction, but every
    LLC conflict eviction back-invalidates the sharers (inclusion
    victims).  The hybrid update/invalidate protocol (arXiv:1502.00101)
    keeps the sparse directory and converts S-state write hits into
    update pushes -- upgrades (and their invalidation storms) disappear,
    but every shared write pays a data fan-out.  Both fix *a* symptom of
    directory pressure; neither removes the directory-capacity conflict
    itself the way ZeroDEV does, which is the gap this figure measures.
    """
    base_config = default_config()
    # At the default geometry the LLC dwarfs the private caches and
    # inclusion costs nothing; the quarter-size LLC (= aggregate L2
    # capacity) is where DLS's forced invalidations have to show.
    quarter_llc = CacheGeometry(base_config.llc.size_bytes // 4,
                                base_config.llc.ways)
    dls = base_config.with_(
        protocol=Protocol.DLS,
        directory=DirectoryConfig(ratio=None),
        llc_design=LLCDesign.INCLUSIVE)
    configs = {
        "DLS": dls,
        "DLS-1/4LLC": dls.with_(llc=quarter_llc),
        "Hybrid-1x": base_config.with_(protocol=Protocol.HYBRID),
        "Hybrid-1/32x": base_config.with_(
            protocol=Protocol.HYBRID,
            directory=DirectoryConfig(ratio=1 / 32)),
        "Base-1/32x": base_config.with_(
            directory=DirectoryConfig(ratio=1 / 32)),
        "ZDev-NoDir": zerodev_config(base_config, ratio=None),
        "ZDev-1/4LLC": zerodev_config(base_config, ratio=None,
                                      llc=quarter_llc),
    }
    suites = list(MT_SUITES) + ["CPU2017"]
    results = compare_suites(base_config, configs, suites)
    table = Table("Contender study: DLS and hybrid update/invalidate "
                  "(normalized to 1x baseline)")
    for suite in suites:
        for label in configs:
            values = list(results[label][suite].values())
            table.add(f"{suite} {label} avg", geomean(values))
            table.add(f"{suite} {label} min", min(values))
    agg = results["_aggregates"]
    table.add("DLS DEV invalidations", agg["DLS"]["dev_invalidations"],
              paper=0.0, note="zero by construction (no directory)")
    table.add("DLS inclusion invalidations",
              agg["DLS"]["inclusion_invalidations"],
              note="the DLS loss mechanism: conflict victims kill sharers")
    table.add("DLS-1/4LLC inclusion invalidations",
              agg["DLS-1/4LLC"]["inclusion_invalidations"],
              note="under LLC pressure the storms multiply")
    table.add("Hybrid-1x update pushes",
              agg["Hybrid-1x"]["update_pushes"],
              note="S-state write hits served by pushing, not upgrading")
    table.add("Hybrid-1x updates sent", agg["Hybrid-1x"]["updates_sent"],
              note="per-sharer UPDATE data messages (the fan-out cost)")
    table.add("Hybrid-1/32x DEV invalidations",
              agg["Hybrid-1/32x"]["dev_invalidations"],
              note="updates do not shield the undersized directory")
    return table, results


# ----------------------------------------------------------------------
# Section V extras: energy and multi-socket
# ----------------------------------------------------------------------
@_instrumented
def energy_comparison() -> Tuple[Table, dict]:
    """Section V 'Energy Expense': directory+LLC energy of no-directory
    ZeroDEV versus the 1x baseline (paper: ~9% saving)."""
    base_config = default_config()
    znodir = zerodev_config(base_config, ratio=None)
    table = Table("Energy: directory+LLC energy, ZeroDEV-NoDir vs "
                  "baseline")
    workloads = [workload_for(profile, suite, base_config)
                 for suite in list(MT_SUITES) + ["CPU2017"]
                 for profile in apps_of(suite)]
    runs = run_configs([(base_config, w) for w in workloads]
                       + [(znodir, w) for w in workloads])
    ratios = []
    for base, zdev in zip(runs[:len(workloads)], runs[len(workloads):]):
        base_energy = estimate_energy(base_config, base.stats)
        zdev_energy = estimate_energy(znodir, zdev.stats)
        ratios.append(zdev_energy["total_j"] / base_energy["total_j"])
    saving = 1.0 - sum(ratios) / len(ratios)
    table.add("average energy saving", saving, paper=0.09,
              note="paper: ~9% of directory+LLC energy")
    return table, {"saving": saving, "ratios": ratios}


@_instrumented
def multisocket_comparison(n_sockets: int = 4) -> Tuple[Table, dict]:
    """Section V 'Multi-socket Evaluation': four sockets, ZeroDEV with no
    intra-socket directory within 1.6% of the 1x baseline."""
    from repro.harness.runner import run_multisocket_workload
    from repro.multisocket import MultiSocketSystem
    from repro.workloads.synthetic import generate

    base_config = default_config()
    znodir = zerodev_config(base_config, ratio=None)
    total_cores = n_sockets * base_config.n_cores
    table = Table(f"Multi-socket ({n_sockets} sockets x "
                  f"{base_config.n_cores} cores)")
    speedups = []
    n = max(accesses_per_core() // 2, 1000)
    for suite in ("PARSEC", "SPLASH2X"):
        for profile in apps_of(suite)[:3]:
            traces = generate(profile, base_config, n, seed=29,
                              cores=list(range(total_cores)))
            workload = Workload(profile.name, traces)
            base = MultiSocketSystem(base_config, n_sockets=n_sockets)
            run_multisocket_workload(base, workload)
            zdev = MultiSocketSystem(znodir, n_sockets=n_sockets)
            run_multisocket_workload(zdev, workload)
            s = base.total_cycles() / zdev.total_cycles()
            speedups.append(s)
            table.add(f"{profile.name}", s)
            devs = sum(st.dev_invalidations for st in zdev.stats)
            assert devs == 0
    table.add("GEOMEAN", geomean(speedups), paper=0.984,
              note="paper: within 1.6% of the 1x baseline")
    return table, {"speedups": speedups}
