"""Generic parameter sweeps over system configurations.

A :class:`Sweep` runs a fixed set of workloads across a family of
configurations (one per parameter value), collecting speedups against a
reference configuration and any requested counters. The sizing example
and the ablation benches are built on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.common.config import SystemConfig
from repro.common.stats import weighted_speedup
from repro.harness.reporting import geomean
from repro.harness.runner import RunResult, run_workload
from repro.harness.system_builder import build_system
from repro.workloads.trace import Workload


@dataclass
class SweepPoint:
    """Results at one parameter value."""

    value: object
    speedups: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def geomean_speedup(self) -> float:
        return geomean(list(self.speedups.values()))


class Sweep:
    """Run ``workloads`` over ``config_for(value)`` for each value.

    Parameters
    ----------
    reference:
        The configuration all speedups are normalized to.
    config_for:
        Maps a parameter value to the configuration under test.
    counters:
        Names of :class:`SystemStats` fields to accumulate per point.
    multiprog:
        Use weighted speedup (per-core ratios) instead of makespan.
    """

    def __init__(self, reference: SystemConfig,
                 config_for: Callable[[object], SystemConfig],
                 counters: Sequence[str] = (),
                 multiprog: bool = False) -> None:
        self._reference = reference
        self._config_for = config_for
        self._counters = tuple(counters)
        self._multiprog = multiprog
        self._baselines: Dict[str, RunResult] = {}

    def _baseline(self, workload: Workload) -> RunResult:
        result = self._baselines.get(workload.name)
        if result is None:
            result = run_workload(build_system(self._reference), workload)
            self._baselines[workload.name] = result
        return result

    def run(self, values: Sequence[object],
            workloads: Sequence[Workload]) -> List[SweepPoint]:
        points = []
        for value in values:
            point = SweepPoint(value)
            config = self._config_for(value)
            for workload in workloads:
                base = self._baseline(workload)
                result = run_workload(build_system(config), workload)
                if self._multiprog:
                    speedup = weighted_speedup(base.per_core_cycles,
                                               result.per_core_cycles)
                else:
                    speedup = (base.cycles / result.cycles
                               if result.cycles else 1.0)
                point.speedups[workload.name] = speedup
                for counter in self._counters:
                    point.counters[counter] = (
                        point.counters.get(counter, 0)
                        + getattr(result.stats, counter))
            points.append(point)
        return points
