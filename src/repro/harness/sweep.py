"""Generic parameter sweeps over system configurations.

A :class:`Sweep` runs a fixed set of workloads across a family of
configurations (one per parameter value), collecting speedups against a
reference configuration and any requested counters. The sizing example
and the ablation benches are built on this.

All runs go through :func:`repro.harness.parallel.run_many`: one batch
per ``run()`` call (reference runs first, then every point), so a sweep
parallelizes across points and workloads and shares baseline runs with
any other harness user via the session result cache. Baselines are
retained as cycle summaries only -- never as live systems -- so long
sweeps do not accumulate simulator state.

Long sweeps can run fault-tolerantly: ``run(..., resume=path)`` journals
every completed run through :mod:`repro.harness.campaign` and skips
journaled runs on re-execution (bit-identical points to an
uninterrupted sweep), while ``policy=`` adds per-run timeouts and
retries. A sweep that still has failed runs after retries raises
:class:`~repro.harness.campaign.CampaignError` naming the journal to
resume from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.stats import SystemStats, weighted_speedup
from repro.harness.campaign import (CampaignJournal, CampaignPolicy,
                                    run_specs)
from repro.harness.parallel import run_many
from repro.harness.reporting import geomean
from repro.harness.system_builder import build_system  # noqa: F401  (API)
from repro.workloads.trace import Workload


@dataclass(frozen=True)
class BaselineSummary:
    """The reference-run numbers a speedup computation needs -- nothing
    else (a full RunResult used to pin a live CMPSystem per workload)."""

    total_cycles: int
    per_core_cycles: Tuple[int, ...]


@dataclass
class SweepPoint:
    """Results at one parameter value."""

    value: object
    speedups: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def geomean_speedup(self) -> float:
        return geomean(list(self.speedups.values()))

    def accumulate_counters(self, names: Sequence[str],
                            stats: SystemStats) -> None:
        """Add this run's requested counters into the point's totals."""
        for name in names:
            self.counters[name] = (self.counters.get(name, 0)
                                   + getattr(stats, name))


class Sweep:
    """Run ``workloads`` over ``config_for(value)`` for each value.

    Parameters
    ----------
    reference:
        The configuration all speedups are normalized to.
    config_for:
        Maps a parameter value to the configuration under test.
    counters:
        Names of :class:`SystemStats` fields to accumulate per point.
    multiprog:
        Use weighted speedup (per-core ratios) instead of makespan.
    jobs:
        Worker processes per batch (None: the ``REPRO_JOBS`` default).
    """

    def __init__(self, reference: SystemConfig,
                 config_for: Callable[[object], SystemConfig],
                 counters: Sequence[str] = (),
                 multiprog: bool = False,
                 jobs: Optional[int] = None) -> None:
        self._reference = reference
        self._config_for = config_for
        self._counters = tuple(counters)
        self._multiprog = multiprog
        self._jobs = jobs
        self._baselines: Dict[str, BaselineSummary] = {}

    def _run_batch(self, specs, policy, journal) -> List:
        if policy is None and journal is None:
            return run_many(specs, jobs=self._jobs)
        campaign = run_specs(specs, jobs=self._jobs, policy=policy,
                             journal=journal)
        return campaign.require_complete()

    def _ensure_baselines(self, workloads: Sequence[Workload],
                          policy: Optional[CampaignPolicy] = None,
                          journal: Optional[CampaignJournal] = None
                          ) -> None:
        missing = [w for w in workloads if w.name not in self._baselines]
        if not missing:
            return
        runs = self._run_batch([(self._reference, w) for w in missing],
                               policy, journal)
        for workload, run in zip(missing, runs):
            self._baselines[workload.name] = BaselineSummary(
                run.cycles, tuple(run.per_core_cycles))

    def _speedup(self, base: BaselineSummary, stats: SystemStats) -> float:
        if self._multiprog:
            return weighted_speedup(list(base.per_core_cycles),
                                    list(stats.cycles))
        return (base.total_cycles / stats.total_cycles
                if stats.total_cycles else 1.0)

    def plan_specs(self, values: Sequence[object],
                   workloads: Sequence[Workload]) -> List:
        """The full run list in a fixed, item-addressable order.

        Baseline (reference) runs for every workload first, then one
        run per (value, workload) pair. The job service executes these
        items individually across a worker fleet and folds them back
        with :meth:`fold_results`; duplicate runs across jobs dedupe
        through the shared content-addressed result store.
        """
        configs = [self._config_for(value) for value in values]
        return ([(self._reference, workload) for workload in workloads]
                + [(config, workload) for config in configs
                   for workload in workloads])

    def fold_results(self, values: Sequence[object],
                     workloads: Sequence[Workload],
                     results: Sequence) -> List[SweepPoint]:
        """Fold results aligned with :meth:`plan_specs` into points."""
        cursor = iter(results)
        baselines = {}
        for workload in workloads:
            run = next(cursor)
            baselines[workload.name] = BaselineSummary(
                run.cycles, tuple(run.per_core_cycles))
        points = []
        for value in values:
            point = SweepPoint(value)
            for workload in workloads:
                result = next(cursor)
                point.speedups[workload.name] = self._speedup(
                    baselines[workload.name], result.stats)
                point.accumulate_counters(self._counters, result.stats)
            points.append(point)
        return points

    def run(self, values: Sequence[object],
            workloads: Sequence[Workload],
            resume: Optional[object] = None,
            policy: Optional[CampaignPolicy] = None) -> List[SweepPoint]:
        """Collect one :class:`SweepPoint` per value.

        ``resume`` names a campaign journal (created if missing):
        completed runs are committed there and skipped when the sweep is
        re-executed after an interruption, with final points
        bit-identical to an uninterrupted sweep. ``policy`` adds per-run
        timeouts / retries (see :class:`CampaignPolicy`).
        """
        journal = None if resume is None else CampaignJournal(resume)
        try:
            self._ensure_baselines(workloads, policy, journal)
            configs = [self._config_for(value) for value in values]
            runs = self._run_batch([(config, workload)
                                    for config in configs
                                    for workload in workloads],
                                   policy, journal)
        finally:
            if journal is not None:
                journal.close()
        points = []
        cursor = iter(runs)
        for value in values:
            point = SweepPoint(value)
            for workload in workloads:
                result = next(cursor)
                base = self._baselines[workload.name]
                point.speedups[workload.name] = self._speedup(
                    base, result.stats)
                point.accumulate_counters(self._counters, result.stats)
            points.append(point)
        return points
