"""On-chip interconnect models."""

from repro.interconnect.mesh import Mesh

__all__ = ["Mesh"]
