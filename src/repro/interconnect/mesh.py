"""2D mesh interconnect model.

Table I specifies a 2D mesh with 1-cycle routing delay and 1-cycle link
latency. We model latency as ``hops * mesh_hop`` cycles with hop counts
from Manhattan distance between node coordinates, and we account traffic in
*injected bytes* (the quantity normalized in Figures 2 and 3).

Placement: cores and LLC banks are interleaved over the mesh in row-major
order, cores first. For the default 8-core, 8-bank socket on a 4x4 mesh
this gives the familiar arrangement of two rows of cores flanking two rows
of banks.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.config import LatencyConfig, MeshConfig
from repro.common.errors import ConfigError
from repro.common.messages import MessageType
from repro.common.stats import SystemStats
from repro.obs.events import EventKind


class Mesh:
    """Hop-count and traffic accounting for one socket's mesh."""

    #: Observability seam (repro.obs): None = tracing disabled.
    obs = None

    def __init__(self, config: MeshConfig, n_cores: int, n_banks: int,
                 latency: LatencyConfig, stats: SystemStats) -> None:
        n_nodes = config.width * config.height
        if n_cores + n_banks > n_nodes:
            raise ConfigError(
                f"mesh {config.width}x{config.height} has {n_nodes} nodes, "
                f"cannot place {n_cores} cores + {n_banks} banks")
        self._latency = latency
        self._stats = stats
        self._coords: Dict[Tuple[str, int], Tuple[int, int]] = {}
        placement = ([("core", i) for i in range(n_cores)]
                     + [("bank", i) for i in range(n_banks)])
        for index, node in enumerate(placement):
            self._coords[node] = (index % config.width,
                                  index // config.width)

    # ------------------------------------------------------------------
    def hops(self, src: Tuple[str, int], dst: Tuple[str, int]) -> int:
        """Manhattan hop count between two placed nodes."""
        sx, sy = self._coords[src]
        dx, dy = self._coords[dst]
        return abs(sx - dx) + abs(sy - dy)

    def core_to_bank(self, core: int, bank: int) -> int:
        return self.hops(("core", core), ("bank", bank))

    def core_to_core(self, src: int, dst: int) -> int:
        return self.hops(("core", src), ("core", dst))

    # ------------------------------------------------------------------
    def send(self, kind: MessageType, hops: int) -> int:
        """Send one message; returns its latency and accounts traffic."""
        self._stats.record_message(kind)
        if self.obs is not None:
            self.obs.emit(EventKind.MSG, cause=kind.name)
        return hops * self._latency.mesh_hop

    def send_core_to_bank(self, kind: MessageType, core: int,
                          bank: int) -> int:
        return self.send(kind, self.core_to_bank(core, bank))

    def send_bank_to_core(self, kind: MessageType, bank: int,
                          core: int) -> int:
        return self.send(kind, self.core_to_bank(core, bank))

    def send_core_to_core(self, kind: MessageType, src: int,
                          dst: int) -> int:
        return self.send(kind, self.core_to_core(src, dst))
