"""Multi-socket system: home-based socket-level MESI (Section III-D).

:class:`MultiSocketSystem` composes several single-socket systems (baseline
or ZeroDEV) behind the ``memory_side`` seam of
:class:`~repro.coherence.protocol.CMPSystem`. Each block has a *home*
socket whose memory backs it and whose socket-level directory entry tracks
which sockets hold copies -- using the paper's solution 1 (a directory
cache backed in home memory, so socket-level entries are never lost and
never generate DEVs).

ZeroDEV extensions implemented here:

* ``WB_DE``: an intra-socket entry evicted from a socket's LLC is written
  into the per-socket segment of the home memory block (Figure 14),
  including the read-modify-write when another socket's segment is
  already live. The block's memory image becomes *corrupted*.
* Socket misses to corrupted blocks (Figure 15): forward to a sharer
  socket ``F``; if ``F`` cannot find its intra-socket entry (it is housed
  at the home), ``F`` answers ``DENF_NACK`` and the home re-forwards the
  request together with the entry extracted from memory.
* ``GET_DE`` / entry write-back for evictions (Figure 16) arrive through
  the per-socket seams and are costed against the home memory.
* Restore: when the system-wide last copy of a corrupted block is
  evicted, the block is retrieved from the evicting socket and written
  over the housed entries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.caches.block import MESI
from repro.coherence.entry import DirectoryEntry, DirState
from repro.coherence.protocol import CMPSystem
from repro.coherence.shadow import ShadowMemory
from repro.common.config import Protocol, SystemConfig
from repro.common.errors import ConfigError, ProtocolInvariantError
from repro.common.messages import MessageType as MT
from repro.common.stats import SystemStats
from repro.core.housing import DirEvictBitmap
from repro.harness.system_builder import build_system
from repro.obs.events import EventKind, InvCause
from repro.workloads.trace import Op


class SocketEntry:
    """Socket-level directory entry: M/E-S-I plus the corrupted marker."""

    __slots__ = ("state", "owner", "sharers")

    def __init__(self, state: DirState, owner: Optional[int],
                 sharers: int) -> None:
        self.state = state
        self.owner = owner
        self.sharers = sharers

    def is_sharer(self, socket: int) -> bool:
        return bool(self.sharers >> socket & 1)

    def sharer_sockets(self):
        bits, socket = self.sharers, 0
        while bits:
            if bits & 1:
                yield socket
            bits >>= 1
            socket += 1

    def add(self, socket: int) -> None:
        self.sharers |= 1 << socket

    def remove(self, socket: int) -> None:
        self.sharers &= ~(1 << socket)
        if self.owner == socket:
            self.owner = None

    @property
    def empty(self) -> bool:
        return self.sharers == 0


class MultiSocketSystem:
    """Several sockets behind one socket-level coherence layer."""

    #: Observability seam (repro.obs): None = tracing disabled.
    obs = None
    #: Seeded-mutation seam (repro.verify.mutations): names of armed
    #: protocol mutations. Empty on every real run; the verify layer
    #: arms these to prove its checkers catch the seeded bug.
    mutations: frozenset = frozenset()

    def __init__(self, config: SystemConfig, n_sockets: int = 4,
                 dir_cache_blocks: int = 4096,
                 dir_solution: int = 1) -> None:
        """``dir_solution`` selects how socket-level directory entries
        survive directory-cache eviction (Section III-D5): solution 1
        backs the whole directory in home memory (a cache miss costs one
        memory read); solution 2 houses the evicted entry in the memory
        block's reserved partition and keeps one DirEvict bit per block,
        served by a small on-chip bit cache (constant 0.2% DRAM
        overhead). Both are latency models here -- entries are never
        lost and never generate DEVs either way."""
        if config.protocol not in (Protocol.BASELINE, Protocol.ZERODEV):
            raise ConfigError(
                "multi-socket evaluation supports baseline and ZeroDEV")
        if dir_solution not in (1, 2):
            raise ConfigError("dir_solution must be 1 or 2")
        self.config = config
        self.n_sockets = n_sockets
        self.sockets: List[CMPSystem] = []
        shadow = ShadowMemory()
        for node in range(n_sockets):
            socket = build_system(config)
            socket.shadow = shadow
            socket.node_id = node
            socket.memory_side = self
            self.sockets.append(socket)
        self.shadow = shadow
        self._link = config.latency.socket_link
        self._entries: Dict[int, SocketEntry] = {}
        self._garbage: set = set()
        self._dram_version: Dict[int, int] = {}
        self._dir_cache: "OrderedDict[int, None]" = OrderedDict()
        self._dir_cache_blocks = dir_cache_blocks
        self._dir_solution = dir_solution
        self._dir_evict_bits = DirEvictBitmap()
        self.denf_nacks = 0
        self.restores = 0
        self.socket_invalidations = 0

    # ------------------------------------------------------------------
    def home_of(self, block: int) -> int:
        return block % self.n_sockets

    def access(self, socket: int, core: int, op: Op, address: int) -> int:
        return self.sockets[socket].access(core, op, address)

    @property
    def stats(self) -> List[SystemStats]:
        return [socket.stats for socket in self.sockets]

    def total_cycles(self) -> int:
        return max(socket.stats.total_cycles for socket in self.sockets)

    # ------------------------------------------------------------------
    # Socket-level directory cache (solution 1: backed in home memory)
    # ------------------------------------------------------------------
    def _dir_lookup_latency(self, block: int) -> int:
        """Directory-cache hit is free at this granularity; a miss costs
        the solution-specific backing lookup (never an invalidation)."""
        cache = self._dir_cache
        if block in cache:
            cache.move_to_end(block)
            return 0
        evicted = None
        if len(cache) >= self._dir_cache_blocks:
            evicted, _ = cache.popitem(last=False)
        cache[block] = None
        home = self.sockets[self.home_of(block)]
        if self._dir_solution == 1:
            # The full directory is backed in home memory: one read.
            return home.dram.read(block)
        # Solution 2: the evicted entry went into the block's reserved
        # partition; record its DirEvict bit, then on a miss consult the
        # bit (cheap when the bit-group is in the 8 KB bit cache) and
        # read the home block only when the bit is set.
        if evicted is not None:
            self._dir_evict_bits.set(evicted)
        bit_set, bit_cached = self._dir_evict_bits.test(block)
        latency = 0 if bit_cached else home.dram.read(block)
        if bit_set:
            latency += home.dram.read(block)
            self._dir_evict_bits.clear(block)
        return latency

    def _link_latency(self, src: int, dst: int) -> int:
        return 0 if src == dst else self._link

    def _record(self, socket: CMPSystem, kind: MT, src: int,
                dst: int) -> None:
        if src != dst:
            socket.stats.record_message(kind)

    # ------------------------------------------------------------------
    # memory_side interface: demand fetch
    # ------------------------------------------------------------------
    def fetch(self, socket: CMPSystem, block: int, exclusive: bool
              ) -> Tuple[int, int, bool]:
        """Resolve a socket miss; returns (latency, version,
        exclusive_ok)."""
        requester = socket.node_id
        home_id = self.home_of(block)
        home = self.sockets[home_id]
        kind = MT.SOCKET_GETX if exclusive else MT.SOCKET_GETS
        self._record(socket, kind, requester, home_id)
        latency = self._link_latency(requester, home_id)
        latency += self._dir_lookup_latency(block)
        entry = self._entries.get(block)

        if entry is None or entry.empty:
            # Step 2 of Figure 15: baseline flow from home memory.
            if block in self._garbage:
                raise ProtocolInvariantError(
                    f"corrupted block {block:#x} has no socket sharers")
            latency += home.dram.read(block)
            version = self._dram_version.get(block, 0)
            self._entries[block] = SocketEntry(
                DirState.ME, requester, 1 << requester)
            self._record(socket, MT.SOCKET_DATA, home_id, requester)
            latency += self._link_latency(home_id, requester)
            return latency, version, True

        if entry.state is DirState.ME:
            owner_id = entry.owner
            assert owner_id is not None and owner_id != requester
            latency += self._link_latency(home_id, owner_id)
            if exclusive:
                version = self._socket_invalidate(owner_id, block)
                entry.state = DirState.ME
                entry.owner = requester
                entry.sharers = 1 << requester
            else:
                version = self._socket_downgrade(owner_id, block)
                entry.state = DirState.S
                entry.owner = None
                entry.add(requester)
                if block not in self._garbage:
                    # Socket-level M->S writes the data home, keeping
                    # memory a valid backing for the shared copies.
                    home.dram.write(block)
                    self._dram_version[block] = version
            self._record(socket, MT.SOCKET_DATA, owner_id, requester)
            latency += self._link_latency(owner_id, requester)
            return latency, version, exclusive

        # Socket-level S state.
        if exclusive:
            version = None
            for sharer in list(entry.sharer_sockets()):
                latency = max(latency, self._link_latency(home_id, sharer)
                              + self._link_latency(sharer, requester))
                v = self._socket_invalidate(sharer, block)
                if v is not None:
                    version = v if version is None else max(version, v)
            if version is None:
                version = self._dram_version.get(block, 0)
            entry.state = DirState.ME
            entry.owner = requester
            entry.sharers = 1 << requester
            return latency, version, True

        # skip-denf-nack seeded bug: a corrupted shared block is treated
        # as a normal home-memory read, so the requester is served the
        # garbage/stale image instead of the Figure 15 forward (the
        # shadow oracle flags the stale load value).
        if block in self._garbage and \
                "skip-denf-nack" not in self.mutations:
            latency += self._forward_corrupted_read(socket, block, entry,
                                                    home_id)
            version = self._serve_from_sharer(entry, block, requester)
        else:
            latency += home.dram.read(block)
            version = self._dram_version.get(block, 0)
            self._record(socket, MT.SOCKET_DATA, home_id, requester)
            latency += self._link_latency(home_id, requester)
        entry.add(requester)
        return latency, version, False

    def _forward_corrupted_read(self, socket: CMPSystem, block: int,
                                entry: SocketEntry, home_id: int) -> int:
        """Figure 15 steps 4-11: forward to a sharer socket, handling the
        DENF_NACK resend when its intra-socket entry is housed at home."""
        requester = socket.node_id
        forward_id = next(s for s in entry.sharer_sockets()
                          if s != requester)
        forward = self.sockets[forward_id]
        latency = self._link_latency(home_id, forward_id)
        self._record(socket, MT.FWD_GETS, home_id, forward_id)
        # A housed entry lives at the *home's* memory: socket F cannot
        # see it, so the in-socket lookup decides the DENF_NACK path.
        found = forward._lookup_in_socket(block)  # noqa: SLF001
        if found is None:
            # Step 7: F cannot find the entry -- it is housed at home.
            self.denf_nacks += 1
            if self.obs is not None:
                self.obs.emit(EventKind.DENF_NACK, block=block,
                              cause=f"socket{forward_id}")
            self._record(socket, MT.DENF_NACK, forward_id, home_id)
            latency += self._link_latency(forward_id, home_id)
            home = self.sockets[home_id]
            latency += home.dram.read(block)        # extract F's segment
            self._record(socket, MT.FWD_WITH_DE, home_id, forward_id)
            latency += self._link_latency(home_id, forward_id)
        latency += self._link_latency(forward_id, requester)
        self._record(socket, MT.SOCKET_DATA_CORRUPTED, forward_id,
                     requester)
        return latency

    def _serve_from_sharer(self, entry: SocketEntry, block: int,
                           requester: int) -> int:
        for sharer in entry.sharer_sockets():
            if sharer == requester:
                continue
            version = self._socket_peek_version(sharer, block)
            if version is not None:
                return version
        raise ProtocolInvariantError(
            f"no sharer socket can supply block {block:#x}")

    # ------------------------------------------------------------------
    # memory_side interface: exclusivity, writebacks, presence
    # ------------------------------------------------------------------
    def exclusive_grant_ok(self, socket: CMPSystem, block: int) -> bool:
        """An E grant from a local LLC hit is only legal when this socket
        is the sole holder; a sole S-sharer is promoted to socket-level
        M/E on the spot (no other copies exist to invalidate)."""
        entry = self._entries.get(block)
        node = socket.node_id
        if entry is None or entry.empty:
            return True
        if entry.sharers == 1 << node:
            entry.state = DirState.ME
            entry.owner = node
            return True
        return False

    def acquire_exclusive(self, socket: CMPSystem, block: int) -> int:
        requester = socket.node_id
        entry = self._entries.get(block)
        if entry is None:
            raise ProtocolInvariantError(
                f"socket {requester} holds untracked block {block:#x}")
        others = [s for s in entry.sharer_sockets() if s != requester]
        if not others:
            entry.state = DirState.ME
            entry.owner = requester
            return 0
        home_id = self.home_of(block)
        latency = self._link_latency(requester, home_id)
        latency += self._dir_lookup_latency(block)
        worst = 0
        for sharer in others:
            self._record(socket, MT.INV, home_id, sharer)
            self._record(socket, MT.INV_ACK, sharer, requester)
            worst = max(worst, self._link_latency(home_id, sharer)
                        + self._link_latency(sharer, requester))
            self._socket_invalidate(sharer, block)
        entry.state = DirState.ME
        entry.owner = requester
        entry.sharers = 1 << requester
        return latency + worst

    def writeback(self, socket: CMPSystem, block: int,
                  version: int) -> None:
        """A socket wrote back dirty data for ``block``."""
        home = self.sockets[self.home_of(block)]
        self._record(socket, MT.WRITEBACK, socket.node_id,
                     self.home_of(block))
        entry = self._entries.get(block)
        others = (entry is not None
                  and any(s != socket.node_id
                          for s in entry.sharer_sockets()))
        if block in self._garbage and others:
            # Writing would destroy another socket's housed entry; the
            # data stays cached at the sharers (Section III-D3 keeps
            # corrupted blocks served by forwarding).
            return
        home.dram.write(block)
        self._dram_version[block] = version
        if block in self._garbage:
            self._garbage.discard(block)
            self._heal_socket_housings(block)

    def _heal_socket_housings(self, block: int) -> None:
        """Real data reached home memory: every socket's segment of the
        block is overwritten, so per-socket corrupted-bitmap entries must
        drop too (they would otherwise stay set forever -- the count
        never returning to zero). A socket still *housing* an entry here
        would mean the write destroyed a live entry; ``heal`` raises."""
        for socket in self.sockets:
            housing = getattr(socket, "_housing", None)
            if housing is not None and housing.is_garbage(block):
                housing.heal(block)

    def presence_lost(self, socket: CMPSystem, block: int,
                      version: int) -> None:
        """The last copy of ``block`` left ``socket``."""
        node = socket.node_id
        entry = self._entries.get(block)
        if entry is None or not entry.is_sharer(node):
            return
        self._record(socket, MT.SOCKET_EVICT, node, self.home_of(block))
        entry.remove(node)
        if not entry.empty:
            return
        del self._entries[block]
        if block in self._garbage:
            if "skip-socket-restore" in self.mutations:
                # Seeded bug: the system-wide last copy of a corrupted
                # block leaves and the socket-level Section III-D4
                # restore is dropped -- home memory keeps entry bits
                # with no sharer left to serve the block.
                return
            # System-wide last copy of a corrupted block: retrieve it
            # from the evicting socket and heal home memory.
            self.restores += 1
            if self.obs is not None:
                self.obs.emit(EventKind.MEM_RESTORE, block=block,
                              cause=InvCause.SOCKET)
            self._record(socket, MT.SOCKET_RESTORE, node,
                         self.home_of(block))
            home = self.sockets[self.home_of(block)]
            home.dram.write(block)
            self._dram_version[block] = version
            self._garbage.discard(block)
            self._heal_socket_housings(block)
            socket.stats.corrupted_blocks_restored += 1

    # ------------------------------------------------------------------
    # memory_side interface: ZeroDEV entry housing
    # ------------------------------------------------------------------
    def entry_read(self, socket: CMPSystem, block: int) -> int:
        home_id = self.home_of(block)
        self._record(socket, MT.GET_DE, socket.node_id, home_id)
        self._record(socket, MT.DE_DATA, home_id, socket.node_id)
        latency = 2 * self._link_latency(socket.node_id, home_id)
        return latency + self.sockets[home_id].dram.read(block)

    def entry_write(self, socket: CMPSystem, entry: DirectoryEntry) -> int:
        """WB_DE / housed-entry update (Figure 14)."""
        block = entry.block
        home_id = self.home_of(block)
        home = self.sockets[home_id]
        self._record(socket, MT.WB_DE, socket.node_id, home_id)
        latency = self._link_latency(socket.node_id, home_id)
        others_housed = any(
            other._housing.peek(block) is not None  # noqa: SLF001
            for other in self.sockets
            if other is not socket and hasattr(other, "_housing"))
        if block in self._garbage and others_housed:
            # Another socket's segment is live: read-modify-write.
            latency += home.dram.read(block)
        latency += home.dram.write(block, from_entry_eviction=True)
        if self.obs is not None:
            self.obs.emit(EventKind.ENTRY_WB_DE, block=block,
                          cause=InvCause.SOCKET)
        self._garbage.add(block)
        return latency

    def is_garbage(self, block: int) -> bool:
        return block in self._garbage

    # ------------------------------------------------------------------
    # Operations executed inside a remote socket
    # ------------------------------------------------------------------
    def _socket_invalidate(self, node: int, block: int) -> Optional[int]:
        """Remove every copy of ``block`` from socket ``node``; returns
        the freshest version found (None if the socket had nothing)."""
        target = self.sockets[node]
        bank = target.bank_of(block)
        version: Optional[int] = None
        entry = target._peek_entry(block)  # noqa: SLF001
        if entry is not None:
            for core in list(entry.sharer_cores()):
                self.socket_invalidations += 1
                line = target.cores[core].invalidate(
                    block, cause=InvCause.SOCKET)
                assert line is not None
                version = (line.version if version is None
                           else max(version, line.version))
                entry.remove_sharer(core)
            target._free_entry(entry, bank)  # noqa: SLF001
        llc_line = bank.peek_data(block)
        if llc_line is not None:
            bank.remove(llc_line)
            version = (llc_line.version if version is None
                       else max(version, llc_line.version))
        return version

    def _socket_downgrade(self, node: int, block: int) -> int:
        """Demote socket ``node``'s exclusive copy to shared; returns the
        current version.

        Uses the promoting entry lookup: a housed entry is re-cached in
        the socket before its block data re-enters the socket's LLC,
        preserving the case-(iiib) invariant of Section III-D2.
        """
        target = self.sockets[node]
        bank = target.bank_of(block)
        entry, _ = target._find_entry(block)  # noqa: SLF001
        if entry is not None and entry.state is DirState.ME:
            owner = entry.owner
            assert owner is not None
            line = target.cores[owner].downgrade_to_s(block)
            old_state = entry.state
            entry.make_shared()
            target._entry_state_changed(entry, old_state, bank)  # noqa: SLF001
            target._install_llc_data(bank, block, line.version,  # noqa: SLF001
                                     dirty=True)
            return line.version
        version = self._socket_peek_version(node, block)
        if version is None:
            raise ProtocolInvariantError(
                f"socket {node} cannot downgrade block {block:#x} it "
                "does not hold")
        return version

    def _socket_peek_version(self, node: int, block: int) -> Optional[int]:
        target = self.sockets[node]
        entry = target._peek_entry(block)  # noqa: SLF001
        if entry is not None:
            for core in entry.sharer_cores():
                line = target.cores[core].line_of(block)
                if line is not None:
                    return line.version
        llc_line = target.bank_of(block).peek_data(block)
        if llc_line is not None and llc_line.kind.value == "data":
            return llc_line.version
        return None

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        for socket in self.sockets:
            socket.check_invariants()
        owners: Dict[int, List[int]] = {}
        for socket in self.sockets:
            for core in range(socket.config.n_cores):
                for block in socket.cores[core].cached_blocks():
                    state = socket.cores[core].probe(block)
                    if state is not MESI.S:
                        owners.setdefault(block, []).append(
                            socket.node_id)
        for block, holders in owners.items():
            entry = self._entries.get(block)
            if entry is None:
                raise ProtocolInvariantError(
                    f"owned block {block:#x} untracked at socket level")
            if entry.state is not DirState.ME or len(set(holders)) > 1:
                raise ProtocolInvariantError(
                    f"socket-level SWMR violated for block {block:#x}")
        # Corrupted-bitmap consistency: a socket-local garbage bit means
        # the socket's segment of home memory holds entry bits, which is
        # only possible while the home image is corrupted system-wide;
        # and a corrupted block must still have socket sharers to serve
        # reads from (else it should have been restored).
        for socket in self.sockets:
            housing = getattr(socket, "_housing", None)
            if housing is None:
                continue
            for block in housing.garbage_blocks():
                if block not in self._garbage:
                    raise ProtocolInvariantError(
                        f"socket {socket.node_id} marks block {block:#x} "
                        "corrupted but home memory is clean")
        for block in self._garbage:
            entry = self._entries.get(block)
            if entry is None or entry.empty:
                raise ProtocolInvariantError(
                    f"corrupted block {block:#x} has no socket sharers")
