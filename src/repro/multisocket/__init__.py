"""Multi-socket composition: socket-level MESI with ZeroDEV extensions."""

from repro.multisocket.system import MultiSocketSystem, SocketEntry

__all__ = ["MultiSocketSystem", "SocketEntry"]
