"""Directory entries and their locations.

A directory entry tracks all private copies of one block: the merged M/E
versus S distinction (the directory cannot tell M from E, footnote 2 of the
paper) plus a full-map sharer bit-vector and, for owned blocks, the owner
core. Under ZeroDEV an entry moves through up to four homes during its
life -- the sparse directory, an LLC frame (fused or spilled), and finally
the home memory block -- tracked by :class:`EntryLocation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.common.errors import ProtocolInvariantError


class DirState(enum.Enum):
    """Stable directory states (M and E are merged at the directory)."""

    ME = "M/E"
    S = "S"


class EntryLocation(enum.Enum):
    """Where a directory entry currently lives (exactly one place)."""

    SPARSE = "sparse"
    LLC_FUSED = "llc-fused"
    LLC_SPILLED = "llc-spilled"
    MEMORY = "memory"


@dataclass
class DirectoryEntry:
    """Coherence-tracking record for one privately cached block."""

    block: int
    state: DirState
    owner: Optional[int] = None
    sharers: int = 0                  # full-map bit-vector over cores
    location: EntryLocation = EntryLocation.SPARSE
    nru_ref: bool = True              # 1-bit NRU metadata (sparse dir)

    def __post_init__(self) -> None:
        if self.state is DirState.ME:
            if self.owner is None:
                raise ProtocolInvariantError(
                    f"M/E entry for block {self.block:#x} has no owner")
            self.sharers |= 1 << self.owner

    # ------------------------------------------------------------------
    @property
    def sharer_count(self) -> int:
        return bin(self.sharers).count("1")

    @property
    def empty(self) -> bool:
        """True once no private copy remains (entry can be freed)."""
        return self.sharers == 0

    def is_sharer(self, core: int) -> bool:
        return bool(self.sharers >> core & 1)

    def sharer_cores(self) -> Iterator[int]:
        """Yield the cores currently holding a copy, lowest id first."""
        bits = self.sharers
        core = 0
        while bits:
            if bits & 1:
                yield core
            bits >>= 1
            core += 1

    def any_sharer(self, exclude: Optional[int] = None) -> int:
        """An elected sharer (FuseAll read forwarding, Section III-C3)."""
        for core in self.sharer_cores():
            if core != exclude:
                return core
        raise ProtocolInvariantError(
            f"entry for block {self.block:#x} has no sharer to elect")

    # ------------------------------------------------------------------
    def add_sharer(self, core: int) -> None:
        self.sharers |= 1 << core

    def remove_sharer(self, core: int) -> None:
        if not self.is_sharer(core):
            raise ProtocolInvariantError(
                f"core {core} is not a sharer of block {self.block:#x}")
        self.sharers &= ~(1 << core)
        if self.owner == core:
            self.owner = None

    def make_owned(self, core: int) -> None:
        """Transition to M/E with ``core`` as the only copy-holder."""
        self.state = DirState.ME
        self.owner = core
        self.sharers = 1 << core

    def make_shared(self) -> None:
        """Transition to S (owner downgraded or read-shared fill)."""
        self.state = DirState.S
        self.owner = None

    # ------------------------------------------------------------------
    def storage_bits(self, n_cores: int) -> int:
        """Stable-state storage: N sharer bits + 1 state bit (Sec III-D)."""
        return n_cores + 1
