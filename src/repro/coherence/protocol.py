"""The baseline intra-socket coherence protocol (Section III-A).

One :class:`CMPSystem` models a socket: per-core private L1/L2 caches, a
banked shared LLC, a sparse directory slice beside each bank, a write-
invalidate MESI protocol with three-hop owner forwarding, eviction notices
for every private eviction, and -- the phenomenon this paper is about --
**directory eviction victims** (DEVs): private copies invalidated because
their sparse-directory entry was evicted.

Coherence transactions execute atomically in global order (see DESIGN.md
Section 2): the message sequences and their latency/traffic costs follow
the paper's protocol, while transient-race interleavings are serialized.
Data correctness is continuously verified against a shadow memory.

Subclasses (ZeroDEV in ``repro.core``, SecDir/MgD in ``repro.baselines``)
specialize the protected hook methods: entry lookup/allocation/free, LLC
victim handling, and the shared-read critical path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.caches.block import LLCLine, LineKind, MESI
from repro.caches.llc import LLCBank
from repro.caches.private_cache import EvictionNotice, PrivateHierarchy
from repro.coherence.directory import SparseDirectory
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.coherence.shadow import ShadowMemory
from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import LLCDesign, Protocol, SystemConfig
from repro.common.errors import ProtocolInvariantError
from repro.common.messages import MessageType as MT
from repro.common.stats import SystemStats
from repro.dram.model import DramModel
from repro.interconnect.mesh import Mesh
from repro.obs.events import EventKind, InvCause
from repro.workloads.trace import Op


class CMPSystem:
    """One socket running the baseline sparse-directory MESI protocol."""

    #: Which Protocol enum value this class implements (sanity check).
    PROTOCOL = Protocol.BASELINE

    #: Seeded-mutation seam (repro.verify.mutations): names of armed
    #: protocol mutations. Empty on every real run; the verify layer
    #: arms these to prove its checkers catch the seeded bug.
    mutations: frozenset = frozenset()

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.stats = SystemStats(config.n_cores)
        #: Observability seam (repro.obs): None = tracing disabled, set
        #: to an EventBus by repro.obs.trace.attach for traced runs.
        self.obs = None
        self.shadow = ShadowMemory()
        self.mesh = Mesh(config.mesh, config.n_cores, config.llc_banks,
                         config.latency, self.stats)
        self.dram = DramModel(config.dram, self.stats)
        self.cores = [
            PrivateHierarchy(i, config.l1i, config.l1d, config.l2)
            for i in range(config.n_cores)
        ]
        self.banks = [
            LLCBank(b, config.llc_bank_sets, config.llc.ways,
                    config.llc_replacement, config.llc_banks)
            for b in range(config.llc_banks)
        ]
        self.directory = self._build_directory()
        self._dram_version = {}
        self._bank_mask = config.llc_banks - 1
        self._lat = config.latency
        #: Multi-socket composition seam: when set (by MultiSocketSystem),
        #: memory-side operations route through the inter-socket layer.
        self.memory_side = None
        self.node_id = 0

    def _build_directory(self) -> Optional[SparseDirectory]:
        dcfg = self.config.directory
        if not dcfg.present:
            return None
        return SparseDirectory(
            self.config.directory_entries, dcfg.ways,
            unbounded=dcfg.unbounded,
            replacement_disabled=dcfg.replacement_disabled)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def access(self, core: int, op: Op, address: int) -> int:
        """Execute one memory reference; returns its core-visible latency
        in cycles and advances the core's local clock."""
        block = address >> BLOCK_SHIFT
        if op is Op.WRITE:
            latency = self._write(core, block)
        else:
            latency = self._read(core, block, code=op is Op.IFETCH)
        self.stats.record_latency(op is Op.WRITE, latency)
        self.stats.advance_core(core,
                                latency + self._lat.compute_per_access)
        return latency

    def bank_of(self, block: int) -> LLCBank:
        return self.banks[block & self._bank_mask]

    # ------------------------------------------------------------------
    # Core-side paths
    # ------------------------------------------------------------------
    def _read(self, core: int, block: int, code: bool) -> int:
        hier = self.cores[core]
        level = hier.read_hit_level(block, code)
        if level == "l1":
            self.stats.l1_hits += 1
            return self._lat.l1_hit
        if level == "l2":
            self.stats.l2_hits += 1
            return self._lat.l1_hit + self._lat.l2_hit
        latency, version = self._gets(core, block, code)
        if self.config.check_data:
            self.shadow.check_read(block, version, "GETS response")
        # The OOO window hides part of the uncore latency (MLP).
        exposed = max(1, int(latency
                             * self._lat.load_visibility_fraction))
        return self._lat.l1_hit + self._lat.l2_hit + exposed

    def _write(self, core: int, block: int) -> int:
        hier = self.cores[core]
        state = hier.write_hit_state(block)
        if state is not None and state is not MESI.S:
            # M hit, or silent E->M transition.
            latency = self._lat.l1_hit
        elif state is MESI.S:
            self.stats.l2_hits += 1
            self.stats.upgrades += 1
            latency = (self._lat.l1_hit + self._lat.l2_hit
                       + self._upgrade(core, block))
        else:
            latency = (self._lat.l1_hit + self._lat.l2_hit
                       + self._getx(core, block))
        version = self.shadow.commit_write(block)
        hier.commit_write(block, version)
        # Stores drain through the store buffer; only a fraction of the
        # miss latency is exposed on the critical path.
        exposed = self._lat.store_visibility_fraction
        return max(1, int(latency * exposed))

    # ------------------------------------------------------------------
    # GETS: read / instruction-fetch miss
    # ------------------------------------------------------------------
    def _gets(self, core: int, block: int, code: bool
              ) -> Tuple[int, int]:
        """Service a core read miss; returns (uncore latency, version)."""
        self.stats.core_cache_misses += 1
        bank = self.bank_of(block)
        latency = self.mesh.send_core_to_bank(MT.GETS, core, bank.bank_id)
        latency += self._lat.queueing + self._lat.llc_tag
        entry, extra = self._find_entry(block)
        latency += extra
        llc_line = bank.lookup_data(block)

        if entry is not None and entry.state is DirState.ME:
            if entry.owner == core:
                raise ProtocolInvariantError(
                    f"core {core} missed on block {block:#x} it owns")
            fwd_latency, version = self._forward_gets(core, block, entry,
                                                      bank, llc_line)
            latency += fwd_latency
        elif entry is not None:
            serve_latency, version = self._shared_read(core, block, entry,
                                                       bank, llc_line)
            latency += serve_latency
            entry.add_sharer(core)
        else:
            latency, version, entry = self._fill_from_uncore(
                core, block, code, bank, llc_line, latency, exclusive=False)

        state = MESI.S if (code or entry.state is DirState.S) else MESI.E
        self._fill_private(core, block, state, version, code)
        return latency, version

    def _forward_gets(self, core: int, block: int, entry: DirectoryEntry,
                      bank: LLCBank, llc_line: Optional[LLCLine]
                      ) -> Tuple[int, int]:
        """Three-hop read: home forwards to the owner, owner responds."""
        owner = entry.owner
        assert owner is not None
        self.stats.forwarded_requests += 1
        owner_line = self.cores[owner].line_of(block)
        if owner_line is None:
            raise ProtocolInvariantError(
                f"directory says core {owner} owns block {block:#x} but "
                "it holds no copy")
        was_dirty = owner_line.state is MESI.M
        latency = self.mesh.send(
            MT.FWD_GETS, self.mesh.core_to_bank(owner, bank.bank_id))
        latency += self._lat.l2_hit
        latency += self.mesh.send_core_to_core(MT.DATA, owner, core)
        line = self.cores[owner].downgrade_to_s(block)
        version = line.version
        # Busy-clear back to home; dirty data is written through to the
        # LLC so the shared copy has a safe backing (off critical path).
        self.mesh.send(MT.WRITEBACK if was_dirty else MT.BUSY_CLEAR,
                       self.mesh.core_to_bank(owner, bank.bank_id))
        old_state = entry.state
        entry.make_shared()
        entry.add_sharer(core)
        self._entry_state_changed(entry, old_state, bank)
        self._install_llc_data(bank, block, version, dirty=was_dirty)
        return latency, version

    def _shared_read(self, core: int, block: int, entry: DirectoryEntry,
                     bank: LLCBank, llc_line: Optional[LLCLine]
                     ) -> Tuple[int, int]:
        """Read of a block in directory state S."""
        usable, penalty = self._llc_serves_shared_read(entry, llc_line,
                                                       bank)
        if usable:
            assert llc_line is not None
            self.stats.llc_data_hits += 1
            latency = penalty + self._lat.llc_data
            latency += self.mesh.send_bank_to_core(MT.DATA, bank.bank_id,
                                                   core)
            return latency, llc_line.version
        # Block not (usably) in the LLC: forward to an elected sharer,
        # which responds directly (three hops), and refresh the LLC copy.
        self.stats.llc_data_misses += 1
        self.stats.llc_read_misses += 1
        self.stats.forwarded_requests += 1
        sharer = entry.any_sharer(exclude=core)
        sharer_line = self.cores[sharer].line_of(block)
        if sharer_line is None:
            raise ProtocolInvariantError(
                f"directory lists core {sharer} for block {block:#x} but "
                "it holds no copy")
        latency = penalty + self.mesh.send(
            MT.FWD_GETS, self.mesh.core_to_bank(sharer, bank.bank_id))
        latency += self._lat.l2_hit
        latency += self.mesh.send_core_to_core(MT.DATA, sharer, core)
        self.mesh.send(MT.WRITEBACK,
                       self.mesh.core_to_bank(sharer, bank.bank_id))
        self._install_llc_data(bank, block, sharer_line.version,
                               dirty=sharer_line.dirty)
        return latency, sharer_line.version

    # ------------------------------------------------------------------
    # GETX / upgrade: write misses
    # ------------------------------------------------------------------
    def _getx(self, core: int, block: int) -> int:
        """Service a write miss (read-exclusive)."""
        self.stats.core_cache_misses += 1
        bank = self.bank_of(block)
        latency = self.mesh.send_core_to_bank(MT.GETX, core, bank.bank_id)
        latency += self._lat.queueing + self._lat.llc_tag
        entry, extra = self._find_entry(block)
        latency += extra
        llc_line = bank.lookup_data(block)
        if entry is not None or (llc_line is not None
                                 and self._llc_data_usable(llc_line)):
            # The socket holds a valid copy: remote read copies (if any)
            # must be invalidated before granting ownership.
            latency += self._acquire_socket_exclusive(block)

        if entry is not None and entry.state is DirState.ME:
            if entry.owner == core:
                raise ProtocolInvariantError(
                    f"core {core} write-missed on block {block:#x} it owns")
            owner = entry.owner
            assert owner is not None
            self.stats.forwarded_requests += 1
            latency += self.mesh.send(
                MT.FWD_GETX, self.mesh.core_to_bank(owner, bank.bank_id))
            latency += self._lat.l2_hit
            latency += self.mesh.send_core_to_core(MT.DATA, owner, core)
            self.mesh.send(MT.BUSY_CLEAR,
                           self.mesh.core_to_bank(owner, bank.bank_id))
            line = self.cores[owner].invalidate(block,
                                                cause=InvCause.FWD_GETX)
            assert line is not None
            version = line.version
            old_state = entry.state
            entry.make_owned(core)
            self._entry_state_changed(entry, old_state, bank)
        elif entry is not None:
            # Shared block: invalidate every sharer; data from the LLC if
            # usable, else combined forward+invalidate to one sharer.
            version, inv_latency = self._invalidate_sharers(
                core, block, entry, bank, llc_line, need_data=True)
            latency += inv_latency
            old_state = entry.state
            entry.make_owned(core)
            self._entry_state_changed(entry, old_state, bank)
        else:
            latency, version, entry = self._fill_from_uncore(
                core, block, code=False, bank=bank, llc_line=llc_line,
                latency=latency, exclusive=True)
        if self.config.check_data:
            self.shadow.check_read(block, version, "GETX response")
        self._block_became_owned(bank, block)
        self._fill_private(core, block, MESI.M, version, code=False)
        return latency

    def _upgrade(self, core: int, block: int) -> int:
        """S -> M permission request; the requester keeps its data."""
        bank = self.bank_of(block)
        latency = self.mesh.send_core_to_bank(MT.UPGRADE, core,
                                              bank.bank_id)
        latency += self._lat.queueing + self._lat.llc_tag
        entry, extra = self._find_entry(block)
        latency += extra
        if entry is None or not entry.is_sharer(core):
            raise ProtocolInvariantError(
                f"upgrade by core {core} on block {block:#x} without a "
                "live directory entry: a private S copy must be tracked")
        latency += self._acquire_socket_exclusive(block)
        _, inv_latency = self._invalidate_sharers(
            core, block, entry, bank, bank.lookup_data(block),
            need_data=False)
        latency += inv_latency
        latency += self.mesh.send_bank_to_core(MT.ACK, bank.bank_id, core)
        old_state = entry.state
        entry.make_owned(core)
        self._entry_state_changed(entry, old_state, bank)
        self._block_became_owned(bank, block)
        self.cores[core].set_state(block, MESI.E)   # grant; store makes M
        return latency

    def _invalidate_sharers(self, requester: int, block: int,
                            entry: DirectoryEntry, bank: LLCBank,
                            llc_line: Optional[LLCLine], need_data: bool
                            ) -> Tuple[int, int]:
        """Invalidate every sharer other than ``requester``.

        Returns (data version, critical-path latency). Acknowledgments are
        collected by the requester; the exposed latency is the slowest
        invalidation round plus the data-supply path when data is needed.
        """
        inv_path = 0
        data_version: Optional[int] = None
        victims = [c for c in entry.sharer_cores() if c != requester]
        for sharer in victims:
            self.stats.invalidations_sent += 1
            to_sharer = self.mesh.send(
                MT.INV, self.mesh.core_to_bank(sharer, bank.bank_id))
            to_requester = self.mesh.send_core_to_core(
                MT.INV_ACK, sharer, requester)
            inv_path = max(inv_path, to_sharer + self._lat.l2_hit
                           + to_requester)
            line = self.cores[sharer].invalidate(block,
                                                 cause=InvCause.GETX)
            assert line is not None
            data_version = line.version
            entry.remove_sharer(sharer)
        if not need_data:
            return 0, inv_path
        if llc_line is not None and self._llc_data_usable(llc_line):
            self.stats.llc_data_hits += 1
            data_path = (self._lat.llc_data + self.mesh.send_bank_to_core(
                MT.DATA, bank.bank_id, requester))
            return llc_line.version, max(data_path, inv_path)
        if data_version is None:
            raise ProtocolInvariantError(
                f"GETX on shared block {block:#x} with no data source")
        # Data rode along with the last invalidation acknowledgment.
        self.stats.llc_data_misses += 1
        return data_version, inv_path

    # ------------------------------------------------------------------
    # Fills from LLC or memory when no directory entry exists
    # ------------------------------------------------------------------
    def _fill_from_uncore(self, core: int, block: int, code: bool,
                          bank: LLCBank, llc_line: Optional[LLCLine],
                          latency: int, exclusive: bool
                          ) -> Tuple[int, int, DirectoryEntry]:
        """No live directory entry: serve from the LLC or main memory and
        allocate a fresh entry (the DEV-generating step in the baseline)."""
        if llc_line is not None and self._llc_data_usable(llc_line):
            self.stats.llc_data_hits += 1
            latency += self._lat.llc_data
            latency += self.mesh.send_bank_to_core(MT.DATA, bank.bank_id,
                                                   core)
            version = llc_line.version
            if not exclusive and not code and not self._exclusive_grant_ok(
                    block):
                # Other sockets hold read copies: an E grant (and its
                # silent E->M) would leave them stale -- grant S.
                code = True
        else:
            if llc_line is not None and llc_line.kind is not LineKind.DATA:
                raise ProtocolInvariantError(
                    f"block {block:#x} has an LLC entry frame but no "
                    "directory entry was found")
            self.stats.llc_data_misses += 1
            if not exclusive:
                self.stats.llc_read_misses += 1
            fetch_latency, version, exclusive_ok = self._fetch_from_memory(
                block, exclusive)
            latency += fetch_latency
            latency += self.mesh.send_bank_to_core(MT.DATA, bank.bank_id,
                                                   core)
            self._fill_llc_from_memory(bank, block, version, code)
            if not exclusive_ok:
                # Other sockets hold read copies: only an S grant is
                # legal (a silent E->M would break socket-level MESI).
                code = True
        state = DirState.S if code else DirState.ME
        owner = None if code else core
        entry = self._allocate_entry(block, state, core, owner, bank)
        if not code and self.config.llc_design is LLCDesign.EPD:
            # The block is now temporarily private: EPD de-allocates it.
            self._epd_deallocate(bank, block)
        return latency, version, entry

    def _memory_fetch_latency(self, block: int) -> int:
        """DRAM read for a demand fill (overridden for corrupted blocks)."""
        return self.dram.read(block)

    def _fetch_from_memory(self, block: int, exclusive: bool):
        """Fetch a block the socket does not have.

        Returns (latency, version, exclusive_ok): ``exclusive_ok`` tells
        whether the socket now holds the block exclusively at the system
        level (an E grant is only legal then). Locally this is a DRAM
        read; in a multi-socket system the inter-socket layer resolves it
        (home memory, or a downgrade / invalidation of remote sockets).
        """
        if self.memory_side is not None:
            return self.memory_side.fetch(self, block, exclusive)
        return (self._memory_fetch_latency(block),
                self._dram_version.get(block, 0), True)

    def _exclusive_grant_ok(self, block: int) -> bool:
        """May a local fill be granted E? Only when no other socket holds
        a copy (always true in a single-socket system)."""
        if self.memory_side is not None:
            return self.memory_side.exclusive_grant_ok(self, block)
        return True

    def _acquire_socket_exclusive(self, block: int) -> int:
        """Invalidate remote sockets' read copies before a local write.

        Only reachable when this socket already holds a valid copy, which
        rules out a remote owner -- at most remote S sharers exist.
        Returns the added critical-path latency (0 in a single socket).
        """
        if self.memory_side is not None:
            return self.memory_side.acquire_exclusive(self, block)
        return 0

    def _presence_lost(self, block: int, version: int) -> None:
        """The last copy of ``block`` left this socket (notify home)."""
        if self.memory_side is not None:
            self.memory_side.presence_lost(self, block, version)

    def _fill_llc_from_memory(self, bank: LLCBank, block: int,
                              version: int, code: bool) -> None:
        """Demand fills allocate in the LLC -- except data fills in EPD."""
        if self.config.llc_design is LLCDesign.EPD and not code:
            return
        self._install_llc_data(bank, block, version, dirty=False)

    # ------------------------------------------------------------------
    # LLC management
    # ------------------------------------------------------------------
    def _llc_data_usable(self, llc_line: LLCLine) -> bool:
        """Can this frame supply data? Fused frames are corrupted."""
        return llc_line.kind is LineKind.DATA

    def _llc_serves_shared_read(self, entry: DirectoryEntry,
                                llc_line: Optional[LLCLine],
                                bank: LLCBank) -> Tuple[bool, int]:
        """Hook: can the LLC serve a read to this shared block, and at
        what extra critical-path cost? (ZeroDEV policies override.)"""
        if llc_line is None or not self._llc_data_usable(llc_line):
            return False, 0
        return True, 0

    def _install_llc_data(self, bank: LLCBank, block: int, version: int,
                          dirty: bool) -> None:
        """Allocate or refresh the LLC copy of ``block``."""
        line = bank.lookup_data(block, touch=False)
        if line is not None:
            line.version = version
            line.dirty = line.dirty or dirty
            if line.kind is LineKind.FUSED:
                self._data_arrived_at_fused(bank, line)
            return
        victim = bank.insert(LLCLine(block, LineKind.DATA, dirty=dirty,
                                     version=version))
        if victim is not None:
            self._handle_llc_victim(bank, victim)
        self._data_allocated(bank, block)

    def _epd_deallocate(self, bank: LLCBank, block: int) -> None:
        line = bank.lookup_data(block, touch=False)
        if line is None:
            return
        if line.kind is not LineKind.DATA:
            raise ProtocolInvariantError(
                f"EPD de-allocation of block {block:#x} found a "
                f"{line.kind.value} frame")
        if line.dirty:
            # The owner has (or is about to produce) a newer version; the
            # LLC copy is redundant but must not be silently lost if it is
            # the only clean backing. Writing it back keeps memory sound.
            self._writeback_to_memory(line)
        bank.remove(line)

    def _block_became_owned(self, bank: LLCBank, block: int) -> None:
        """Hook called when a block transitions to M/E (EPD de-allocates;
        ZeroDEV FPSS re-locates a spilled entry into fused form)."""
        if self.config.llc_design is LLCDesign.EPD:
            self._epd_deallocate(bank, block)

    def _data_arrived_at_fused(self, bank: LLCBank, line: LLCLine) -> None:
        """Hook: fresh data written into a frame holding a fused entry."""
        # Baseline never has fused frames.
        raise ProtocolInvariantError("fused frame in baseline protocol")

    def _data_allocated(self, bank: LLCBank, block: int) -> None:
        """Hook called after a new DATA frame is installed (FuseAll uses
        this to re-fuse a spilled entry with its returning block)."""

    def _writeback_to_memory(self, line: LLCLine) -> None:
        self.stats.llc_writebacks_to_dram += 1
        if self.memory_side is not None:
            self.memory_side.writeback(self, line.block, line.version)
            return
        self.dram.write(line.block)
        self._dram_version[line.block] = line.version
        self._memory_healed(line.block)

    def _memory_healed(self, block: int) -> None:
        """Hook: a real-data DRAM write un-corrupts the home block."""

    def _handle_llc_victim(self, bank: LLCBank, victim: LLCLine) -> None:
        """Process an LLC replacement victim (baseline: plain writeback;
        inclusive design adds back-invalidation)."""
        self.stats.llc_evictions += 1
        if victim.kind is not LineKind.DATA:
            raise ProtocolInvariantError(
                "baseline LLC should never hold directory-entry frames")
        if self.config.llc_design is LLCDesign.INCLUSIVE:
            self._back_invalidate(bank, victim)
        if victim.dirty:
            self._writeback_to_memory(victim)
        if self._peek_entry(victim.block) is None:
            # The LLC copy was the socket's last: tell the home socket.
            self._presence_lost(victim.block, victim.version)

    def _back_invalidate(self, bank: LLCBank, victim: LLCLine) -> None:
        """Inclusive LLC: evicting a block invalidates private copies."""
        entry, _ = self._find_entry(victim.block)
        if entry is None:
            return
        for sharer in list(entry.sharer_cores()):
            self.stats.inclusion_invalidations += 1
            self.mesh.send(MT.INV,
                           self.mesh.core_to_bank(sharer, bank.bank_id))
            self.mesh.send(MT.INV_ACK,
                           self.mesh.core_to_bank(sharer, bank.bank_id))
            line = self.cores[sharer].invalidate(victim.block,
                                                 cause=InvCause.INCLUSION)
            assert line is not None
            if line.state is MESI.M:
                victim.version = line.version
                victim.dirty = True
            entry.remove_sharer(sharer)
        self._free_entry(entry, bank, evictor_version=victim.version)

    # ------------------------------------------------------------------
    # Directory-entry lifecycle (hooks overridden by ZeroDEV and others)
    # ------------------------------------------------------------------
    def _find_entry(self, block: int
                    ) -> Tuple[Optional[DirectoryEntry], int]:
        """Locate the directory entry for ``block``.

        Returns (entry or None, extra critical-path latency). The baseline
        only looks in the sparse directory, in parallel with the LLC tag
        lookup (zero extra latency).
        """
        assert self.directory is not None
        return self.directory.lookup(block), 0

    def _allocate_entry(self, block: int, state: DirState, requester: int,
                        owner: Optional[int], bank: LLCBank
                        ) -> DirectoryEntry:
        """Allocate a fresh entry, evicting an NRU victim if the set is
        full -- the step that manufactures DEVs in the baseline."""
        assert self.directory is not None
        self.stats.dir_allocations += 1
        if not self.directory.has_room(block):
            victim = self.directory.choose_victim(block)
            self.directory.remove(victim.block)
            self._process_dev(victim)
        entry = DirectoryEntry(block, state, owner=owner,
                               sharers=1 << requester)
        self.directory.insert(entry)
        return entry

    def _process_dev(self, victim: DirectoryEntry) -> None:
        """Invalidate every private copy the evicted entry was tracking."""
        self.stats.dir_evictions += 1
        if self.obs is not None:
            self.obs.emit(EventKind.DIR_EVICT, block=victim.block,
                          cause=InvCause.DEV)
        bank = self.bank_of(victim.block)
        generated = False
        last_version = 0
        leak_one = "dev-leak-sharer" in self.mutations
        for sharer in list(victim.sharer_cores()):
            if leak_one:
                # Seeded bug: the home drops the first sharer from the
                # entry without sending its invalidation, leaving a
                # live private copy the directory no longer tracks.
                leak_one = False
                victim.remove_sharer(sharer)
                continue
            generated = True
            self.stats.dev_invalidations += 1
            self.stats.invalidations_sent += 1
            self.mesh.send(MT.INV,
                           self.mesh.core_to_bank(sharer, bank.bank_id))
            line = self.cores[sharer].invalidate(victim.block,
                                                 cause=InvCause.DEV)
            assert line is not None
            last_version = line.version
            if line.state is MESI.M:
                # The dirty block is retrieved into the LLC (Section I-A1:
                # "dirty blocks were retrieved from the owner cores as
                # DEVs due to directory entry eviction").
                self.mesh.send(MT.WRITEBACK,
                               self.mesh.core_to_bank(sharer, bank.bank_id))
                self._install_llc_data(bank, victim.block, line.version,
                                       dirty=True)
            else:
                self.mesh.send(MT.INV_ACK,
                               self.mesh.core_to_bank(sharer, bank.bank_id))
            victim.remove_sharer(sharer)
        if generated:
            self.stats.dev_events += 1
            if bank.peek_data(victim.block) is None:
                self._presence_lost(victim.block, last_version)

    def _free_entry(self, entry: DirectoryEntry, bank: LLCBank,
                    evictor_version: int = 0,
                    evictor_core: Optional[int] = None) -> None:
        """Release an entry whose last private copy went away."""
        if entry.location is not EntryLocation.SPARSE:
            raise ProtocolInvariantError(
                "baseline entries live only in the sparse directory")
        assert self.directory is not None
        self.directory.remove(entry.block)

    def _entry_state_changed(self, entry: DirectoryEntry,
                             old_state: DirState, bank: LLCBank) -> None:
        """Hook: entry moved between M/E and S (FPSS re-locates here)."""

    # ------------------------------------------------------------------
    # Private-cache eviction notices
    # ------------------------------------------------------------------
    def _fill_private(self, core: int, block: int, state: MESI,
                      version: int, code: bool) -> None:
        notices = self.cores[core].fill(block, state, version, code)
        for notice in notices:
            self._process_notice(notice)

    def _process_notice(self, notice: EvictionNotice) -> None:
        """Handle one private-hierarchy eviction notice at the home."""
        block = notice.block
        bank = self.bank_of(block)
        entry = self._find_entry_for_notice(block, bank)
        if entry is None:
            self._notice_without_entry(notice, bank)
            return
        if notice.state is MESI.M:
            self.mesh.send(MT.WRITEBACK,
                           self.mesh.core_to_bank(notice.core,
                                                  bank.bank_id))
            self._install_llc_data(bank, block, notice.version, dirty=True)
        else:
            kind = self._clean_notice_kind(notice)
            self.mesh.send(kind, self.mesh.core_to_bank(notice.core,
                                                        bank.bank_id))
            if (notice.state is MESI.E
                    and self.config.llc_design is LLCDesign.EPD):
                # EPD allocates the block in the LLC when it is evicted
                # from the owner core's private hierarchy (Section III-E).
                self._install_llc_data(bank, block, notice.version,
                                       dirty=False)
        entry.remove_sharer(notice.core)
        if entry.empty:
            self._free_entry(entry, bank, evictor_version=notice.version,
                             evictor_core=notice.core)
            if bank.peek_data(block) is None:
                # No LLC copy either: the block has left the socket.
                self._presence_lost(block, notice.version)
        else:
            self._notice_done(entry, bank)

    def _find_entry_for_notice(self, block: int, bank: LLCBank
                               ) -> Optional[DirectoryEntry]:
        """Entry lookup for the eviction-notice path.

        ZeroDEV overrides this with the GET_DE flow of Section III-D4
        (memory-housed entries are read and updated in place rather than
        promoted back into the socket).
        """
        entry, _ = self._find_entry(block)
        return entry

    def _notice_done(self, entry: DirectoryEntry, bank: LLCBank) -> None:
        """Hook after a notice updated a still-live entry (ZeroDEV writes
        memory-housed entries back here)."""

    def _clean_notice_kind(self, notice: EvictionNotice) -> MT:
        """Message type for a clean (E/S) eviction notice."""
        return MT.EVICT_CLEAN

    def _notice_without_entry(self, notice: EvictionNotice,
                              bank: LLCBank) -> None:
        """An eviction notice found no directory entry in the socket.

        Impossible in the baseline: a private copy always has a live entry
        (DEV invalidations enforce it). ZeroDEV overrides this with the
        GET_DE flow of Section III-D4.
        """
        raise ProtocolInvariantError(
            f"baseline eviction notice for untracked block "
            f"{notice.block:#x} from core {notice.core}")

    # ------------------------------------------------------------------
    # Invariant checking support (used heavily by the test-suite)
    # ------------------------------------------------------------------
    def _peek_entry(self, block: int) -> Optional[DirectoryEntry]:
        """Side-effect-free entry lookup (invariant checking only)."""
        assert self.directory is not None
        return self.directory.peek(block)

    def check_invariants(self) -> None:
        """Verify SWMR and directory precision over the whole socket."""
        tracked = {}
        for core, hier in enumerate(self.cores):
            for block in hier.cached_blocks():
                state = hier.probe(block)
                tracked.setdefault(block, []).append((core, state))
        for block, holders in tracked.items():
            owners = [c for c, s in holders if s is not MESI.S]
            if owners and len(holders) > 1:
                raise ProtocolInvariantError(
                    f"SWMR violated for block {block:#x}: {holders}")
            entry = self._peek_entry(block)
            if entry is None:
                raise ProtocolInvariantError(
                    f"block {block:#x} privately cached but untracked")
            holder_set = {c for c, _ in holders}
            entry_set = set(entry.sharer_cores())
            if holder_set != entry_set:
                raise ProtocolInvariantError(
                    f"directory imprecise for block {block:#x}: entry "
                    f"{sorted(entry_set)} vs caches {sorted(holder_set)}")
            if owners and entry.state is not DirState.ME:
                raise ProtocolInvariantError(
                    f"entry state S but core owns block {block:#x}")
