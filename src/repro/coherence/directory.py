"""The sparse directory structure.

An eight-way set-associative array of :class:`DirectoryEntry` with 1-bit
NRU replacement (Table I). Three provisioning modes:

* **sized** (``ratio`` given): the classic baseline. A full set forces an
  NRU victim whose private copies become DEVs -- the caller handles that.
* **unbounded**: unlimited capacity, never evicts (the Figure 2/3
  reference system).
* **replacement-disabled** (ZeroDEV, Section III-C4): a new entry only
  takes an invalid way; when the set is full the entry overflows to the
  LLC instead, so the structure itself never evicts anything.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence.entry import DirectoryEntry, EntryLocation
from repro.common.addressing import set_index
from repro.common.errors import ProtocolInvariantError, SimulationError
from repro.obs.events import EventKind


class SparseDirectory:
    """Set-associative sparse directory with 1-bit NRU replacement."""

    #: Observability seam (repro.obs): None = tracing disabled.
    obs = None

    def __init__(self, entries: int, ways: int, unbounded: bool = False,
                 replacement_disabled: bool = False) -> None:
        if unbounded:
            self.sets = 0
            self.ways = 0
        else:
            if entries % ways:
                raise SimulationError(
                    f"{entries} entries not divisible by {ways} ways")
            self.sets = entries // ways
            self.ways = ways
        self.unbounded = unbounded
        self.replacement_disabled = replacement_disabled
        self._sets: List[List[DirectoryEntry]] = [
            [] for _ in range(max(self.sets, 1))]
        self._index: Dict[int, DirectoryEntry] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, block: int) -> bool:
        return block in self._index

    def set_of(self, block: int) -> int:
        if self.unbounded:
            return 0
        return set_index(block, self.sets)

    # ------------------------------------------------------------------
    def lookup(self, block: int) -> Optional[DirectoryEntry]:
        """Find the entry tracking ``block``; marks it recently used."""
        entry = self._index.get(block)
        if entry is not None:
            entry.nru_ref = True
        return entry

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        """Lookup without touching NRU metadata (invariant checks)."""
        return self._index.get(block)

    def has_room(self, block: int) -> bool:
        """True when ``block``'s set has an invalid way (or unbounded)."""
        if self.unbounded:
            return True
        return len(self._sets[self.set_of(block)]) < self.ways

    def insert(self, entry: DirectoryEntry) -> None:
        """Install ``entry``; the caller must have made room."""
        if entry.block in self._index:
            raise ProtocolInvariantError(
                f"duplicate directory entry for block {entry.block:#x}")
        if not self.has_room(entry.block):
            raise ProtocolInvariantError(
                f"directory set {self.set_of(entry.block)} is full; "
                "caller must evict (baseline) or overflow to LLC (ZeroDEV)")
        entry.location = EntryLocation.SPARSE
        entry.nru_ref = True
        if not self.unbounded:
            self._sets[self.set_of(entry.block)].append(entry)
        self._index[entry.block] = entry
        if self.obs is not None:
            self.obs.emit(EventKind.DIR_INSERT, block=entry.block)

    def choose_victim(self, block: int) -> DirectoryEntry:
        """NRU victim of ``block``'s set (baseline DEV generation).

        Picks the first way with a clear reference bit; if every bit is
        set, all bits are cleared first (the standard 1-bit NRU sweep).
        """
        if self.unbounded or self.replacement_disabled:
            raise ProtocolInvariantError(
                "victim requested from a directory that never evicts")
        ways = self._sets[self.set_of(block)]
        if len(ways) < self.ways:
            raise ProtocolInvariantError(
                "victim requested although the set has room")
        for entry in ways:
            if not entry.nru_ref:
                return entry
        for entry in ways:
            entry.nru_ref = False
        return ways[0]

    def remove(self, block: int) -> DirectoryEntry:
        """Remove and return the entry for ``block``."""
        entry = self._index.pop(block, None)
        if entry is None:
            raise ProtocolInvariantError(
                f"no directory entry for block {block:#x} to remove")
        if not self.unbounded:
            self._sets[self.set_of(block)].remove(entry)
        if self.obs is not None:
            self.obs.emit(EventKind.DIR_REMOVE, block=block)
        return entry

    # ------------------------------------------------------------------
    def entries(self):
        return self._index.values()

    def occupancy(self) -> int:
        return len(self._index)
