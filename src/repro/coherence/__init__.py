"""Baseline intra-socket coherence: MESI protocol + sparse directory."""

from repro.coherence.directory import SparseDirectory
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.coherence.protocol import CMPSystem
from repro.coherence.shadow import ShadowMemory

__all__ = [
    "CMPSystem",
    "DirState",
    "DirectoryEntry",
    "EntryLocation",
    "ShadowMemory",
    "SparseDirectory",
]
