"""Protocol audit log: a bounded event trace for debugging.

Attach an :class:`AuditLog` to any system and every coherence-visible
event (accesses, fills, invalidations, entry movements, memory housing)
is appended to a bounded ring buffer. When an invariant trips, the last
N events explain how the state was reached -- the tool that found most of
the protocol bugs during this reproduction's development.

The log hooks the public seams of :class:`CMPSystem` (method wrapping,
no protocol-code changes), so it can be attached to baseline, ZeroDEV,
SecDir, and MgD systems alike and removed without trace.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.coherence.protocol import CMPSystem
from repro.workloads.trace import Op


@dataclass(frozen=True)
class AuditEvent:
    """One recorded protocol event."""

    step: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"#{self.step:<6} {self.kind:<14} {self.detail}"


class AuditLog:
    """Bounded ring buffer of protocol events for one system."""

    #: (attribute, event kind, detail formatter) for each hooked seam.
    HOOKS = (
        ("_process_dev", "DEV",
         lambda args, kwargs: f"entry block={args[0].block:#x} "
                              f"sharers={args[0].sharers:#b}"),
        ("_free_entry", "entry-free",
         lambda args, kwargs: f"block={args[0].block:#x} "
                              f"loc={args[0].location.value}"),
        ("_handle_llc_victim", "llc-evict",
         lambda args, kwargs: f"block={args[1].block:#x} "
                              f"kind={args[1].kind.value} "
                              f"dirty={args[1].dirty}"),
        ("_process_notice", "notice",
         lambda args, kwargs: f"core={args[0].core} "
                              f"block={args[0].block:#x} "
                              f"state={args[0].state.value}"),
        ("_allocate_entry", "entry-alloc",
         lambda args, kwargs: f"block={args[0]:#x} state={args[1].value} "
                              f"core={args[2]}"),
    )

    def __init__(self, system: CMPSystem, capacity: int = 256) -> None:
        self.system = system
        self.events: Deque[AuditEvent] = collections.deque(
            maxlen=capacity)
        self._step = 0
        self._originals = {}
        self._install()

    # ------------------------------------------------------------------
    def _install(self) -> None:
        self._originals["access"] = self.system.access

        def traced_access(core: int, op: Op, address: int,
                          _orig=self.system.access) -> int:
            self._step += 1
            self.record("access",
                        f"core={core} {op.name} addr={address:#x}")
            return _orig(core, op, address)

        self.system.access = traced_access   # type: ignore[method-assign]
        for name, kind, formatter in self.HOOKS:
            original = getattr(self.system, name, None)
            if original is None:
                continue
            self._originals[name] = original

            def hooked(*args, _orig=original, _kind=kind,
                       _fmt=formatter, **kwargs):
                try:
                    detail = _fmt(args, kwargs)
                except Exception:            # noqa: BLE001 - formatting
                    detail = "<unformattable>"
                self.record(_kind, detail)
                return _orig(*args, **kwargs)

            setattr(self.system, name, hooked)

    def detach(self) -> None:
        """Restore the system's original methods."""
        for name, original in self._originals.items():
            setattr(self.system, name, original)
        self._originals.clear()

    # ------------------------------------------------------------------
    def record(self, kind: str, detail: str) -> None:
        self.events.append(AuditEvent(self._step, kind, detail))

    def tail(self, count: int = 20) -> List[AuditEvent]:
        return list(self.events)[-count:]

    def of_kind(self, kind: str) -> List[AuditEvent]:
        return [event for event in self.events if event.kind == kind]

    def render(self, count: int = 20) -> str:
        return "\n".join(str(event) for event in self.tail(count))

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()
