"""Exhaustive state-space exploration of the coherence protocols.

A lightweight model checker for the simulator: systematically enumerate
*every* access sequence up to a bounded depth over a micro configuration
(few cores, few blocks, tiny caches) and check the full invariant set --
SWMR, directory precision, entry-location exclusivity, data correctness
(built into every read), and the ZeroDEV guarantee -- after every step.

Unlike the randomized hypothesis tests, exploration is complete up to the
depth bound: any protocol bug reachable within ``depth`` accesses over the
chosen alphabet *will* be found, and the failing sequence is reported as a
minimal counterexample prefix.

This mirrors how the paper's protocol extensions would be validated with
a model checker ("Generating the rule-sets governing this protocol case
and the related invariants requires careful consideration", Section
III-D6) -- here the rule-set is the implementation itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.addressing import BLOCK_SHIFT
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.harness.parallel import parallel_map
from repro.harness.system_builder import build_system
from repro.workloads.trace import Op


@dataclass
class Counterexample:
    """A failing access sequence and the error it triggered."""

    sequence: Tuple[Tuple[int, Op, int], ...]
    error: Exception

    def __str__(self) -> str:
        steps = ", ".join(f"c{core}:{op.name[0]}@{block}"
                          for core, op, block in self.sequence)
        return f"[{steps}] -> {self.error}"


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration."""

    depth: int
    alphabet_size: int
    sequences_explored: int = 0
    states_checked: int = 0
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None


class ExhaustiveExplorer:
    """Depth-bounded exhaustive exploration over an access alphabet.

    Because the simulator is deterministic, replaying a prefix always
    reaches the same state; exploration therefore rebuilds the system
    per sequence and replays it from scratch -- simple and
    allocation-cheap at micro scale, but O(depth) work per sequence with
    no sharing between sequences that differ only in their last access.
    :mod:`repro.verify.modelcheck` supersedes this engine for deep
    bounded-exhaustive runs: its snapshot frontier does O(1) work per
    transition and collapses symmetric interleavings, reaching several
    levels deeper at equal wall-clock.  This explorer remains the
    simplest reference implementation and the engine behind
    :meth:`explore_sampled`.
    """

    def __init__(self, config_factory: Callable[[], SystemConfig],
                 cores: Sequence[int], blocks: Sequence[int],
                 ops: Sequence[Op] = (Op.READ, Op.WRITE),
                 extra_check: Optional[Callable] = None) -> None:
        self._config_factory = config_factory
        self._alphabet = [(core, op, block)
                          for core in cores
                          for op in ops
                          for block in blocks]
        self._extra_check = extra_check

    def _check(self, system) -> None:
        system.check_invariants()
        if self._extra_check is not None:
            self._extra_check(system)

    def _evaluate(self, sequence
                  ) -> Tuple[int, Optional[Counterexample]]:
        """Run one sequence end to end on a fresh system.

        Returns ``(states_checked, counterexample)``: 1 checked state
        when the end-of-sequence invariant check passed, else the
        failing prefix (or full sequence) with its error.
        """
        system = build_system(self._config_factory())
        for index, (core, op, block) in enumerate(sequence):
            try:
                system.access(core, op, block << BLOCK_SHIFT)
            except Exception as error:     # noqa: BLE001 - reported
                return 0, Counterexample(sequence[:index + 1], error)
        try:
            self._check(system)
            return 1, None
        except Exception as error:         # noqa: BLE001 - reported
            return 0, Counterexample(sequence, error)

    def replay(self, sequence) -> Optional[Counterexample]:
        """Re-run a (counterexample) sequence under the same check
        discipline as :meth:`explore_sampled`; returns the reproduced
        failure, or None when the sequence now passes."""
        _, counterexample = self._evaluate(tuple(sequence))
        return counterexample

    def explore(self, depth: int,
                check_every_step: bool = True) -> ExplorationReport:
        """Explore all sequences of exactly ``depth`` accesses.

        Invariants are checked after every step of every sequence when
        ``check_every_step`` is set (any shorter failing prefix is then
        reported as the counterexample), otherwise only at the ends.
        """
        report = ExplorationReport(depth, len(self._alphabet))
        for sequence in itertools.product(self._alphabet, repeat=depth):
            report.sequences_explored += 1
            system = build_system(self._config_factory())
            for index, (core, op, block) in enumerate(sequence):
                try:
                    system.access(core, op, block << BLOCK_SHIFT)
                    if check_every_step:
                        self._check(system)
                        report.states_checked += 1
                except Exception as error:   # noqa: BLE001 - reported
                    report.counterexample = Counterexample(
                        sequence[:index + 1], error)
                    return report
            if not check_every_step:
                try:
                    self._check(system)
                    report.states_checked += 1
                except Exception as error:   # noqa: BLE001 - reported
                    report.counterexample = Counterexample(sequence,
                                                           error)
                    return report
        return report

    def explore_memoized(self, depth: int, max_states: int = 250_000,
                         budget_s: Optional[float] = None,
                         jobs: int = 1):
        """Explore to ``depth`` through the memoized snapshot frontier.

        Same alphabet and check discipline as :meth:`explore`, but run
        by :mod:`repro.verify.modelcheck`: symmetric interleavings
        collapse onto one canonical state and each transition costs
        O(1) instead of O(depth), so this reaches several levels deeper
        at equal wall-clock.  Returns a
        :class:`~repro.verify.modelcheck.ModelCheckReport` (``ok`` /
        ``counterexample`` behave like :class:`ExplorationReport`).
        """
        from repro.verify.modelcheck import (ModelCheckReport,
                                             _explore_frontier,
                                             system_key)
        config = self._config_factory()
        report = ModelCheckReport(config.protocol.value, depth,
                                  len(self._alphabet), jobs=jobs)

        def issue(system, symbol) -> None:
            core, op, block = symbol
            system.access(core, op, block << BLOCK_SHIFT)

        def trim(system) -> None:
            for hier in system.cores:
                hier.shrink_log.clear()

        return _explore_frontier(
            report, lambda: build_system(self._config_factory()),
            issue, self._check, system_key, trim, self._alphabet,
            depth, max_states, budget_s, jobs=jobs)

    def explore_sampled(self, depth: int, samples: int, seed: int = 0,
                        jobs: int = 1) -> ExplorationReport:
        """Uniformly sample ``samples`` sequences of ``depth`` accesses
        (for depths where the full product is intractable).

        Reproducible from ``seed`` regardless of ``jobs``: every
        sequence is drawn from the seeded generator *before* any work is
        partitioned, sequences are evaluated independently (one fresh
        system each), and outcomes are folded in draw order -- the
        counterexample, when one exists, is always the lowest-index
        failing sequence, and the report is identical for every worker
        count. Parallel workers read the explorer through a module
        global inherited at fork time (configs built from closures need
        not pickle); without fork the call runs serially.
        """
        import random
        rng = random.Random(seed)
        sequences = [tuple(rng.choice(self._alphabet)
                           for _ in range(depth))
                     for _ in range(samples)]
        report = ExplorationReport(depth, len(self._alphabet))
        if jobs > 1:
            global _ACTIVE_EXPLORER
            _ACTIVE_EXPLORER = self
            try:
                outcomes = parallel_map(_evaluate_in_worker, sequences,
                                        jobs=jobs, chunksize=8,
                                        require_fork=True)
            finally:
                _ACTIVE_EXPLORER = None
            for checked, counterexample in outcomes:
                report.sequences_explored += 1
                if counterexample is not None:
                    report.counterexample = counterexample
                    return report
                report.states_checked += checked
            return report
        for sequence in sequences:
            report.sequences_explored += 1
            checked, counterexample = self._evaluate(sequence)
            if counterexample is not None:
                report.counterexample = counterexample
                return report
            report.states_checked += checked
        return report


#: Explorer shared with forked explore_sampled workers (fork inherits
#: the global, so unpicklable config factories travel for free).
_ACTIVE_EXPLORER: Optional[ExhaustiveExplorer] = None


def _evaluate_in_worker(sequence):
    assert _ACTIVE_EXPLORER is not None
    return _ACTIVE_EXPLORER._evaluate(sequence)  # noqa: SLF001
