"""Shadow memory: the data-correctness oracle.

Block contents are modeled as versions (see ``caches.block``). The shadow
records, outside the protocol, the latest committed version of every block.
When ``check_data`` is enabled the protocol asserts that every load is
served the latest version -- a full end-to-end data-correctness check of
whatever coherence scheme is running.

Versions are **per block**: the n-th store to a block commits version n,
regardless of stores to other blocks. This keeps the oracle exactly as
strong (a stale read still observes a version smaller than the latest)
while making version assignment independent of how stores to *different*
blocks interleave.  That independence is load-bearing twice over: the
differential harness compares final ``(block, version)`` digests across
models whose timing -- and therefore cross-block store order -- differs,
and the batched kernel (:mod:`repro.kernel`) retires safe store hits of
different cores out of global order, which is only legal because commits
to distinct blocks commute.  (Same-block stores never commute, but SWMR
already serializes them: a store hit requires M/E, which is exclusive.)
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ProtocolInvariantError


class ShadowMemory:
    """Latest-committed-version oracle, independent of the protocol."""

    def __init__(self) -> None:
        self._latest: Dict[int, int] = {}

    def commit_write(self, block: int) -> int:
        """Record a store to ``block``; returns the new version number."""
        version = self._latest.get(block, 0) + 1
        self._latest[block] = version
        return version

    def latest(self, block: int) -> int:
        """Latest committed version of ``block`` (0 if never written)."""
        return self._latest.get(block, 0)

    def check_read(self, block: int, served_version: int,
                   where: str) -> None:
        """Assert a load observed the latest version of ``block``."""
        expected = self.latest(block)
        if served_version != expected:
            raise ProtocolInvariantError(
                f"stale data: block {block:#x} read from {where} returned "
                f"version {served_version}, latest is {expected}")
