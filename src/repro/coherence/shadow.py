"""Shadow memory: the data-correctness oracle.

Block contents are modeled as versions (see ``caches.block``). The shadow
records, outside the protocol, the latest committed version of every block.
When ``check_data`` is enabled the protocol asserts that every load is
served the latest version -- a full end-to-end data-correctness check of
whatever coherence scheme is running.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ProtocolInvariantError


class ShadowMemory:
    """Latest-committed-version oracle, independent of the protocol."""

    def __init__(self) -> None:
        self._latest: Dict[int, int] = {}
        self._next_version = 1

    def commit_write(self, block: int) -> int:
        """Record a store to ``block``; returns the new version number."""
        version = self._next_version
        self._next_version += 1
        self._latest[block] = version
        return version

    def latest(self, block: int) -> int:
        """Latest committed version of ``block`` (0 if never written)."""
        return self._latest.get(block, 0)

    def check_read(self, block: int, served_version: int,
                   where: str) -> None:
        """Assert a load observed the latest version of ``block``."""
        expected = self.latest(block)
        if served_version != expected:
            raise ProtocolInvariantError(
                f"stale data: block {block:#x} read from {where} returned "
                f"version {served_version}, latest is {expected}")
