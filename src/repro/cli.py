"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available figure experiments and workload suites.
``run FIGURE``
    Run one figure experiment (e.g. ``fig19``, ``energy``) and print its
    paper-versus-measured table plus a bar chart of the headline series.
``demo``
    The quickstart comparison: baseline 1x versus ZeroDEV with no
    directory on one workload.
``trace APP PATH``
    Generate a workload for a named application and save it as ``.npz``
    -- or, when ``PATH`` ends in ``.jsonl`` (or ``--events`` is given),
    run the workload with structured event tracing enabled: the JSONL
    event stream and its ``*.timeseries.json`` sibling are written to
    ``PATH`` and a terminal report is printed (see ``repro report``).
``report [TRACE.jsonl]``
    With a path: render the observability report for that event trace.
    Without: rebuild EXPERIMENTS.md from the archived benchmark tables.
``simulate PATH``
    Run a saved trace bundle under a chosen protocol and print stats.
``modelcheck``
    Memoized bounded-exhaustive model checking: a BFS snapshot frontier
    with canonical-state dedup over the micro alphabet, across the
    whole model matrix (or ``--models``). ``--stats`` reports unique
    canonical states versus per-sequence replay at equal wall-clock;
    ``--mutations`` runs the seeded-bug gate (every mutation caught by
    modelcheck, at least one missed by the fixed-budget fuzz baseline);
    ``--out`` saves counterexample prefixes as ``repro
    shrink``-compatible ``.npz`` traces.
``fuzz``
    Differential fuzzing: seeded adversarial traces through the whole
    model matrix with per-step invariant checking; failures are ddmin-
    shrunk to minimal reproducers. ``--inject`` turns the campaign into
    a fault-injection soak; ``--resume JOURNAL`` checkpoints completed
    runs and skips them when the campaign is re-executed.
``shrink TRACE.npz``
    Re-shrink a saved fuzz trace against one model and emit the
    reduced ``.npz`` + pytest regression stub.
``submit KIND [PARAMS]`` / ``work`` / ``status JOB`` / ``jobs``
    The campaign job service (:mod:`repro.service`): submit a fuzz,
    sweep, or figure spec as a JSON job into a shared service root,
    drain the queue with any number of ``repro work`` processes (on any
    number of hosts), and poll job state / fetch artifacts. ``repro
    report --html`` renders a job's (or a trace's) self-contained HTML
    experiment report.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.common.config import (DirCachingPolicy, DirectoryConfig,
                                 LLCDesign, LLCReplacement, Protocol,
                                 scaled_socket)
from repro.common.errors import ConfigError
from repro.harness import experiments
from repro.harness.reporting import ascii_bars
from repro.harness.runner import run_workload
from repro.harness.system_builder import build_system
from repro.workloads.suites import SUITES, find_profile
from repro.workloads.trace import Workload

EXPERIMENTS = {
    "fig2": experiments.fig2_unbounded_rate,
    "fig3": experiments.fig3_unbounded_multithreaded,
    "fig4": experiments.fig4_directory_sizes,
    "fig5": experiments.fig5_llc_occupancy,
    "fig6": experiments.fig6_llc_ways,
    "fig17": experiments.fig17_policy_selection,
    "fig18": experiments.fig18_replacement_selection,
    "fig19": experiments.fig19_parsec,
    "fig20": experiments.fig20_splash_omp_fftw,
    "fig21": experiments.fig21_cpu2017_rate,
    "fig22": experiments.fig22_llc_capacity,
    "fig23": experiments.fig23_heterogeneous,
    "fig24": experiments.fig24_server,
    "fig25": experiments.fig25_epd_inclusive,
    "fig26": experiments.fig26_mgd,
    "fig27": experiments.fig27_secdir,
    "contenders": experiments.fig_contenders,
    "energy": experiments.energy_comparison,
    "multisocket": experiments.multisocket_comparison,
}


def _command_list(_args) -> int:
    print("experiments:")
    for name, fn in EXPERIMENTS.items():
        lines = (fn.__doc__ or "").strip().splitlines()
        print(f"  {name:<12} {lines[0] if lines else ''}")
    print("\nsuites:")
    for suite, profiles in SUITES.items():
        names = ", ".join(p.name for p in profiles)
        print(f"  {suite:<10} {names}")
    return 0


def _command_run(args) -> int:
    if args.accesses:
        os.environ["REPRO_ACCESSES"] = str(args.accesses)
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    experiment = EXPERIMENTS[args.figure]
    table, _results = experiment()
    table.show()
    chart_rows = [r for r in table.rows if 0.0 < r.measured < 4.0]
    if len(chart_rows) >= 2:
        print()
        print(ascii_bars([r.measured for r in chart_rows],
                         [r.label for r in chart_rows]))
    meta = table.metadata
    if meta.get("runs_executed") or meta.get("cache_hits"):
        print(f"\n[{meta.get('runs_executed', 0)} runs "
              f"({meta.get('cache_hits', 0)} cached), "
              f"{meta.get('experiment_wall_seconds', 0.0):.1f}s wall, "
              f"{meta.get('accesses_per_second', 0):,} simulated "
              f"accesses/s, jobs={meta.get('jobs', 1)}]")
    return 0


def _command_demo(args) -> int:
    config = scaled_socket()
    profile = find_profile(args.app)
    from repro.workloads.suites import make_multithreaded
    workload = make_multithreaded(profile, config, args.accesses, seed=5)

    baseline = build_system(config)
    run_workload(baseline, workload)
    zerodev = build_system(config.with_(
        protocol=Protocol.ZERODEV, directory=DirectoryConfig(ratio=None),
        llc_replacement=LLCReplacement.DATA_LRU))
    run_workload(zerodev, workload)
    base, zdev = baseline.stats, zerodev.stats
    print(f"{args.app}: baseline {base.total_cycles:,} cycles, "
          f"{base.dev_invalidations:,} DEVs; "
          f"ZeroDEV-NoDir {zdev.total_cycles:,} cycles, "
          f"{zdev.dev_invalidations} DEVs "
          f"(speedup {base.total_cycles / zdev.total_cycles:.3f})")
    return 0


def _command_verify(args) -> int:
    """Bounded-exhaustive protocol verification (see PROTOCOL.md §6)."""
    if args.kernel_diff:
        return _verify_kernel_diff(args)
    if args.seed is not None and not args.samples:
        # A silently ignored seed makes "repro verify --seed N" look
        # like it varied the run when it exhausted the same tree.
        raise ConfigError(
            "--seed only applies to sampled exploration; add --samples "
            "N (or --kernel-diff, whose campaign is seeded)")
    from repro.coherence.exhaustive import ExhaustiveExplorer
    from repro.common.config import CacheGeometry, SystemConfig

    def micro() -> SystemConfig:
        base = SystemConfig(
            n_cores=2,
            l1i=CacheGeometry(256, 2), l1d=CacheGeometry(256, 2),
            l2=CacheGeometry(512, 2), llc=CacheGeometry(1024, 2),
            llc_banks=2, directory=DirectoryConfig(ratio=0.5))
        if args.protocol == "zerodev":
            return base.with_(
                protocol=Protocol.ZERODEV,
                directory=DirectoryConfig(ratio=None),
                llc_replacement=LLCReplacement.DATA_LRU)
        if args.protocol == "dls":
            return base.with_(
                protocol=Protocol.DLS,
                directory=DirectoryConfig(ratio=None),
                llc_design=LLCDesign.INCLUSIVE)
        return base.with_(protocol=Protocol(args.protocol))

    explorer = ExhaustiveExplorer(micro, cores=(0, 1), blocks=(0, 8, 1))
    if args.samples:
        seed = args.seed if args.seed is not None else 0
        report = explorer.explore_sampled(depth=args.depth,
                                          samples=args.samples,
                                          seed=seed,
                                          jobs=args.jobs or 1)
        print(f"{args.protocol}: sampled {report.sequences_explored:,} "
              f"of the depth-{args.depth} sequences (seed {seed}), "
              f"checked {report.states_checked:,} states")
    else:
        report = explorer.explore(depth=args.depth)
        print(f"{args.protocol}: explored {report.sequences_explored:,} "
              f"sequences at depth {args.depth}, checked "
              f"{report.states_checked:,} states")
    if report.ok:
        print("all invariants hold")
        return 0
    print(f"COUNTEREXAMPLE: {report.counterexample}")
    return 1


def _verify_kernel_diff(args) -> int:
    """Scalar-vs-bulk-kernel bit-identity differential (repro.kernel)."""
    from repro.common.config import KERNELS
    from repro.kernel.diff import run_kernel_diff

    kernels = tuple(name.strip()
                    for name in args.kernels.split(",") if name.strip())
    for name in kernels:
        if name not in KERNELS or name == "scalar":
            raise SystemExit(
                f"--kernels: {name!r} is not a kernel under test; "
                f"choose from "
                f"{', '.join(k for k in KERNELS if k != 'scalar')}")
    report = run_kernel_diff(
        seed=args.seed if args.seed is not None else 0,
        budget=args.budget,
        check_every=args.check_every,
        steps_per_trace=args.steps_per_trace, out_dir=args.out,
        kernels=kernels)
    print(report.summary())
    return 0 if report.ok else 1


def _command_modelcheck(args) -> int:
    """Memoized bounded-exhaustive checking (see PROTOCOL.md §6)."""
    import os
    from repro.harness.parallel import default_jobs
    from repro.verify.modelcheck import (MICRO_BLOCKS, check_matrix,
                                         frontier_vs_replay,
                                         mutation_gate)
    from repro.verify.models import model_by_name, model_matrix

    specs = (list(model_matrix()) if args.models is None
             else [model_by_name(name.strip())
                   for name in args.models.split(",") if name.strip()])
    blocks = (MICRO_BLOCKS if args.blocks is None
              else tuple(int(b, 0)
                         for b in args.blocks.split(",") if b.strip()))
    jobs = args.jobs if args.jobs is not None else default_jobs()
    symmetry = bool(args.symmetry)

    if args.mutations:
        verdicts = mutation_gate(jobs=jobs, symmetry=symmetry)
        for verdict in verdicts:
            print(verdict.summary())
        caught = all(v.caught_by_modelcheck for v in verdicts)
        missed = sum(not v.fuzz_caught for v in verdicts)
        print(f"gate: {len(verdicts)} mutations, "
              f"{'all' if caught else 'NOT all'} caught by modelcheck, "
              f"{missed} missed by the fuzz baseline")
        return 0 if caught else 1

    if args.stats:
        # Replay needs several levels of headroom before memoization
        # pays 10x, hence the deeper default.
        depth = args.depth if args.depth is not None else 8
        comparison = frontier_vs_replay(specs[0], depth, blocks=blocks,
                                        jobs=jobs, symmetry=symmetry)
        print(comparison.summary())
        return 0 if comparison.frontier.ok else 1

    depth = args.depth if args.depth is not None else 5
    kwargs = {}
    if args.max_states is not None:
        kwargs["max_states"] = args.max_states
    reports = []
    for spec in specs:
        from repro.verify.modelcheck import explore_model
        report = explore_model(spec, depth, blocks=blocks,
                               mutation=args.mutation or "",
                               budget_s=args.budget_s, jobs=jobs,
                               symmetry=symmetry, **kwargs)
        print(report.summary())
        reports.append(report)
    failures = [r for r in reports if not r.ok]
    if args.out and failures:
        os.makedirs(args.out, exist_ok=True)
        for report in failures:
            trace = report.counterexample_trace()
            path = os.path.join(args.out, f"{trace.name}.npz")
            trace.save(path)
            print(f"wrote {path}")
    total = sum(r.unique_states for r in reports)
    checked = sum(r.transitions for r in reports)
    print(f"{len(reports)} models: {total:,} unique states, "
          f"{checked:,} transitions checked, "
          f"{len(failures)} counterexample(s)")
    return 1 if failures else 0


#: A campaign whose completed runs are all clean but which is missing
#: results (worker crash / timeout after retries): resumable, not failed.
EXIT_PARTIAL = 3


def _command_fuzz(args) -> int:
    """Differential fuzzing / fault injection (see PROTOCOL.md §7)."""
    from repro.harness.campaign import CampaignPolicy
    from repro.verify import run_campaign
    from repro.verify.faults import FaultKind, FaultPlan

    fault = None
    if args.inject:
        fault = FaultPlan(FaultKind(args.inject), at=args.at)
    policy = None
    if args.run_timeout is not None or args.retries is not None:
        policy = CampaignPolicy(
            retries=1 if args.retries is None else args.retries,
            run_timeout=args.run_timeout)
    report = run_campaign(
        seed=args.seed, budget=args.budget, jobs=args.jobs or 1,
        check_every=args.check_every, fault=fault,
        shrink=not args.no_shrink, out_dir=args.out,
        policy=policy, resume=args.resume)
    print(report.summary())
    if report.ok:
        return 0
    return EXIT_PARTIAL if report.partial else 1


def _command_shrink(args) -> int:
    """Reduce a saved fuzz trace to a minimal reproducer."""
    from repro.verify import (FuzzTrace, emit_regression, model_by_name,
                              run_trace, shrink_trace)
    from repro.verify.faults import FaultKind, FaultPlan

    trace = FuzzTrace.load(args.path)
    spec = model_by_name(args.model)
    fault = None
    if args.inject:
        fault = FaultPlan(FaultKind(args.inject), at=args.at)
    outcome = run_trace(spec, trace, fault=fault)
    if outcome.ok:
        print(f"{trace!r} passes on {spec.name}; nothing to shrink")
        return 0
    minimized, final = shrink_trace(spec, trace, reference=outcome,
                                    fault=fault)
    print(f"shrunk {len(trace)} -> {len(minimized)} accesses: {final}")
    if args.out:
        npz, test = emit_regression(spec, minimized, final, args.out)
        print(f"wrote {npz}\nwrote {test}")
    return 1


#: Default service root (``repro submit`` / ``work`` / ``status``).
_SERVICE_ROOT_ENV = "REPRO_SERVICE_ROOT"


def _service_root(args) -> str:
    return (args.root or os.environ.get(_SERVICE_ROOT_ENV)
            or ".repro-service")


def _command_submit(args) -> int:
    import json
    from repro.service import JobSpec, JobStore

    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        raise ConfigError(f"PARAMS must be a JSON object: {exc}") from None
    if not isinstance(params, dict):
        raise ConfigError("PARAMS must be a JSON object, got "
                          f"{type(params).__name__}")
    store = JobStore(_service_root(args))
    record, created = store.submit(JobSpec.make(args.kind, params))
    verb = "submitted" if created else "joined"
    print(f"{verb} {record.describe()}")
    print(f"  results: {store.job_dir(record.job_id)}")
    if record.state == "done":
        print("  already finished (content-addressed dedupe); see "
              "report.html / summary.json")
    return 0


def _command_work(args) -> int:
    from repro.service.worker import run_worker

    processed = run_worker(
        _service_root(args), worker_id=args.worker_id,
        lease_ttl=args.lease_ttl, poll=args.poll, once=args.once,
        until_idle=args.until_idle, max_items=args.max_items)
    print(f"worker exit: {processed} item(s) processed")
    return 0


def _command_status(args) -> int:
    from repro.service import JobStore

    store = JobStore(_service_root(args))
    record = store.record(args.job)
    print(record.describe())
    journal = store.journal_status(args.job)
    if journal is not None:
        print(f"  journal: {journal['committed']} committed run(s)")
    for line in store.failure_lines(args.job):
        print(f"  FAILED: {line}")
    report = store.job_dir(args.job) / "report.html"
    if report.is_file():
        print(f"  report: {report}")
    if record.state == "failed":
        return 1
    return EXIT_PARTIAL if record.state == "partial" else 0


def _command_jobs(args) -> int:
    from repro.service import JobStore

    records = JobStore(_service_root(args)).list_jobs()
    if not records:
        print(f"no jobs under {_service_root(args)}")
        return 0
    for record in records:
        print(record.describe())
    return 0


def _report_html(args) -> int:
    """``repro report --html``: job directory, job id, or trace."""
    from pathlib import Path
    from repro.service.html_report import (render_trace_html,
                                           write_job_report)
    target = Path(args.path)
    if not target.exists() and args.root is not None:
        candidate = Path(_service_root(args)) / "jobs" / args.path
        if candidate.is_dir():
            target = candidate
    if target.is_dir():
        if not (target / "spec.json").is_file():
            print(f"error: {target} is not a service job directory",
                  file=sys.stderr)
            return 2
        print(f"wrote {write_job_report(target)}")
        return 0
    if not target.is_file():
        print(f"error: no such trace or job: {args.path}",
              file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else target.with_suffix(".html")
    from repro.common.ioutil import atomic_write_text
    atomic_write_text(out, render_trace_html(target))
    print(f"wrote {out}")
    return 0


def _command_report(args) -> int:
    """Render a trace report, or rebuild EXPERIMENTS.md when no path."""
    if getattr(args, "html", False):
        if not getattr(args, "path", None):
            print("error: report --html needs a job id, job directory, "
                  "or trace path", file=sys.stderr)
            return 2
        return _report_html(args)
    if getattr(args, "path", None):
        from pathlib import Path
        from repro.obs.report import render_report
        path = Path(args.path)
        if not path.is_file():
            print(f"error: no such trace: {path}", file=sys.stderr)
            return 2
        print(render_report(path))
        return 0
    import runpy
    from pathlib import Path
    script = (Path(__file__).resolve().parent.parent.parent / "scripts"
              / "build_experiments_md.py")
    module = runpy.run_path(str(script))
    return module["main"]()


def _configured(config, protocol: Protocol, ratio: float, policy: str):
    """Apply the protocol/ratio/policy triple shared by simulate/trace."""
    if protocol is Protocol.ZERODEV:
        return config.with_(
            protocol=protocol,
            directory=DirectoryConfig(ratio=ratio if ratio > 0 else None),
            llc_replacement=LLCReplacement.DATA_LRU,
            dir_caching=DirCachingPolicy(policy))
    return config.with_(
        protocol=protocol,
        directory=DirectoryConfig(ratio=ratio or 1.0))


def _command_trace(args) -> int:
    from repro.workloads.suites import (make_multithreaded,
                                        make_rate_workload)
    config = scaled_socket()
    profile = find_profile(args.app)
    maker = make_rate_workload if args.rate else make_multithreaded
    workload = maker(profile, config, args.accesses, seed=args.seed)
    if args.events or str(args.path).endswith(".jsonl"):
        from repro.obs.report import render_report
        from repro.obs.trace import TraceSession
        config = _configured(config, Protocol(args.protocol),
                             args.ratio, args.policy)
        system = build_system(config)
        with TraceSession(system, jsonl=args.path,
                          epoch=args.epoch) as session:
            result = session.run(workload)
        print(f"traced {workload!r} under {config.protocol.value}: "
              f"{session.jsonl.events_written:,} events -> "
              f"{result.trace_path}")
        print()
        print(render_report(args.path))
        return 0
    workload.save(args.path)
    print(f"wrote {workload!r} to {args.path}")
    return 0


def _command_simulate(args) -> int:
    workload = Workload.load(args.path)
    config = _configured(scaled_socket(n_cores=max(8, workload.n_cores)),
                         Protocol(args.protocol), args.ratio, args.policy)
    system = build_system(config)
    run_workload(system, workload)
    stats = system.stats
    print(f"{workload!r} under {config.protocol.value}:")
    for field in ("total_cycles", "core_cache_misses",
                  "dev_invalidations", "traffic_bytes", "dram_reads",
                  "dram_writes", "entries_fused", "entries_spilled",
                  "wb_de_messages"):
        value = getattr(stats, field, None)
        if value is None:
            value = getattr(stats, field)
        print(f"  {field:<20} {stats.as_dict().get(field, value):,}")
    return 0


def _fault_kinds():
    from repro.verify.faults import FaultKind
    return list(FaultKind)


def _jobs_argument(value: str) -> int:
    """argparse type for ``--jobs``: positive integer or a clean error."""
    from repro.harness.parallel import parse_jobs
    try:
        return parse_jobs(value, source="--jobs")
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZeroDEV (HPCA 2021) reproduction toolkit")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments and suites")

    run = commands.add_parser("run", help="run a figure experiment")
    run.add_argument("figure", choices=sorted(EXPERIMENTS))
    run.add_argument("--accesses", type=int, default=0,
                     help="accesses per core (default: REPRO_ACCESSES)")
    run.add_argument("--full", action="store_true",
                     help="run every application, not the subset")
    run.add_argument("--jobs", type=_jobs_argument, default=None,
                     help="worker processes for independent runs "
                          "(default: REPRO_JOBS)")

    demo = commands.add_parser("demo", help="baseline vs ZeroDEV demo")
    demo.add_argument("--app", default="freqmine")
    demo.add_argument("--accesses", type=int, default=10_000)

    verify = commands.add_parser(
        "verify", help="bounded-exhaustive protocol verification")
    verify.add_argument("--protocol", default="zerodev",
                        choices=[p.value for p in Protocol])
    verify.add_argument("--depth", type=int, default=3)
    verify.add_argument("--samples", type=int, default=0,
                        help="sample this many sequences instead of "
                             "exhausting the depth (0 = exhaustive)")
    verify.add_argument("--seed", type=int, default=None,
                        help="sampling seed (needs --samples) or "
                             "kernel-diff campaign seed (default 0)")
    verify.add_argument("--jobs", type=_jobs_argument, default=None,
                        help="worker processes (with --samples)")
    verify.add_argument("--kernel-diff", action="store_true",
                        help="scalar-vs-bulk-kernel bit-identity "
                             "differential over the fuzz model matrix "
                             "instead of state exploration")
    verify.add_argument("--kernels", default="batched,vectorized",
                        help="comma-separated kernels to diff against "
                             "scalar (kernel-diff)")
    verify.add_argument("--budget", type=int, default=25,
                        help="traces per kernel-diff campaign (each runs "
                             "on every model under every kernel)")
    verify.add_argument("--check-every", type=int, default=0,
                        help="invariant-check every N accesses during "
                             "kernel-diff runs (0 = final state only)")
    verify.add_argument("--steps-per-trace", type=int, default=48,
                        help="accesses per kernel-diff trace")
    verify.add_argument("--out", default=None,
                        help="directory for divergent-trace .npz "
                             "reproducers (kernel-diff)")

    modelcheck = commands.add_parser(
        "modelcheck",
        help="memoized bounded-exhaustive model checking")
    modelcheck.add_argument("--models", default=None,
                            help="comma-separated model names "
                                 "(default: the whole matrix)")
    modelcheck.add_argument("--depth", type=int, default=None,
                            help="BFS depth over the micro alphabet "
                                 "(default 5; 8 with --stats)")
    modelcheck.add_argument("--blocks", default=None,
                            help="comma-separated block alphabet "
                                 "(default: 0,8,1)")
    modelcheck.add_argument("--max-states", type=int, default=None,
                            help="unique-state ceiling (default 250000)")
    modelcheck.add_argument("--budget-s", type=float, default=None,
                            help="wall-clock budget per model in "
                                 "seconds (exploration caps cleanly)")
    modelcheck.add_argument("--stats", action="store_true",
                            help="frontier-vs-replay comparison: unique "
                                 "canonical states at equal wall-clock "
                                 "(one model, deeper default depth)")
    modelcheck.add_argument("--mutations", action="store_true",
                            help="run the seeded-bug gate: every "
                                 "mutation through modelcheck and the "
                                 "fixed-budget fuzz baseline")
    modelcheck.add_argument("--mutation", default=None,
                            help="arm one seeded bug while exploring "
                                 "(see repro.verify.mutations)")
    modelcheck.add_argument("--out", default=None,
                            help="directory for counterexample .npz "
                                 "reproducers (repro shrink compatible)")
    modelcheck.add_argument("--jobs", type=_jobs_argument, default=None,
                            help="fork workers per frontier level "
                                 "(reports are bit-identical at any "
                                 "count; default: REPRO_JOBS)")
    modelcheck.add_argument("--symmetry", action="store_true",
                            help="orbit-minimal canonicalization over "
                                 "sound core/block relabelings "
                                 "(repro.verify.symmetry)")

    fuzz = commands.add_parser(
        "fuzz", help="differential fuzzing across the model matrix")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--budget", type=int, default=50,
                      help="number of traces (each runs on every model)")
    fuzz.add_argument("--jobs", type=_jobs_argument, default=None)
    fuzz.add_argument("--check-every", type=int, default=1,
                      help="invariant-check every N accesses")
    fuzz.add_argument("--inject", default=None,
                      choices=[k.value for k in _fault_kinds()],
                      help="fault-injection soak instead of a clean "
                           "campaign")
    fuzz.add_argument("--at", type=int, default=1,
                      help="inject on the Nth seam traversal")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip ddmin reduction of divergences")
    fuzz.add_argument("--out", default=None,
                      help="directory for minimal-reproducer .npz + "
                           "pytest regression stubs")
    fuzz.add_argument("--resume", default=None, metavar="JOURNAL",
                      help="campaign journal (created if missing): "
                           "completed runs are committed there and "
                           "skipped on re-execution")
    fuzz.add_argument("--run-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="per-run deadline; a wedged run becomes a "
                           "typed failure instead of hanging the batch")
    fuzz.add_argument("--retries", type=int, default=None,
                      help="re-executions for transient failures "
                           "(default 1; exit code 3 = partial results, "
                           "resume to finish)")

    shrink = commands.add_parser(
        "shrink", help="reduce a saved fuzz trace to a minimal repro")
    shrink.add_argument("path", help="a FuzzTrace .npz")
    shrink.add_argument("--model", default="zerodev-fuse-private-spill-shared",
                        help="model name from the fuzz matrix")
    shrink.add_argument("--inject", default=None,
                        choices=[k.value for k in _fault_kinds()],
                        help="arm this fault while shrinking")
    shrink.add_argument("--at", type=int, default=1)
    shrink.add_argument("--out", default=None,
                        help="directory for the reduced artifacts")

    report = commands.add_parser(
        "report", help="render a trace report, or rebuild "
                       "EXPERIMENTS.md from archived results")
    report.add_argument("path", nargs="?", default=None,
                        help="a *.jsonl event trace, or (with --html) "
                             "a service job id / job directory (omit "
                             "to rebuild EXPERIMENTS.md)")
    report.add_argument("--html", action="store_true",
                        help="write a self-contained HTML report "
                             "instead of the terminal rendering")
    report.add_argument("--out", default=None,
                        help="output path for --html on a trace "
                             "(default: alongside the trace)")
    report.add_argument("--root", default=None,
                        help="service root for resolving a job id "
                             f"(default: ${_SERVICE_ROOT_ENV} or "
                             ".repro-service)")

    submit = commands.add_parser(
        "submit", help="submit a JSON job to the campaign service")
    submit.add_argument("kind", choices=("fuzz", "sweep", "figure"))
    submit.add_argument("params", nargs="?", default=None,
                        help="job parameters as a JSON object, e.g. "
                             "'{\"budget\": 50, \"seed\": 1}'")
    submit.add_argument("--root", default=None,
                        help="service root directory (default: "
                             f"${_SERVICE_ROOT_ENV} or .repro-service)")

    work = commands.add_parser(
        "work", help="run one service worker (start several for a "
                     "fleet; hosts may share the root)")
    work.add_argument("--root", default=None)
    work.add_argument("--worker-id", default=None,
                      help="override the hostname-pid worker id")
    work.add_argument("--lease-ttl", type=float, default=30.0,
                      help="seconds without a heartbeat before a "
                           "dead worker's lease is reclaimed")
    work.add_argument("--poll", type=float, default=0.5,
                      help="idle polling interval in seconds")
    work.add_argument("--once", action="store_true",
                      help="process a single item, then exit")
    work.add_argument("--until-idle", action="store_true",
                      help="exit when no work is pending or in flight")
    work.add_argument("--max-items", type=int, default=None,
                      help="exit after this many items")

    status = commands.add_parser("status",
                                 help="show one service job's state")
    status.add_argument("job", help="job id (see 'repro jobs')")
    status.add_argument("--root", default=None)

    jobs_cmd = commands.add_parser("jobs",
                                   help="list the service's jobs")
    jobs_cmd.add_argument("--root", default=None)

    trace = commands.add_parser(
        "trace", help="generate a trace bundle, or (with a .jsonl PATH "
                      "or --events) run it with event tracing")
    trace.add_argument("app")
    trace.add_argument("path")
    trace.add_argument("--accesses", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--rate", action="store_true",
                       help="rate (multi-programmed) instead of "
                            "multi-threaded")
    trace.add_argument("--events", action="store_true",
                       help="run with event tracing; PATH receives the "
                            "JSONL event stream")
    trace.add_argument("--protocol", default="zerodev",
                       choices=[p.value for p in Protocol],
                       help="protocol for --events runs")
    trace.add_argument("--ratio", type=float, default=0.0,
                       help="directory ratio R for --events runs "
                            "(0 = no directory for ZeroDEV)")
    trace.add_argument("--policy", default="fuse-private-spill-shared",
                       choices=[p.value for p in DirCachingPolicy],
                       help="entry-caching policy for --events runs")
    trace.add_argument("--epoch", type=int, default=1000,
                       help="accesses per time-series epoch")

    simulate = commands.add_parser("simulate",
                                   help="run a saved trace bundle")
    simulate.add_argument("path")
    simulate.add_argument("--protocol", default="zerodev",
                          choices=[p.value for p in Protocol])
    simulate.add_argument("--ratio", type=float, default=0.0,
                          help="directory ratio R (0 = no directory for "
                               "ZeroDEV, 1.0 for others)")
    simulate.add_argument("--policy", default="fuse-private-spill-shared",
                          choices=[p.value for p in DirCachingPolicy])
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _command_list,
        "run": _command_run,
        "demo": _command_demo,
        "verify": _command_verify,
        "modelcheck": _command_modelcheck,
        "fuzz": _command_fuzz,
        "shrink": _command_shrink,
        "report": _command_report,
        "trace": _command_trace,
        "simulate": _command_simulate,
        "submit": _command_submit,
        "work": _command_work,
        "status": _command_status,
        "jobs": _command_jobs,
    }[args.command]
    try:
        return handler(args)
    except ConfigError as exc:
        # e.g. a malformed REPRO_JOBS read mid-experiment: one clear
        # line, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
