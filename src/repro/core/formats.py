"""Bit-level formats of spilled and fused directory entries.

These encoders/decoders implement Figures 9 and 11 of the paper and the
home-memory segment layout of Section III-D. The timing simulator carries
directory entries as Python objects, but the formats here are used to

* verify that every configuration actually fits its bit budget (e.g. the
  ``512 >= M * (N + 1) + (M + 2)`` bound for housing socket-level entries),
* account storage overheads, and
* round-trip-test the encodings (a fused block must be reconstructible
  from the preserved low-order bits exactly as the protocol claims).

Bit layout conventions (least significant bit first):

Spilled entry (both policies, Figure 9a / 11a)::

    b0 = 1 (spilled); b1.. = the directory entry payload

FPSS fused block (Figure 9b)::

    b0 = 0 (fused); b1 = block dirty; b2 = busy;
    b3..b_{2+ceil(log2 N)} = owner; rest = block data

FuseAll fused block (Figure 11b/c)::

    b0 = 0; b1 = dirty; b2 = busy; b3 = state (M/E vs S);
    then owner (ceil(log2 N) bits) or sharer vector (N bits); rest = data

Home-memory housed entry (Section III-D)::

    one (N+1)-bit segment per socket: N sharer bits + 1 state bit
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.coherence.entry import DirectoryEntry, DirState
from repro.common.addressing import BLOCK_BYTES
from repro.common.errors import ConfigError

BLOCK_BITS = BLOCK_BYTES * 8


def owner_bits(n_cores: int) -> int:
    """Bits needed to encode an owner core id."""
    return max(1, math.ceil(math.log2(n_cores)))


def fpss_corrupted_bits(n_cores: int) -> int:
    """Low-order bits corrupted by an FPSS fused entry: F/Sp + D + B +
    owner = 3 + ceil(log2 N) (Section III-C2)."""
    return 3 + owner_bits(n_cores)


def fuseall_corrupted_bits(n_cores: int, state: DirState) -> int:
    """Bits corrupted by a FuseAll fused entry: 4 + ceil(log2 N) for M/E,
    4 + N for S (Section III-C3)."""
    if state is DirState.ME:
        return 4 + owner_bits(n_cores)
    return 4 + n_cores


# ----------------------------------------------------------------------
# Spilled entries (full LLC block)
# ----------------------------------------------------------------------
def encode_spilled(entry: DirectoryEntry, n_cores: int) -> int:
    """Pack ``entry`` into a 512-bit LLC block image (Figure 9a)."""
    payload = _entry_payload(entry, n_cores)
    if 1 + _payload_bits(n_cores) > BLOCK_BITS:
        raise ConfigError(f"{n_cores}-core entry exceeds one LLC block")
    return payload << 1 | 1     # b0 = 1: spilled


def decode_spilled(image: int, n_cores: int) -> DirectoryEntry:
    """Inverse of :func:`encode_spilled` (block number not recoverable
    from the image; the caller supplies it via the frame tag)."""
    if not image & 1:
        raise ValueError("image is not a spilled entry (b0 == 0)")
    return _entry_from_payload(image >> 1, n_cores)


# ----------------------------------------------------------------------
# FPSS fused blocks
# ----------------------------------------------------------------------
def encode_fused_fpss(entry: DirectoryEntry, block_data: int, dirty: bool,
                      n_cores: int, busy: bool = False) -> int:
    """Overwrite the low bits of ``block_data`` with an FPSS fused entry.

    Only M/E entries may fuse under FPSS (the Section III-C2 invariant);
    the owner field fully identifies the copy-holder.
    """
    if entry.state is not DirState.ME or entry.owner is None:
        raise ValueError("FPSS fuses only M/E entries")
    nbits = fpss_corrupted_bits(n_cores)
    image = block_data >> nbits << nbits    # clear the corrupted bits
    fields = entry.owner << 3 | int(busy) << 2 | int(dirty) << 1 | 0
    return image | fields


def decode_fused_fpss(image: int, block: int, n_cores: int):
    """Return (entry, dirty, busy, preserved-data-high-bits)."""
    if image & 1:
        raise ValueError("image is a spilled entry, not fused")
    dirty = bool(image >> 1 & 1)
    busy = bool(image >> 2 & 1)
    owner = image >> 3 & (1 << owner_bits(n_cores)) - 1
    nbits = fpss_corrupted_bits(n_cores)
    entry = DirectoryEntry(block, DirState.ME, owner=owner)
    return entry, dirty, busy, image >> nbits

def reconstruct_fused_fpss(image: int, low_bits: int, n_cores: int) -> int:
    """Rebuild the original block from a fused image plus the low-order
    bits returned by the owner's eviction notice (Section III-C2)."""
    nbits = fpss_corrupted_bits(n_cores)
    mask = (1 << nbits) - 1
    return image >> nbits << nbits | low_bits & mask


# ----------------------------------------------------------------------
# FuseAll fused blocks
# ----------------------------------------------------------------------
def encode_fused_fuseall(entry: DirectoryEntry, block_data: int,
                         dirty: bool, n_cores: int,
                         busy: bool = False) -> int:
    """FuseAll fused image: M/E stores the owner, S the sharer vector."""
    nbits = fuseall_corrupted_bits(n_cores, entry.state)
    image = block_data >> nbits << nbits
    if entry.state is DirState.ME:
        assert entry.owner is not None
        tracking = entry.owner
        state_bit = 0
    else:
        tracking = entry.sharers
        state_bit = 1
    fields = (tracking << 4 | state_bit << 3 | int(busy) << 2
              | int(dirty) << 1 | 0)
    return image | fields


def decode_fused_fuseall(image: int, block: int, n_cores: int):
    """Return (entry, dirty, busy)."""
    if image & 1:
        raise ValueError("image is a spilled entry, not fused")
    dirty = bool(image >> 1 & 1)
    busy = bool(image >> 2 & 1)
    shared = bool(image >> 3 & 1)
    if shared:
        sharers = image >> 4 & (1 << n_cores) - 1
        entry = DirectoryEntry(block, DirState.S, sharers=sharers)
    else:
        owner = image >> 4 & (1 << owner_bits(n_cores)) - 1
        entry = DirectoryEntry(block, DirState.ME, owner=owner)
    return entry, dirty, busy


# ----------------------------------------------------------------------
# Home-memory housing (Section III-D)
# ----------------------------------------------------------------------
def max_sockets(n_cores: int) -> int:
    """Sockets whose intra-socket entries fit one 64-byte memory block
    with full-map vectors: floor(512 / (N + 1))."""
    return BLOCK_BITS // (n_cores + 1)


def max_sockets_with_socket_entry(n_cores: int) -> int:
    """Solution 2 bound (Section III-D5): M(N+1) + (M+2) <= 512."""
    return (BLOCK_BITS - 2) // (n_cores + 2)


@dataclass
class HousedBlockImage:
    """A home-memory block overwritten with per-socket entry segments."""

    n_cores: int
    n_sockets: int
    segments: List[Optional[int]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_sockets > max_sockets(self.n_cores):
            raise ConfigError(
                f"{self.n_sockets} sockets of {self.n_cores} cores do not "
                f"fit one {BLOCK_BITS}-bit memory block")
        if self.segments is None:
            self.segments = [None] * self.n_sockets

    def store(self, socket: int, entry: DirectoryEntry) -> None:
        """Place ``entry`` into the segment reserved for ``socket``."""
        self.segments[socket] = _entry_payload(entry, self.n_cores)

    def load(self, socket: int, block: int) -> Optional[DirectoryEntry]:
        payload = self.segments[socket]
        if payload is None:
            return None
        return _entry_from_payload(payload, self.n_cores, block)

    def clear(self, socket: int) -> None:
        self.segments[socket] = None

    def pack(self) -> int:
        """Serialize all segments into a single block image."""
        width = self.n_cores + 1
        image = 0
        for index, payload in enumerate(self.segments):
            if payload is not None:
                image |= payload << index * width
        return image


# ----------------------------------------------------------------------
# Shared payload helpers
# ----------------------------------------------------------------------
def _payload_bits(n_cores: int) -> int:
    return n_cores + 1


def _entry_payload(entry: DirectoryEntry, n_cores: int) -> int:
    """N sharer bits + 1 state bit (stable-state representation)."""
    if entry.sharers >> n_cores:
        raise ValueError(f"sharer vector {entry.sharers:#x} wider than "
                         f"{n_cores} cores")
    state_bit = 1 if entry.state is DirState.S else 0
    return state_bit << n_cores | entry.sharers


def _entry_from_payload(payload: int, n_cores: int,
                        block: int = 0) -> DirectoryEntry:
    sharers = payload & (1 << n_cores) - 1
    shared = bool(payload >> n_cores & 1)
    if shared:
        return DirectoryEntry(block, DirState.S, sharers=sharers)
    owner = (sharers & -sharers).bit_length() - 1 if sharers else None
    if owner is None:
        raise ValueError("M/E payload with empty sharer vector")
    return DirectoryEntry(block, DirState.ME, owner=owner, sharers=sharers)
