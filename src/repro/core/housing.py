"""Home-memory housing of evicted directory entries (Section III-D).

When a live fused/spilled entry is evicted from the LLC, ZeroDEV
overwrites the *home memory copy* of the tracked block with the entry --
safe because at least one private copy exists. The block's memory image is
then *corrupted* until either (a) a real-data writeback of the block
reaches memory, or (b) the last private copy is evicted, at which point
the block is retrieved from the evicting core and restored.

:class:`MemoryHousing` is the bookkeeping for one socket's view: which
blocks currently house an entry (``housed``) and which memory images are
garbage (``garbage``, a superset of ``housed``: an entry may be promoted
back on-chip while the memory image remains corrupt).

:class:`DirEvictBitmap` implements the paper's *solution 2* for
socket-level directory eviction (Section III-D5): one DirEvict bit per
memory block recording that the block's reserved partition holds an
evicted socket-level entry, for a constant 0.2% DRAM overhead.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.coherence.entry import DirectoryEntry
from repro.common.errors import ProtocolInvariantError


class MemoryHousing:
    """Tracks entry-housing and corruption state of home memory blocks."""

    def __init__(self) -> None:
        self._housed: Dict[int, DirectoryEntry] = {}
        self._garbage: Set[int] = set()

    # ------------------------------------------------------------------
    def house(self, block: int, entry: DirectoryEntry) -> None:
        """Overwrite ``block``'s memory image with ``entry``."""
        if block in self._housed:
            raise ProtocolInvariantError(
                f"block {block:#x} already houses an entry")
        self._housed[block] = entry
        self._garbage.add(block)

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        return self._housed.get(block)

    def promote(self, block: int) -> DirectoryEntry:
        """Remove the housed entry (being re-cached on chip). The memory
        image stays garbage until real data is written."""
        entry = self._housed.pop(block, None)
        if entry is None:
            raise ProtocolInvariantError(
                f"no housed entry for block {block:#x}")
        return entry

    # ------------------------------------------------------------------
    def is_garbage(self, block: int) -> bool:
        return block in self._garbage

    def heal(self, block: int) -> None:
        """A real-data write reached memory: the image is valid again."""
        self._garbage.discard(block)
        if block in self._housed:
            raise ProtocolInvariantError(
                f"healing block {block:#x} while it still houses an entry")

    def restore(self, block: int) -> None:
        """Last private copy retrieved and written over the entry."""
        self._housed.pop(block, None)
        self._garbage.discard(block)

    # ------------------------------------------------------------------
    @property
    def housed_count(self) -> int:
        return len(self._housed)

    @property
    def garbage_count(self) -> int:
        return len(self._garbage)

    def housed_blocks(self):
        return self._housed.keys()

    def garbage_blocks(self):
        return iter(self._garbage)


class DirEvictBitmap:
    """Per-block DirEvict bits with a small on-chip bit cache.

    The paper sizes an 8 KB cache to cover the DirEvict bits of 64K blocks
    (4 MB of home memory). We model the cache as covering a contiguous
    window of recently touched bit-groups; accesses outside the window
    cost a memory lookup.
    """

    GROUP_BLOCKS = 512                # bits cached per 64-byte cache line

    def __init__(self, cached_groups: int = 128) -> None:
        self._bits: Set[int] = set()
        self._cached_groups = cached_groups
        self._resident: Dict[int, None] = {}   # ordered LRU of group ids
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def _touch_group(self, block: int) -> bool:
        """Returns True on a bit-cache hit."""
        group = block // self.GROUP_BLOCKS
        hit = group in self._resident
        if hit:
            self.cache_hits += 1
            self._resident.pop(group)
        else:
            self.cache_misses += 1
            if len(self._resident) >= self._cached_groups:
                oldest = next(iter(self._resident))
                self._resident.pop(oldest)
        self._resident[group] = None
        return hit

    def set(self, block: int) -> bool:
        self._bits.add(block)
        return self._touch_group(block)

    def clear(self, block: int) -> bool:
        self._bits.discard(block)
        return self._touch_group(block)

    def test(self, block: int):
        """Return (bit value, cache hit?)."""
        return block in self._bits, self._touch_group(block)

    def __len__(self) -> int:
        return len(self._bits)
