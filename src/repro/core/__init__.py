"""The paper's contribution: the ZeroDEV protocol and its mechanisms."""

from repro.core.housing import DirEvictBitmap, MemoryHousing
from repro.core.protocol import ZeroDEVSystem

__all__ = ["DirEvictBitmap", "MemoryHousing", "ZeroDEVSystem"]
