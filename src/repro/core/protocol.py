"""The ZeroDEV protocol (Section III): a DEV-free coherence system.

:class:`ZeroDEVSystem` extends the baseline socket with the paper's two
mechanisms:

1. **Directory-entry caching in the LLC** (Section III-C). The sparse
   directory -- if present at all -- is *replacement-disabled*: a new
   entry takes an invalid way or overflows straight into the LLC, either
   *fused* into the tracked block's own frame or *spilled* into a frame of
   its own, according to the configured :class:`DirCachingPolicy`
   (SpillAll / FusePrivateSpillShared / FuseAll).

2. **Invalidation-free entry eviction from the LLC** (Section III-D). A
   live entry evicted from the LLC overwrites the home-memory image of its
   block (``WB_DE``); the image is *corrupted* until healed by a real-data
   writeback or restored from the last evicting core. Demand accesses that
   find their entry in memory promote it back on chip (one extra cycle to
   extract, plus the DRAM read); eviction notices use the ``GET_DE``
   read-update-writeback flow instead.

The result, asserted at runtime: the private core caches **never** receive
an invalidation caused by directory-entry eviction, for any directory size
including no directory at all.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.caches.block import LLCLine, LineKind, MESI
from repro.caches.llc import LLCBank
from repro.caches.private_cache import EvictionNotice
from repro.coherence.directory import SparseDirectory
from repro.coherence.entry import DirectoryEntry, DirState, EntryLocation
from repro.coherence.protocol import CMPSystem
from repro.common.config import (DirCachingPolicy, LLCDesign, Protocol,
                                 SystemConfig)
from repro.common.errors import ProtocolInvariantError
from repro.common.messages import MessageType as MT
from repro.core.housing import MemoryHousing
from repro.obs.events import EventKind, InvCause


class ZeroDEVSystem(CMPSystem):
    """One socket running the ZeroDEV protocol."""

    PROTOCOL = Protocol.ZERODEV

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self._housing = MemoryHousing()
        self._policy = config.dir_caching

    def _build_directory(self) -> Optional[SparseDirectory]:
        dcfg = self.config.directory
        if not dcfg.present:
            return None
        # ZeroDEV normally disables sparse-directory replacement: strictly
        # better, because an entry then disturbs at most one structure in
        # its whole life (Section III-C4). The replacement-enabled variant
        # is kept for the ablation study: a directory victim is relocated
        # to the LLC (never invalidated), disturbing two structures.
        return SparseDirectory(
            self.config.directory_entries, dcfg.ways,
            unbounded=dcfg.unbounded,
            replacement_disabled=not dcfg.zerodev_replacement_enabled)

    # ------------------------------------------------------------------
    # Entry lookup
    # ------------------------------------------------------------------
    def _lookup_in_socket(self, block: int) -> Optional[DirectoryEntry]:
        """Sparse directory, then spilled frame, then fused frame."""
        if self.directory is not None:
            entry = self.directory.lookup(block)
            if entry is not None:
                return entry
        bank = self.bank_of(block)
        spill = bank.lookup_spill(block)      # the entry is being accessed
        if spill is not None:
            return spill.entry
        data = bank.peek_data(block)
        if data is not None and data.kind is LineKind.FUSED:
            return data.entry
        return None

    def _find_entry(self, block: int
                    ) -> Tuple[Optional[DirectoryEntry], int]:
        entry = self._lookup_in_socket(block)
        if entry is not None:
            return entry, 0
        if self._housing.peek(block) is None:
            return None, 0
        # The home-memory image is corrupted and holds the entry: read the
        # block, extract the entry (one additional cycle, Section III-D3),
        # and re-cache it on chip -- which also preserves the case-(iiib)
        # invariant when the data block is subsequently re-installed.
        self.stats.corrupted_block_reads += 1
        extra = self._entry_memory_read(block) + 1
        entry = self._housing.promote(block)
        if self.obs is not None:
            self.obs.emit(EventKind.ENTRY_EXTRACT, block=block)
        self._place_entry(entry)
        return entry, extra

    def _find_entry_for_notice(self, block: int, bank: LLCBank
                               ) -> Optional[DirectoryEntry]:
        """Eviction notices use GET_DE (Section III-D4): the housed entry
        is read, updated in place, and written back -- not promoted."""
        entry = self._lookup_in_socket(block)
        if entry is not None:
            return entry
        entry = self._housing.peek(block)
        if entry is None:
            return None
        self.stats.get_de_messages += 1
        self.stats.record_message(MT.GET_DE)
        self.stats.record_message(MT.DE_DATA)
        if self.obs is not None:
            self.obs.emit(EventKind.GET_DE, block=block)
        self._entry_memory_read(block)
        return entry

    def _notice_done(self, entry: DirectoryEntry, bank: LLCBank) -> None:
        if entry.location is EntryLocation.MEMORY:
            # Step 6 of Figure 16: the updated entry is written back.
            self._entry_memory_write(entry)

    # ------------------------------------------------------------------
    # Memory-side seams (re-routed by the multi-socket layer)
    # ------------------------------------------------------------------
    def _entry_memory_read(self, block: int) -> int:
        """Read the corrupted home block holding a directory entry."""
        if self.memory_side is not None:
            return self.memory_side.entry_read(self, block)
        return self.dram.read(block)

    def _entry_memory_write(self, entry: DirectoryEntry) -> int:
        """Write a (new or updated) housed entry to the home block."""
        if self.memory_side is not None:
            return self.memory_side.entry_write(self, entry)
        return self.dram.write(entry.block, from_entry_eviction=True)

    def _peek_entry(self, block: int) -> Optional[DirectoryEntry]:
        if self.directory is not None:
            entry = self.directory.peek(block)
            if entry is not None:
                return entry
        bank = self.bank_of(block)
        spill = bank.peek_spill(block)
        if spill is not None:
            return spill.entry
        data = bank.peek_data(block)
        if data is not None and data.kind is LineKind.FUSED:
            return data.entry
        return self._housing.peek(block)

    # ------------------------------------------------------------------
    # Entry allocation and placement
    # ------------------------------------------------------------------
    def _allocate_entry(self, block: int, state: DirState, requester: int,
                        owner: Optional[int], bank: LLCBank
                        ) -> DirectoryEntry:
        self.stats.dir_allocations += 1
        entry = DirectoryEntry(block, state, owner=owner,
                               sharers=1 << requester)
        self._place_entry(entry)
        return entry

    def _place_entry(self, entry: DirectoryEntry) -> None:
        """Sparse directory if an invalid way exists, else the LLC.

        With the replacement-enabled ablation variant, a full set instead
        evicts its NRU victim and relocates it to the LLC -- no DEVs
        either way, but the entry disturbs two structures over its life
        (the design Section III-C4 argues against).
        """
        if self.directory is not None:
            if self.directory.has_room(entry.block):
                self.directory.insert(entry)
                return
            if self.config.directory.zerodev_replacement_enabled:
                victim = self.directory.choose_victim(entry.block)
                self.directory.remove(victim.block)
                self.stats.dir_evictions += 1
                self._place_entry_in_llc(victim,
                                         self.bank_of(victim.block))
                self.directory.insert(entry)
                return
        self._place_entry_in_llc(entry, self.bank_of(entry.block))

    def _place_entry_in_llc(self, entry: DirectoryEntry,
                            bank: LLCBank) -> None:
        """Apply the configured directory-entry caching policy.

        Under EPD, owned blocks are not LLC-resident, so fusion is never
        possible (Section III-E) -- every overflowing entry spills.
        """
        if (self._policy is not DirCachingPolicy.SPILL_ALL
                and self.config.llc_design is not LLCDesign.EPD):
            fuse_ok = (entry.state is DirState.ME
                       or self._policy is DirCachingPolicy.FUSE_ALL)
            if fuse_ok and bank.fuse(entry.block, entry):
                self.stats.entries_fused += 1
                return
        self._spill(entry, bank)

    def _spill(self, entry: DirectoryEntry, bank: LLCBank) -> None:
        """Allocate a full LLC frame for ``entry`` in its block's set."""
        self.stats.entries_spilled += 1
        entry.location = EntryLocation.LLC_SPILLED
        victim = bank.insert(LLCLine(entry.block, LineKind.SPILLED,
                                     entry=entry))
        if victim is not None:
            self._handle_llc_victim(bank, victim)

    # ------------------------------------------------------------------
    # Entry lifecycle transitions (the FPSS invariants, Section III-C2)
    # ------------------------------------------------------------------
    def _entry_state_changed(self, entry: DirectoryEntry,
                             old_state: DirState, bank: LLCBank) -> None:
        if entry.state is old_state:
            return
        if self._policy is not DirCachingPolicy.FPSS:
            return
        if (entry.state is DirState.ME
                and entry.location is EntryLocation.LLC_SPILLED
                and self.config.llc_design is not LLCDesign.EPD):
            # S -> M/E with a spilled entry: fuse it with the block and
            # free the spill frame, keeping the read fast-path invariant.
            line = bank.peek_data(entry.block)
            if line is not None and line.kind is LineKind.DATA:
                bank.free_spill(entry.block)
                fused = bank.fuse(entry.block, entry)
                assert fused
                self.stats.spill_to_fuse += 1
        elif (entry.state is DirState.S
                and entry.location is EntryLocation.LLC_FUSED):
            # M/E -> S with a fused entry: the block is being
            # reconstructed (the busy-clear carries the low bits), and the
            # entry is spilled into the same set.
            bank.unfuse(entry.block)
            self.stats.fuse_to_spill += 1
            self._spill(entry, bank)

    def _data_allocated(self, bank: LLCBank, block: int) -> None:
        """A DATA frame was just installed: re-fuse a spilled entry when
        the policy wants it fused (FuseAll always; FPSS for M/E)."""
        if self.config.llc_design is LLCDesign.EPD:
            return
        spill = bank.peek_spill(block)
        if spill is None:
            return
        entry = spill.entry
        assert entry is not None
        fuse_ok = (self._policy is DirCachingPolicy.FUSE_ALL
                   or (self._policy is DirCachingPolicy.FPSS
                       and entry.state is DirState.ME))
        if fuse_ok:
            bank.free_spill(block)
            fused = bank.fuse(block, entry)
            assert fused
            self.stats.spill_to_fuse += 1

    def _data_arrived_at_fused(self, bank: LLCBank, line: LLCLine) -> None:
        """Fresh data written around the fused bits: nothing to do -- the
        frame keeps both the entry and the (refreshed) data."""

    # ------------------------------------------------------------------
    # Freeing entries
    # ------------------------------------------------------------------
    def _free_entry(self, entry: DirectoryEntry, bank: LLCBank,
                    evictor_version: int = 0,
                    evictor_core: Optional[int] = None) -> None:
        block = entry.block
        location = entry.location
        if location is EntryLocation.SPARSE:
            assert self.directory is not None
            self.directory.remove(block)
        elif location is EntryLocation.LLC_SPILLED:
            bank.free_spill(block)
        elif location is EntryLocation.LLC_FUSED:
            bank.unfuse(block)
            if (self._policy is DirCachingPolicy.FUSE_ALL
                    and entry.state is DirState.S
                    and evictor_core is not None):
                # Retrieve the 4+N low bits from the last sharer's
                # eviction buffer to reconstruct the block (Sec III-C3).
                self.mesh.send(MT.EVICT_ACK, self.mesh.core_to_bank(
                    evictor_core, bank.bank_id))
                self.mesh.send(MT.EVICT_CLEAN_BITS, self.mesh.core_to_bank(
                    evictor_core, bank.bank_id))
        elif location is not EntryLocation.MEMORY:
            raise ProtocolInvariantError(
                f"entry for block {block:#x} in unknown location")
        if location is EntryLocation.MEMORY:
            if "skip-corrupt-restore" in self.mutations:
                # Seeded bug: the restore message is dropped -- the entry
                # bits stay housed in home memory (garbage marker and
                # all) while the protocol forgets the entry existed.
                return
            self._housing.restore(block)
        if self.memory_side is not None:
            # Multi-socket: only the home knows whether this was the
            # system-wide last copy; the presence-lost notice that follows
            # carries the data for a potential restore.
            return
        if self._housing.is_garbage(block) or (
                location is EntryLocation.MEMORY):
            # The last private copy is going away while home memory is
            # corrupted: the block is retrieved from the evicting core and
            # written over the housed entry (Section III-D4).
            self._restore_memory(block, evictor_version, evictor_core,
                                 bank)

    def _restore_memory(self, block: int, version: int,
                        evictor_core: Optional[int],
                        bank: LLCBank) -> None:
        self.stats.corrupted_blocks_restored += 1
        if self.obs is not None:
            self.obs.emit(EventKind.MEM_RESTORE, block=block)
        if evictor_core is not None:
            self.stats.record_message(MT.SOCKET_RESTORE)
        self.dram.write(block)
        self._dram_version[block] = version
        self._housing.restore(block)

    # ------------------------------------------------------------------
    # LLC eviction handling (the second ZeroDEV mechanism)
    # ------------------------------------------------------------------
    def _handle_llc_victim(self, bank: LLCBank, victim: LLCLine) -> None:
        if victim.kind is LineKind.DATA:
            super()._handle_llc_victim(bank, victim)
            return
        self.stats.llc_evictions += 1
        entry = victim.entry
        assert entry is not None
        if self.config.llc_design is LLCDesign.INCLUSIVE:
            if victim.kind is LineKind.SPILLED:
                self._inclusive_spilled_eviction(bank, victim, entry)
            else:
                self._inclusive_fused_eviction(bank, victim, entry)
            return
        if self._housing.peek(victim.block) is not None:
            raise ProtocolInvariantError(
                f"block {victim.block:#x} would house two entries")
        # The fused frame's data (if any) survives in the private caches
        # the entry is tracking; only the entry needs a home.
        self._writeback_entry_to_memory(entry)

    def _inclusive_spilled_eviction(self, bank: LLCBank, victim: LLCLine,
                                    entry: DirectoryEntry) -> None:
        """Inclusive LLC: a spilled-entry victim means the block itself
        must go -- inclusion invalidates the private copies, the entry
        dies with them, and the block's own frame is freed as well, so
        no entry is ever written to memory (Section III-F)."""
        data = bank.peek_data(victim.block)
        version = data.version if data is not None else 0
        dirty = data.dirty if data is not None else False
        for sharer in list(entry.sharer_cores()):
            self.stats.inclusion_invalidations += 1
            self.stats.record_message(MT.INV)
            self.stats.record_message(MT.INV_ACK)
            line = self.cores[sharer].invalidate(victim.block,
                                                 cause=InvCause.INCLUSION)
            assert line is not None
            if line.state is MESI.M:
                version, dirty = line.version, True
            entry.remove_sharer(sharer)
        if data is not None:
            bank.remove(data)
        if dirty:
            self.stats.llc_writebacks_to_dram += 1
            if self.memory_side is not None:
                self.memory_side.writeback(self, victim.block, version)
            else:
                self.dram.write(victim.block)
                self._dram_version[victim.block] = version
                self._memory_healed(victim.block)
        self._presence_lost(victim.block, version)

    def _inclusive_fused_eviction(self, bank: LLCBank, victim: LLCLine,
                                  entry: DirectoryEntry) -> None:
        """Inclusive LLC: evicting a fused frame back-invalidates the
        private copies, which frees the entry -- so no directory entry is
        ever written to memory (Section III-F)."""
        version, dirty = victim.version, victim.dirty
        for sharer in list(entry.sharer_cores()):
            self.stats.inclusion_invalidations += 1
            self.stats.record_message(MT.INV)
            self.stats.record_message(MT.INV_ACK)
            line = self.cores[sharer].invalidate(victim.block,
                                                 cause=InvCause.INCLUSION)
            assert line is not None
            if line.state is MESI.M:
                version, dirty = line.version, True
            entry.remove_sharer(sharer)
        if dirty:
            self.stats.llc_writebacks_to_dram += 1
            if self.memory_side is not None:
                self.memory_side.writeback(self, victim.block, version)
            else:
                self.dram.write(victim.block)
                self._dram_version[victim.block] = version
                self._memory_healed(victim.block)
        self._presence_lost(victim.block, version)

    def _writeback_entry_to_memory(self, entry: DirectoryEntry) -> None:
        """WB_DE: the evicted live entry overwrites its home block."""
        if self.config.llc_design is LLCDesign.INCLUSIVE:
            raise ProtocolInvariantError(
                "inclusive LLC must never evict a live directory entry")
        self.stats.entry_llc_evictions += 1
        self.stats.wb_de_messages += 1
        self.stats.record_message(MT.WB_DE)
        if self.obs is not None:
            self.obs.emit(EventKind.ENTRY_WB_DE, block=entry.block)
        entry.location = EntryLocation.MEMORY
        self._housing.house(entry.block, entry)
        self._entry_memory_write(entry)

    def _memory_healed(self, block: int) -> None:
        if self._housing.peek(block) is not None:
            raise ProtocolInvariantError(
                f"real data written over the housed entry of {block:#x}")
        if self._housing.is_garbage(block):
            self._housing.heal(block)
            if self.obs is not None:
                self.obs.emit(EventKind.MEM_HEAL, block=block)

    def _memory_fetch_latency(self, block: int) -> int:
        if self._housing.is_garbage(block):
            raise ProtocolInvariantError(
                f"demand fetch of corrupted home block {block:#x}")
        return super()._memory_fetch_latency(block)

    # ------------------------------------------------------------------
    # Critical-path effects of the caching policies
    # ------------------------------------------------------------------
    def _llc_serves_shared_read(self, entry: DirectoryEntry,
                                llc_line: Optional[LLCLine],
                                bank: LLCBank) -> Tuple[bool, int]:
        if llc_line is None:
            return False, 0
        if llc_line.kind is LineKind.FUSED:
            # FuseAll: a fused shared block cannot supply data; the read
            # is forwarded to an elected sharer (three hops).
            self.stats.fused_read_forwards += 1
            return False, 0
        penalty = 0
        if (self._policy is DirCachingPolicy.SPILL_ALL
                and entry.location is EntryLocation.LLC_SPILLED):
            # Two tag matches: SpillAll reads the entry out of the data
            # array before the block (Section III-C1).
            self.stats.extra_data_array_reads += 1
            penalty = self._lat.llc_data
        return True, penalty

    def _clean_notice_kind(self, notice: EvictionNotice) -> MT:
        if notice.state is MESI.E:
            # E-state notices carry the 3 + ceil(log2 N) low-order bits
            # used to reconstruct a fused frame (Section III-C2).
            return MT.EVICT_CLEAN_BITS
        return MT.EVICT_CLEAN

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        if self.stats.dev_invalidations or self.stats.dev_events:
            raise ProtocolInvariantError(
                "ZeroDEV generated directory eviction victims")
        for bank in self.banks:
            for frame in bank.all_frames():
                if frame.kind is LineKind.SPILLED:
                    entry = frame.entry
                    assert entry is not None
                    if entry.location is not EntryLocation.LLC_SPILLED:
                        raise ProtocolInvariantError(
                            f"spill frame/location mismatch for block "
                            f"{frame.block:#x}")
                    if (self._policy is DirCachingPolicy.FPSS
                            and entry.state is DirState.ME
                            and bank.peek_data(frame.block) is not None):
                        raise ProtocolInvariantError(
                            f"FPSS invariant: M/E entry of resident block "
                            f"{frame.block:#x} is spilled, not fused")
                elif frame.kind is LineKind.FUSED:
                    entry = frame.entry
                    assert entry is not None
                    if entry.location is not EntryLocation.LLC_FUSED:
                        raise ProtocolInvariantError(
                            f"fused frame/location mismatch for block "
                            f"{frame.block:#x}")
                    if (self._policy is DirCachingPolicy.FPSS
                            and entry.state is not DirState.ME):
                        raise ProtocolInvariantError(
                            f"FPSS invariant: fused entry of block "
                            f"{frame.block:#x} is not M/E")
        for block in self._housing.housed_blocks():
            if self.bank_of(block).peek_data(block) is not None:
                raise ProtocolInvariantError(
                    f"case (iiib): block {block:#x} resident in LLC while "
                    "its entry is housed in memory")
