"""Per-step structural checks shared by the fuzz oracle and modelcheck.

One invariant vocabulary, two drivers: :mod:`repro.verify.oracle` runs
these after every ``check_every`` accesses of a fuzz trace, and
:mod:`repro.verify.modelcheck` runs them on every transition of the
bounded-exhaustive frontier.  Keeping the checks here (rather than
private to the oracle) guarantees the two verification layers can never
drift apart on what "structurally well-formed" means.

The checks cover what the systems' own ``check_invariants`` does not:

* LLC set occupancy and frame/index consistency, including the spill
  index.
* The spLRU ordering invariant -- a resident spilled entry sits *above*
  (more recent than) its block so the block ages out first
  (Section III-D1).
* Housed-implies-garbage and the case-(iiib) ban on a block being
  LLC-resident while its entry is housed in memory (Section III-D2).
* The single-shared-shadow invariant for multi-socket compositions (see
  :func:`shadow_of`).
"""

from __future__ import annotations

from repro.caches.block import LineKind, MESI
from repro.common.config import LLCReplacement, Protocol
from repro.common.errors import ProtocolInvariantError
from repro.verify.models import ModelSpec


class DivergenceError(ProtocolInvariantError):
    """A model-level verification check failed (the model diverged from
    the specified behaviour, even though no protocol assertion fired)."""


def each_socket(spec: ModelSpec, system):
    """The CMP systems of ``system`` (itself, or its sockets)."""
    if spec.n_sockets == 1:
        yield system
    else:
        yield from system.sockets


def check_llc_structure(spec: ModelSpec, system) -> None:
    """Occupancy, duplicate-frame, spill-index, and spLRU-order checks."""
    sp_lru = spec.config.llc_replacement is LLCReplacement.SP_LRU
    for socket in each_socket(spec, system):
        for bank in socket.banks:
            spilled_seen = 0
            for set_idx in range(bank.sets):
                frames = bank.frames_in_set(set_idx)
                if len(frames) > bank.ways:
                    raise DivergenceError(
                        f"bank {bank.bank_id} set {set_idx} holds "
                        f"{len(frames)} frames in {bank.ways} ways")
                data_pos, spill_pos = {}, {}
                for pos, line in enumerate(frames):
                    bucket = (spill_pos
                              if line.kind is LineKind.SPILLED
                              else data_pos)
                    if line.block in bucket:
                        raise DivergenceError(
                            f"duplicate {line.kind.name} frame for block "
                            f"{line.block:#x} in bank {bank.bank_id}")
                    bucket[line.block] = pos
                    if line.kind is LineKind.SPILLED:
                        spilled_seen += 1
                        if bank.peek_spill(line.block) is not line:
                            raise DivergenceError(
                                f"spilled frame for block {line.block:#x} "
                                "missing from the spill index")
                if not sp_lru:
                    continue
                for block, pos in spill_pos.items():
                    # spLRU invariant: a resident spilled entry sits
                    # *above* (more recent than) its block, so the
                    # block ages out first (Section III-D1).
                    if block in data_pos and pos < data_pos[block]:
                        raise DivergenceError(
                            f"spLRU order inverted for block {block:#x}: "
                            "spilled entry is older than its block")
            if bank.spilled_count() != spilled_seen:
                raise DivergenceError(
                    f"bank {bank.bank_id} spill index tracks "
                    f"{bank.spilled_count()} entries but "
                    f"{spilled_seen} spilled frames are resident")


def check_housing(spec: ModelSpec, system) -> None:
    """Housed-implies-garbage and the case-(iiib) residency ban."""
    for socket in each_socket(spec, system):
        housing = getattr(socket, "_housing", None)
        if housing is None:
            continue
        for block in housing.housed_blocks():
            if not housing.is_garbage(block):
                raise DivergenceError(
                    f"block {block:#x} houses an entry but is not "
                    "marked corrupted")
            bank = socket.bank_of(block)
            # Case (iiib): while the entry lives in home memory the
            # block must not be LLC-resident (Section III-D2).
            if bank.peek_data(block) is not None or \
                    bank.peek_spill(block) is not None:
                raise DivergenceError(
                    f"block {block:#x} is LLC-resident while its entry "
                    "is housed in memory (case iiib)")


def check_dls(spec: ModelSpec, system) -> None:
    """DLS occupancy/housing rules (repro.baselines.dls).

    There is no directory structure and nothing ever spills or is
    housed; the LLC's DATA frames carry the sharer vectors, and
    inclusion demands that every privately cached block keeps an
    entry-bearing LLC line.
    """
    for socket in each_socket(spec, system):
        if socket.directory is not None:
            raise DivergenceError("DLS grew a directory structure")
        if getattr(socket, "_housing", None) is not None:
            raise DivergenceError("DLS must not house entries in memory")
        for bank in socket.banks:
            if bank.spilled_count():
                raise DivergenceError(
                    f"bank {bank.bank_id} holds spilled frames under DLS")
            for line in bank.all_frames():
                if line.kind is not LineKind.DATA:
                    raise DivergenceError(
                        f"DLS frame for block {line.block:#x} is "
                        f"{line.kind.name}, not DATA")
                entry = line.entry
                if entry is None:
                    continue
                if entry.block != line.block:
                    raise DivergenceError(
                        f"entry for block {entry.block:#x} rides the "
                        f"line of block {line.block:#x}")
                if entry.empty:
                    raise DivergenceError(
                        f"empty entry still attached to block "
                        f"{line.block:#x}")
        for core, hier in enumerate(socket.cores):
            for block in hier.cached_blocks():
                line = socket.bank_of(block).peek_data(block)
                if line is None or line.entry is None:
                    raise DivergenceError(
                        f"core {core} caches block {block:#x} without "
                        "an entry-bearing LLC line (inclusion broken)")


def check_hybrid(spec: ModelSpec, system) -> None:
    """Hybrid update-coherence and update-vs-invalidate attribution.

    Every private S copy (and the LLC copy of an S-tracked block) must
    hold the shadow's latest version: a write either invalidates or
    *updates* every other copy, so no stale-but-readable copy may
    survive a quiesced point.  Read hits never consult the shadow, so
    this check -- not the readback -- is what detects a lost UPDATE.
    Update pushes move data without killing copies, so they must never
    show up in the DEV/invalidation counters.
    """
    for socket in each_socket(spec, system):
        shadow = socket.shadow
        for core, hier in enumerate(socket.cores):
            for block in hier.cached_blocks():
                line = hier.line_of(block)
                if line is None or line.state is not MESI.S:
                    continue
                latest = shadow.latest(block)
                if line.version != latest:
                    raise DivergenceError(
                        f"core {core} holds a stale S copy of block "
                        f"{block:#x}: version {line.version}, latest "
                        f"{latest}")
                entry = socket._peek_entry(block)
                if entry is None:
                    continue
                llc_line = socket.bank_of(block).peek_data(block)
                if llc_line is not None and llc_line.version != latest:
                    raise DivergenceError(
                        f"LLC copy of shared block {block:#x} is stale: "
                        f"version {llc_line.version}, latest {latest}")
        stats = socket.stats
        if stats.upgrades:
            raise DivergenceError(
                f"hybrid recorded {stats.upgrades} upgrade(s): an "
                "S-state write hit must push an update, never an "
                "upgrade-invalidate")


def check_step(spec: ModelSpec, system) -> None:
    """The full per-step check battery: the system's own invariants plus
    the structural checks above."""
    system.check_invariants()
    check_llc_structure(spec, system)
    check_housing(spec, system)
    if spec.config.protocol is Protocol.DLS:
        check_dls(spec, system)
    elif spec.config.protocol is Protocol.HYBRID:
        check_hybrid(spec, system)


def dev_count(spec: ModelSpec, system) -> int:
    """DEV-caused private invalidations accumulated so far."""
    if spec.n_sockets == 1:
        return system.stats.dev_invalidations
    return sum(stats.dev_invalidations for stats in system.stats)


def shadow_of(spec: ModelSpec, system):
    """The shadow-memory oracle of ``system``.

    Multi-socket compositions share ONE :class:`ShadowMemory` across all
    sockets (writes commit into the global version order no matter which
    socket retires them), so the system-level shadow *is* the merged
    view.  That sharing is load-bearing for the cross-model
    ``memory_digest`` equivalence, so it is pinned here as an invariant
    rather than silently assumed: a refactor that gives sockets private
    shadows would make socket-0's digest a lie, and this check turns
    that into a loud failure instead.
    """
    if spec.n_sockets == 1:
        return system.shadow
    shadow = system.shadow
    for socket in system.sockets:
        if socket.shadow is not shadow:
            raise DivergenceError(
                f"socket {socket.node_id} carries a private shadow; "
                "the multi-socket digest requires one shared shadow")
    return shadow
