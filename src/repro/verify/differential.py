"""Differential fuzz campaigns: every trace through every model.

A campaign draws ``budget`` adversarial traces (seeded, reproducible at
any ``jobs`` value -- same discipline as the sampled protocol explorer)
and runs each through the whole model matrix. Three things count as a
divergence:

* any run raising -- a protocol assertion, the shadow oracle, a
  structural LLC/housing check, or the final read-back;
* a ZeroDEV model finishing with DEV invalidations;
* models disagreeing on the final committed-version map for the same
  trace (they executed the same writes, so the digests must be equal).

With ``fault`` set, the campaign becomes a fault-injection soak over
the models carrying that seam: *detectable* faults must turn into
non-``ok`` outcomes in every run where they fired, *graceful* faults
must change nothing. Either way the campaign reports whether the fault
actually fired -- an injection that never reaches its seam is a
coverage failure, not a pass.

Failing runs are ddmin-shrunk to minimal reproducers, optionally
emitted as replayable ``.npz`` + pytest regressions.

Campaigns are *fault tolerant at the harness level* too: every
(trace, model) run executes under
:func:`repro.harness.campaign.campaign_map`, so a crashed or wedged
worker turns into a recorded harness failure (after retries) instead of
aborting the matrix -- every other run's outcome is kept, and the report
says exactly which runs are missing. With ``resume=<journal>`` each
completed run is committed to an append-only journal and a re-invoked
campaign (``repro fuzz --resume``) skips the committed runs, producing
the identical report an uninterrupted campaign would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.harness.campaign import (CampaignJournal, CampaignPolicy,
                                    RunSuccess, campaign_map)
from repro.verify.faults import DETECTABLE, FaultPlan, arm_fault
from repro.verify.models import ModelSpec, micro_config, model_matrix
from repro.verify.oracle import Outcome, run_trace
from repro.verify.shrink import emit_regression, shrink_trace
from repro.verify.tracegen import FuzzTrace, TraceGenerator, TraceGeometry

#: Cap on how many divergences are shrunk per campaign (each shrink is
#: O(n^2) re-runs; past the first few, more reproducers add no signal).
MAX_SHRINKS = 4


@dataclass
class Divergence:
    """One failing (model, trace) pair, plus its reduction if made."""

    outcome: Outcome
    trace: FuzzTrace
    minimized: Optional[FuzzTrace] = None
    minimized_outcome: Optional[Outcome] = None
    npz_path: Optional[str] = None
    test_path: Optional[str] = None

    def __str__(self) -> str:
        text = str(self.minimized_outcome or self.outcome)
        if self.minimized is not None:
            text += f" [shrunk {len(self.trace)} -> {len(self.minimized)}]"
        if self.npz_path:
            text += f" -> {self.npz_path}"
        return text


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    seed: int
    budget: int
    models: Tuple[str, ...]
    runs: int = 0
    traces_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    digest_mismatches: List[str] = field(default_factory=list)
    fault: Optional[str] = None
    fault_fired_runs: int = 0
    fault_detected_runs: int = 0
    fault_missed: List[Outcome] = field(default_factory=list)
    harness_failures: List[str] = field(default_factory=list)
    resumed_runs: int = 0
    retried_runs: int = 0
    journal_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        """No divergences in the runs that *did* complete."""
        if self.fault is not None:
            # An injection campaign succeeds when the fault fired
            # somewhere and every firing was handled per its contract.
            return bool(self.fault_fired_runs) and not self.fault_missed
        return not self.divergences and not self.digest_mismatches

    @property
    def partial(self) -> bool:
        """Verdict clean so far, but some runs never produced a result
        (worker crash / timeout after retries) -- resume to finish."""
        return self.clean and bool(self.harness_failures)

    @property
    def ok(self) -> bool:
        return self.clean and not self.harness_failures

    def summary(self) -> str:
        lines = [f"fuzz seed={self.seed} budget={self.budget}: "
                 f"{self.traces_run} traces x {len(self.models)} models, "
                 f"{self.runs} runs"]
        if self.resumed_runs or self.retried_runs:
            lines.append(f"  campaign: {self.resumed_runs} runs resumed "
                         f"from journal, {self.retried_runs} retried")
        for failure in self.harness_failures:
            lines.append(f"  HARNESS FAILURE: {failure}")
        if self.partial:
            hint = (f" --resume {self.journal_path}" if self.journal_path
                    else "")
            lines.append("  PARTIAL: no divergences in completed runs, "
                         f"but {len(self.harness_failures)} run(s) "
                         f"missing; re-run{hint} to finish")
        if self.fault is not None:
            verdict = "ok" if self.clean else "FAILED"
            lines.append(
                f"  injected {self.fault}: fired in "
                f"{self.fault_fired_runs} runs, detected in "
                f"{self.fault_detected_runs}, contract {verdict}")
            for outcome in self.fault_missed:
                lines.append(f"  MISSED: {outcome}")
        for mismatch in self.digest_mismatches:
            lines.append(f"  DIGEST: {mismatch}")
        for divergence in self.divergences:
            lines.append(f"  DIVERGENCE: {divergence}")
        if self.ok and self.fault is None:
            lines.append("  no divergences")
        return "\n".join(lines)

    @property
    def missing_runs(self) -> int:
        return len(self.harness_failures)


@dataclass
class CampaignPlan:
    """The deterministic (trace x model) grid one campaign executes.

    Shared by :func:`run_campaign` (in-process execution via
    ``campaign_map``) and the job service (item-granular execution by a
    worker fleet): both sides derive the *same* run order, run keys, and
    fold, so a service job's report is bit-identical to an in-process
    campaign over the same spec.
    """

    seed: int
    budget: int
    specs: List[ModelSpec]
    traces: List[FuzzTrace]
    check_every: int = 1
    steps_per_trace: int = 48
    fault: Optional[FaultPlan] = None

    def __len__(self) -> int:
        return len(self.traces) * len(self.specs)

    @property
    def keys(self) -> List[str]:
        """Run keys in execution order (trace-major, model-minor)."""
        return [f"t{trace_index:04d}:{spec.name}"
                for trace_index in range(len(self.traces))
                for spec in self.specs]

    def job(self, position: int) -> Tuple[ModelSpec, FuzzTrace]:
        """The (model, trace) pair at one flat position."""
        trace_index, spec_index = divmod(position, len(self.specs))
        return self.specs[spec_index], self.traces[trace_index]

    def run_one(self, position: int) -> Outcome:
        """Execute the single run at ``position`` (service workers)."""
        spec, trace = self.job(position)
        return run_trace(spec, trace, check_every=self.check_every,
                         fault=self.fault)


def plan_campaign(seed: int, budget: int,
                  models: Optional[Sequence[ModelSpec]] = None,
                  check_every: int = 1, steps_per_trace: int = 48,
                  fault: Optional[FaultPlan] = None) -> CampaignPlan:
    """Materialize the deterministic grid for one campaign spec."""
    specs = _models_for(fault, models)
    geometry = TraceGeometry.of(micro_config())
    generator = TraceGenerator(geometry, seed,
                               steps_per_trace=steps_per_trace)
    traces = [generator.trace(index) for index in range(budget)]
    return CampaignPlan(seed, budget, specs, traces,
                        check_every=check_every,
                        steps_per_trace=steps_per_trace, fault=fault)


def build_report(plan: CampaignPlan) -> FuzzReport:
    """An empty report carrying the plan's identity."""
    return FuzzReport(plan.seed, plan.budget,
                      tuple(spec.name for spec in plan.specs),
                      fault=(None if plan.fault is None
                             else plan.fault.kind.value))


def fold_flat(report: FuzzReport, plan: CampaignPlan,
              flat: Sequence[Optional[Outcome]]) -> FuzzReport:
    """Fold flat per-run outcomes (plan order) into ``report``.

    ``None`` marks a run the harness lost (crash/timeout after retries);
    callers record those in ``report.harness_failures`` themselves, with
    whatever attribution they have (typed :class:`RunFailure` records
    in-process, fail-record files in the service).
    """
    report.traces_run = len(plan.traces)
    per_trace: List[List[Optional[Outcome]]] = [
        [None] * len(plan.specs) for _ in plan.traces]
    for position, outcome in enumerate(flat):
        trace_index, spec_index = divmod(position, len(plan.specs))
        if outcome is not None:
            per_trace[trace_index][spec_index] = outcome
            report.runs += 1

    for trace, trace_outcomes in zip(plan.traces, per_trace):
        if plan.fault is not None:
            _classify_injection(report, plan.specs, trace,
                                trace_outcomes, plan.fault)
            continue
        completed = [o for o in trace_outcomes if o is not None]
        for outcome in completed:
            if not outcome.ok:
                report.divergences.append(Divergence(outcome, trace))
        digests = {o.memory_digest for o in completed if o.ok}
        if len(digests) > 1:
            detail = ", ".join(
                f"{o.model}={len(o.memory_digest)} blocks"
                for o in completed if o.ok)
            report.digest_mismatches.append(
                f"{trace.name}: final-memory digests disagree ({detail})")
    return report


def maybe_shrink(report: FuzzReport, plan: CampaignPlan,
                 out_dir=None) -> None:
    """ddmin-shrink the report's divergences (clean campaigns only)."""
    if plan.fault is None:
        _shrink_divergences(report, plan.specs, plan.check_every, out_dir)


def _models_for(fault: Optional[FaultPlan],
                models: Optional[Sequence[ModelSpec]]) -> List[ModelSpec]:
    matrix = list(models) if models is not None else model_matrix()
    if fault is None:
        return matrix
    applicable = []
    for spec in matrix:
        try:
            arm_fault(spec.build(), fault)
        except Exception:              # noqa: BLE001 - capability probe
            continue
        applicable.append(spec)
    return applicable


# Worker-side context, inherited over fork (see harness.parallel): the
# (spec, trace, check_every, fault) tuples themselves pickle fine, but
# routing through a module global keeps one code path for both modes.
_ACTIVE_JOBS: List[Tuple[ModelSpec, FuzzTrace, int,
                         Optional[FaultPlan]]] = []


def _run_job(index: int) -> Outcome:
    spec, trace, check_every, fault = _ACTIVE_JOBS[index]
    return run_trace(spec, trace, check_every=check_every, fault=fault)


def run_campaign(seed: int, budget: int,
                 models: Optional[Sequence[ModelSpec]] = None,
                 jobs: int = 1, check_every: int = 1,
                 steps_per_trace: int = 48,
                 fault: Optional[FaultPlan] = None,
                 shrink: bool = True,
                 out_dir=None,
                 policy: Optional[CampaignPolicy] = None,
                 resume=None) -> FuzzReport:
    """Run a ``budget``-trace differential campaign.

    Reproducible: all traces are generated from ``seed`` up front and
    outcomes are folded in a fixed order, so the report is identical for
    every ``jobs`` value. ``resume`` names a campaign journal: completed
    (trace, model) runs are committed there and skipped (payload
    replayed) when the campaign is re-executed after an interruption.
    ``policy`` sets per-run timeout/retry behaviour; the default retries
    transient worker deaths once and never hangs the batch on one run.
    """
    plan = plan_campaign(seed, budget, models=models,
                         check_every=check_every,
                         steps_per_trace=steps_per_trace, fault=fault)
    report = build_report(plan)
    policy = policy or CampaignPolicy(retries=1)
    journal = None if resume is None else CampaignJournal(resume)
    if journal is not None:
        report.journal_path = str(journal.path)
        journal.ensure_meta(
            campaign="fuzz", seed=seed, check_every=check_every,
            steps_per_trace=steps_per_trace,
            fault=None if fault is None else fault.kind.value,
            models=[spec.name for spec in plan.specs])

    global _ACTIVE_JOBS
    _ACTIVE_JOBS = [(spec, trace, check_every, fault)
                    for trace in plan.traces for spec in plan.specs]
    try:
        outcomes = campaign_map(_run_job, range(len(_ACTIVE_JOBS)),
                                keys=plan.keys, jobs=jobs, policy=policy,
                                journal=journal, require_fork=True)
    finally:
        _ACTIVE_JOBS = []
        if journal is not None:
            journal.close()

    flat: List[Optional[Outcome]] = [None] * len(outcomes)
    for position, run in enumerate(outcomes):
        if isinstance(run, RunSuccess):
            flat[position] = run.value
            report.resumed_runs += int(run.resumed)
            report.retried_runs += max(0, run.attempts - 1)
        else:
            report.harness_failures.append(str(run))
            report.retried_runs += max(0, run.attempts - 1)
    fold_flat(report, plan, flat)

    if shrink:
        maybe_shrink(report, plan, out_dir)
    return report


def _classify_injection(report: FuzzReport, specs: Sequence[ModelSpec],
                        trace: FuzzTrace, outcomes: Sequence[Outcome],
                        fault: FaultPlan) -> None:
    """Check every run of one trace against the fault's contract."""
    for spec, outcome in zip(specs, outcomes):
        if outcome is None:             # harness failure, already recorded
            continue
        fired = _fault_fires(spec, trace, fault)
        if not fired:
            if not outcome.ok:
                # Fault never fired yet the run failed: a plain bug,
                # not an injection result.
                report.divergences.append(Divergence(outcome, trace))
            continue
        report.fault_fired_runs += 1
        if fault.kind in DETECTABLE:
            if outcome.ok:
                report.fault_missed.append(outcome)
            else:
                report.fault_detected_runs += 1
        else:
            if outcome.ok:
                report.fault_detected_runs += 1
            else:
                report.fault_missed.append(outcome)


def _fault_fires(spec: ModelSpec, trace: FuzzTrace,
                 fault: FaultPlan) -> bool:
    """Re-run the pair with a locally armed fault and report firing.

    The parallel worker cannot ship its armed handle back, but the
    simulator is deterministic: a local replay traverses the seam the
    same number of times. Checks are skipped -- only the traversal
    count matters -- and the replay stops at the first firing or error.
    """
    from repro.common.addressing import BLOCK_SHIFT

    system = spec.build()
    armed = arm_fault(system, fault)
    try:
        for core, op, block in trace.decoded():
            socket, local = spec.map_core(core)
            if spec.n_sockets == 1:
                system.access(local, op, block << BLOCK_SHIFT)
            else:
                system.access(socket, local, op, block << BLOCK_SHIFT)
            if armed.fired:
                return True
    except Exception:                  # noqa: BLE001 - probe only
        pass
    return bool(armed.fired)


def _shrink_divergences(report: FuzzReport, specs: Sequence[ModelSpec],
                        check_every: int, out_dir) -> None:
    by_name = {spec.name: spec for spec in specs}
    for divergence in report.divergences[:MAX_SHRINKS]:
        spec = by_name[divergence.outcome.model]
        try:
            minimized, outcome = shrink_trace(
                spec, divergence.trace, reference=divergence.outcome,
                check_every=check_every)
        except ValueError:
            continue                    # flaky under different checking
        divergence.minimized = minimized
        divergence.minimized_outcome = outcome
        if out_dir is not None:
            npz, test = emit_regression(spec, minimized, outcome, out_dir)
            divergence.npz_path = str(npz)
            divergence.test_path = str(test)
