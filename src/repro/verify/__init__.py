"""Differential verification and fault injection (``repro fuzz``).

The paper's claim is an *equivalence*: a ZeroDEV socket must behave like
a plain MESI CMP -- same load values, same final memory -- while never
issuing a DEV-caused private-cache invalidation. This package checks
that claim adversarially:

* :mod:`repro.verify.tracegen` -- seeded random traces biased toward the
  patterns where these protocols break (set-conflict storms, fuse/spill
  flapping, migratory sharing).
* :mod:`repro.verify.models` -- the model matrix: every ZeroDEV policy x
  LLC design, the 1x sparse baseline, SecDir, MgD, and two-socket
  compositions, all on one micro geometry.
* :mod:`repro.verify.oracle` -- drives a trace through one model with
  per-step invariant checking (shadow-memory reads, LRU well-formedness,
  occupancy bounds, zero ``priv_inv:dev`` events, corrupted-bitmap
  consistency) and a final-memory resolution check.
* :mod:`repro.verify.differential` -- the fuzz campaign: every trace
  through every model, any failure is a divergence.
* :mod:`repro.verify.shrink` -- ddmin reduction of failing traces to
  minimal reproducers, emitted as replayable ``.npz`` + pytest stubs.
* :mod:`repro.verify.faults` -- protocol fault injection (drop/duplicate
  ``WB_DE``, drop ``GET_DE``, force ``DENF_NACK``) asserting detection
  or graceful degradation, never silent divergence.
* :mod:`repro.verify.checks` -- the per-step structural invariant suite
  (shared by the fuzz oracle and the model checker).
* :mod:`repro.verify.modelcheck` -- bounded-exhaustive exploration
  (``repro modelcheck``): a memoized snapshot frontier with canonical
  state dedup, counterexample prefixes replayable through the shrinker.
* :mod:`repro.verify.mutations` -- seeded protocol bugs proving the
  checkers catch what they claim to catch.
"""

from repro.verify.checks import check_step, dev_count
from repro.verify.differential import FuzzReport, run_campaign
from repro.verify.faults import FaultKind, FaultPlan, arm_fault
from repro.verify.modelcheck import (ModelCheckReport, check_matrix,
                                     explore_model, frontier_vs_replay,
                                     mutation_gate)
from repro.verify.models import ModelSpec, model_by_name, model_matrix
from repro.verify.mutations import (MUTATIONS, arm_mutation,
                                    mutant_spec, mutation_names)
from repro.verify.oracle import Outcome, run_trace
from repro.verify.shrink import emit_regression, shrink_trace
from repro.verify.tracegen import FuzzTrace, TraceGenerator

__all__ = [
    "FaultKind", "FaultPlan", "FuzzReport", "FuzzTrace",
    "MUTATIONS", "ModelCheckReport", "ModelSpec", "Outcome",
    "TraceGenerator", "arm_fault", "arm_mutation", "check_matrix",
    "check_step", "dev_count", "emit_regression", "explore_model",
    "frontier_vs_replay", "model_by_name", "model_matrix",
    "mutant_spec", "mutation_gate", "mutation_names", "run_campaign",
    "run_trace", "shrink_trace",
]
